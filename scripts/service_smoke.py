"""Black-box smoke test of the service daemon across a process boundary.

The in-process tests (``tests/test_service.py``) run the daemon's
asyncio loop in a thread of the test process; this script exercises the
deployment shape instead: it launches ``repro-harness serve`` as a real
subprocess, throws 8 concurrent duplicate submissions at it over
localhost HTTP, and checks the three properties the service exists to
provide:

1. exactly **one** simulation ran (coalescing + cache, asserted via
   ``/v1/stats``),
2. all 8 clients received **byte-identical** result payloads,
3. a ``POST /v1/shutdown`` with ``drain=true`` lets the daemon exit
   cleanly (exit code 0) with nothing left in the queue.

Exits non-zero on any violation. Used by the (non-gating) CI service
smoke job::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

APP = "synthetic"
SCALE = 0.1
SEED = 13
CLIENTS = 8
STARTUP_DEADLINE = 30.0
SHUTDOWN_DEADLINE = 60.0


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_healthy(client, deadline: float) -> None:
    last = None
    while time.monotonic() < deadline:
        try:
            if client.healthz().get("ok"):
                return
        except OSError as exc:
            last = exc
        time.sleep(0.1)
    raise SystemExit(f"daemon never became healthy: {last}")


def main() -> int:
    sys.path.insert(0, str(SRC))
    from repro.service.client import ServiceClient

    port = _free_port()
    tmp = tempfile.mkdtemp(prefix="repro-service-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env.pop("REPRO_NO_CACHE", None)  # the cache is part of the test
    env["REPRO_CACHE_DIR"] = os.path.join(tmp, "cache")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness.cli", "serve",
            "--port", str(port), "--workers", "2",
            "--journal", os.path.join(tmp, "journal.jsonl"),
        ],
        env=env,
        cwd=REPO_ROOT,
    )
    client = ServiceClient(port=port)
    try:
        _wait_healthy(client, time.monotonic() + STARTUP_DEADLINE)

        def submit_and_wait(_):
            own = ServiceClient(port=port)
            job = own.submit(APP, scale=SCALE, seed=SEED, retry_busy=5)
            doc = own.wait(job["id"], timeout=300)
            if doc["state"] != "done":
                raise SystemExit(f"job failed: {doc.get('error')}")
            return json.dumps(doc["result"], sort_keys=True)

        with concurrent.futures.ThreadPoolExecutor(CLIENTS) as pool:
            payloads = list(
                pool.map(submit_and_wait, range(CLIENTS))
            )
        distinct = len(set(payloads))
        stats = client.stats()
        sims = stats["service"]["counters"].get(
            "service.simulations", 0.0
        )
        submitted = stats["service"]["counters"].get(
            "service.jobs.submitted", 0.0
        )
        print(
            f"submitted={submitted:g} simulations={sims:g} "
            f"distinct_payloads={distinct}"
        )
        ok = True
        if sims != 1.0:
            print(f"FAIL: expected exactly 1 simulation, got {sims:g}")
            ok = False
        if distinct != 1:
            print(f"FAIL: {distinct} distinct payloads across "
                  f"{CLIENTS} clients")
            ok = False

        client.shutdown(drain=True)
        try:
            code = proc.wait(timeout=SHUTDOWN_DEADLINE)
        except subprocess.TimeoutExpired:
            print("FAIL: daemon did not exit after drain shutdown")
            proc.kill()
            return 1
        if code != 0:
            print(f"FAIL: daemon exited with code {code}")
            ok = False
        if ok:
            print("service smoke OK")
        return 0 if ok else 1
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
