#!/usr/bin/env python
"""Calibration harness: measure Table II/III features of workload traces.

Usage: python scripts/calibrate.py [APP ...] [--scale S] [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import (
    AMSConfig,
    AMSMode,
    DMSConfig,
    DMSMode,
    SchedulerConfig,
    baseline_scheduler,
    static_dms,
)
from repro.sim.system import GPUSystem
from repro.workloads.registry import get_workload, list_workloads


def run(workload, sched, measure_error=False):
    from repro.sim.system import simulate

    t0 = time.time()
    r = simulate(workload, scheduler=sched, measure_error=measure_error)
    r.wall = time.time() - t0
    return r


def ams(th, cov=0.10, warmup=256):
    return SchedulerConfig(
        ams=AMSConfig(mode=AMSMode.STATIC, static_th_rbl=th,
                      coverage_limit=cov, warmup_fills=warmup)
    )


def characterize(name: str, scale: float) -> None:
    wl = get_workload(name, scale=scale)
    from repro.config import GPUConfig

    fp = wl.trace_footprint(GPUConfig())
    base = run(wl, baseline_scheduler())
    # Thrashing: % of requests in rows with RBL 1-8.
    hist = base.rbl_histogram
    low = sum(r * c for r, c in hist.items() if 1 <= r <= 8)
    tot = sum(r * c for r, c in hist.items())
    thrash = 100 * low / tot if tot else 0.0
    print(f"\n=== {name} (scale {scale}) ===")
    print(f" trace: {fp}")
    print(
        f" base: acts={base.activations} avgRBL={base.avg_rbl:.2f} "
        f"BW={base.bwutil:.2f} cyc={base.elapsed_mem_cycles:.0f} "
        f"IPC={base.ipc:.2f} wall={base.wall:.1f}s"
    )
    print(f" thrash%={thrash:.1f} hist={dict(sorted(hist.items())[:10])}")
    # Delay sweep.
    rows = []
    mtd = 0
    for delay in (64, 128, 256, 512, 1024, 2048):
        r = run(get_workload(name, scale=scale), static_dms(delay))
        act_red = 100 * (1 - r.activations / base.activations)
        ipcn = r.normalized_ipc(base)
        rows.append((delay, act_red, ipcn))
        if ipcn >= 0.95:
            mtd = delay
    print(" DMS: " + "  ".join(
        f"{d}:{a:+.0f}%/{i:.2f}" for d, a, i in rows))
    act2048 = rows[-1][1]
    # AMS(8) vs AMS(1) at 10% coverage.
    r8 = run(get_workload(name, scale=scale), ams(8), measure_error=True)
    r1 = run(get_workload(name, scale=scale), ams(1))
    red8 = 100 * (1 - r8.activations / base.activations)
    red1 = 100 * (1 - r1.activations / base.activations)
    print(
        f" AMS8: act-{red8:.0f}% cov={r8.coverage:.2%} "
        f"err={100 * (r8.application_error or 0):.1f}% "
        f"ipc={r8.normalized_ipc(base):.2f} | AMS1: act-{red1:.0f}% "
        f"cov={r1.coverage:.2%}"
    )
    from repro.workloads.characteristics import (
        TABLE_II,
        classify_act_sensitivity,
        classify_delay_tolerance,
        classify_error_tolerance,
        classify_thrashing,
        classify_th_rbl_sensitivity,
    )

    want = TABLE_II[name]
    got = dict(
        thrash=classify_thrashing(thrash),
        delay=classify_delay_tolerance(mtd),
        act=classify_act_sensitivity(act2048),
        th=classify_th_rbl_sensitivity(max(red1 - red8, 0.0)),
        err=classify_error_tolerance(100 * (r8.application_error or 0)),
    )
    wants = dict(
        thrash=want.thrashing,
        delay=want.delay_tolerance,
        act=want.act_sensitivity,
        th=want.th_rbl_sensitivity,
        err=want.error_tolerance,
    )
    marks = {
        k: ("OK" if got[k] == wants[k] else f"GOT {got[k]} WANT {wants[k]}")
        for k in got
    }
    print(f" classify: {marks}")


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("apps", nargs="*", default=None)
    ap.add_argument("--scale", type=float, default=0.5)
    args = ap.parse_args()
    apps = args.apps or list_workloads()
    for name in apps:
        characterize(name, args.scale)


if __name__ == "__main__":
    main()
