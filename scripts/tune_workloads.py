#!/usr/bin/env python
"""Tune per-app (parallelism, compute_scale) to land delay-tolerance
regimes, then write repro/workloads/tuning.py.

Usage: python scripts/tune_workloads.py [APP ...]
"""

from __future__ import annotations

import sys

from repro.config import baseline_scheduler
from repro.sim.system import simulate
from repro.workloads.characteristics import TABLE_II
from repro.workloads.registry import _ensure_loaded, _REGISTRY
from repro.workloads.tuning import TUNING

#: delay tolerance class -> (warp multiplier, target BW utilisation)
CLASS_TARGETS = {
    "Low": (1.0, 0.60),
    "Medium": (1.4, 0.52),
    "High": (1.0, 0.45),
}


def measure_bw(name: str, p: float, cs: float) -> float:
    _ensure_loaded()
    wl = _REGISTRY[name](scale=1.0, seed=7, parallelism=p, compute_scale=cs)
    report = simulate(wl, scheduler=baseline_scheduler())
    return report.bwutil


def tune(name: str) -> tuple[float, float]:
    cls = TABLE_II[name].delay_tolerance
    p, bw_target = CLASS_TARGETS[cls]
    cs = 1.0
    for _ in range(5):
        bw = measure_bw(name, p, cs)
        ratio = bw / bw_target
        if 0.93 <= ratio <= 1.07:
            break
        cs = min(max(cs * ratio**0.9, 0.1), 60.0)
    print(f"{name:14s} class={cls:6s} p={p:.2f} cs={cs:.2f} BW={bw:.2f}")
    return p, cs


def main() -> None:
    apps = sys.argv[1:] or sorted(TABLE_II)
    results = dict(TUNING)
    for name in apps:
        results[name] = tune(name)
    lines = [
        "#: app name -> (parallelism multiplier, compute-duration multiplier)",
        "TUNING: dict[str, tuple[float, float]] = {",
    ]
    for name in sorted(results):
        p, cs = results[name]
        lines.append(f'    "{name}": ({p:.3f}, {cs:.3f}),')
    lines.append("}")
    path = "src/repro/workloads/tuning.py"
    src = open(path).read()
    head = src.split("#: app name ->")[0]
    open(path, "w").write(head + "\n".join(lines) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
