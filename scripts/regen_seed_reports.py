"""Regenerate tests/golden/seed_reports.json.

The fixture pins the full ``SimReport.to_dict()`` payload of every paper
scheme on the default (GDDR5) device, as produced by the scheduler
implementation that was current when the fixture was last regenerated.
``tests/test_differential_refactor.py`` asserts that the composable
policy pipeline reproduces these payloads field-identically.

Run from the repo root::

    PYTHONPATH=src python scripts/regen_seed_reports.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config.scheduler import (
    AMSConfig,
    AMSMode,
    DMSConfig,
    DMSMode,
    SchedulerConfig,
)
from repro.harness.runner import Runner

OUT = Path(__file__).resolve().parent.parent / "tests" / "golden"
OUT_PATH = OUT / "seed_reports.json"

#: Fixture cell parameters — small enough to simulate each scheme in ~1 s,
#: busy enough to exercise the dynamic profiling state machines.
FIXTURE = {"workload": "synthetic", "scale": 0.25, "seed": 11}

_WINDOW = 512
_PHASE = 8
_WARMUP = 16


def scheme_set() -> dict[str, SchedulerConfig]:
    """The pinned scheme set, keyed by registry-style scheme ids."""
    dyn_dms = DMSConfig(
        mode=DMSMode.DYNAMIC, window_cycles=_WINDOW, windows_per_phase=_PHASE
    )
    static_dms = DMSConfig(
        mode=DMSMode.STATIC, window_cycles=_WINDOW, windows_per_phase=_PHASE
    )
    dyn_ams = AMSConfig(
        mode=AMSMode.DYNAMIC, window_cycles=_WINDOW, warmup_fills=_WARMUP
    )
    static_ams = AMSConfig(
        mode=AMSMode.STATIC, window_cycles=_WINDOW, warmup_fills=_WARMUP
    )
    return {
        "frfcfs": SchedulerConfig(),
        "fcfs": SchedulerConfig(arbiter="fcfs"),
        "static-dms": SchedulerConfig(dms=static_dms),
        "dyn-dms": SchedulerConfig(dms=dyn_dms),
        "static-ams": SchedulerConfig(ams=static_ams),
        "dyn-ams": SchedulerConfig(ams=dyn_ams),
        "static-dms+static-ams": SchedulerConfig(
            dms=static_dms, ams=static_ams
        ),
        "dyn-dms+dyn-ams": SchedulerConfig(dms=dyn_dms, ams=dyn_ams),
    }


def main() -> None:
    runner = Runner(
        scale=FIXTURE["scale"], seed=FIXTURE["seed"],
        verbose=False, cache=None,
    )
    reports = {}
    for scheme_id, scheme in scheme_set().items():
        report = runner.run(
            FIXTURE["workload"], scheme, label=scheme_id,
            measure_error=scheme.ams.mode is not AMSMode.OFF,
        )
        reports[scheme_id] = report.to_dict()
        print(
            f"  {scheme_id}: acts={report.activations} "
            f"ipc={report.ipc:.4f} drops={report.requests_dropped}"
        )
    OUT.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(
        json.dumps(
            {"fixture": FIXTURE, "reports": reports},
            indent=1, sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
