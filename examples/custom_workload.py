#!/usr/bin/env python
"""Bring your own kernel: define a workload and evaluate the scheduler.

Shows the full public workflow for a downstream user:

1. subclass :class:`repro.workloads.base.Workload` — register arrays
   (annotating the approximable ones, as with the paper's pragmas),
   generate a trace over them, and implement the kernel;
2. simulate it under any scheduler configuration;
3. measure end-to-end application error via the replay pipeline.

The example kernel is a damped 1-D wave propagation step.

Usage::

    python examples/custom_workload.py
"""

from __future__ import annotations

import numpy as np

from repro import baseline_scheduler, simulate, static_ams, static_dms
from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import smooth_field
from repro.workloads.traces import interleave, row_visit_streams


class WavePropagation(Workload):
    """u' = u + c * (laplacian of u) on an annotated 1-D field."""

    name = "wave1d"
    description = "damped 1-D wave propagation"
    input_kind = "Field"
    group = 0  # not part of the paper's Table II

    def _build(self) -> None:
        n = self.dim(393216, multiple=3072)
        self.register("u", smooth_field(self.rng, n), approximable=True)
        self.register("v", smooth_field(self.rng, n), approximable=True)

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        body = row_visit_streams(
            self.space, "u", m,
            n_warps=self.warps(64), lines_per_visit=2, lines_per_op=1,
            visits_per_row=2, skew_cycles=(400.0, 1500.0), compute=40.0,
        )
        velocity = row_visit_streams(
            self.space, "v", m,
            n_warps=self.warps(32), lines_per_visit=4, visits_per_row=1,
            compute=40.0,
        )
        return interleave(body, velocity)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        u = arrays["u"].astype(np.float64)
        v = arrays["v"].astype(np.float64)
        lap = np.roll(u, 1) - 2 * u + np.roll(u, -1)
        return u + 0.9 * v + 0.25 * lap


def main() -> None:
    workload = WavePropagation(scale=0.5)
    base = simulate(workload, scheduler=baseline_scheduler())
    print(base.summary())
    print()
    for scheme in (static_dms(512), static_ams(8)):
        run = simulate(
            WavePropagation(scale=0.5), scheduler=scheme,
            measure_error=True,
        )
        print(run.summary())
        print(
            f"  -> vs baseline: row energy "
            f"{run.normalized_row_energy(base):.2f}, "
            f"IPC {run.normalized_ipc(base):.2f}"
        )
        print()


if __name__ == "__main__":
    main()
