#!/usr/bin/env python
"""Quickstart: simulate one workload under the lazy memory scheduler.

Runs SCP (scalar products) on the Table I GPU under the baseline
FR-FCFS scheduler and under the paper's headline Dyn-DMS + Dyn-AMS
combination, then prints the row-energy / IPC / quality trade-off.

Usage::

    python examples/quickstart.py [--scale 0.5]
"""

from __future__ import annotations

import argparse

from repro import baseline_scheduler, get_workload, simulate
from repro.harness.schemes import evaluation_schemes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload size multiplier")
    parser.add_argument("--app", default="SCP",
                        help="Table II application name")
    args = parser.parse_args()

    print(f"Simulating {args.app} on the Table I GPU "
          f"(scale {args.scale})...\n")

    baseline = simulate(
        get_workload(args.app, scale=args.scale),
        scheduler=baseline_scheduler(),
    )
    print(baseline.summary())
    print()

    # The harness scheme set scales the Dyn-DMS/Dyn-AMS profiling
    # windows to trace-sized runs (see repro.harness.schemes).
    lazy = simulate(
        get_workload(args.app, scale=args.scale),
        scheduler=evaluation_schemes()["Dyn-DMS+Dyn-AMS"],
        measure_error=True,
    )
    print(lazy.summary())
    print()

    saved = 1 - lazy.normalized_row_energy(baseline)
    print(f"Row energy saved by Dyn-DMS + Dyn-AMS : {saved:.1%}")
    print(f"IPC relative to baseline              : "
          f"{lazy.normalized_ipc(baseline):.1%}")
    print(f"Prediction coverage                   : {lazy.coverage:.1%}")
    if lazy.application_error is not None:
        print(f"Application error                     : "
              f"{lazy.application_error:.2%}")


if __name__ == "__main__":
    main()
