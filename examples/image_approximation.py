#!/usr/bin/env python
"""Fig. 14 scenario: image sharpening with approximate memory.

Runs the laplacian filter under Dyn-DMS + Dyn-AMS, replays the dropped
cache lines through the real kernel, and writes three PGM images (input,
exact output, approximate output) so the quality loss can be inspected
visually — the experiment behind the paper's Fig. 14.

Usage::

    python examples/image_approximation.py [--outdir /tmp/repro_fig14]
"""

from __future__ import annotations

import argparse
import pathlib

import numpy as np

from repro import dyn_combo, get_workload, simulate
from repro.approx.quality import psnr
from repro.approx.replay import build_perturbed_inputs


def write_pgm(path: pathlib.Path, image: np.ndarray) -> None:
    """Write a grayscale image as a binary PGM (no external deps)."""
    data = np.clip(image, 0, 255).astype(np.uint8)
    h, w = data.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode())
        fh.write(data.tobytes())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="/tmp/repro_fig14")
    parser.add_argument("--scale", type=float, default=0.7)
    args = parser.parse_args()
    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    workload = get_workload("laplacian", scale=args.scale)
    report = simulate(workload, scheduler=dyn_combo(), measure_error=True)

    exact = workload.run_exact()
    perturbed = build_perturbed_inputs(
        workload.space, workload.arrays, report.drops
    )
    approx = workload.run_approx(perturbed)

    write_pgm(outdir / "input.pgm", workload.arrays["img"])
    write_pgm(outdir / "sharpened_exact.pgm", exact)
    write_pgm(outdir / "sharpened_approx.pgm", approx)

    print(report.summary())
    print()
    print(f"dropped lines    : {len(report.drops)}")
    print(f"application error: {report.application_error:.2%}")
    print(f"PSNR             : {psnr(exact, approx):.1f} dB")
    print(f"images written to: {outdir}/")


if __name__ == "__main__":
    main()
