#!/usr/bin/env python
"""Walk through the paper's Fig. 8 example with a scripted trace.

Nine requests target rows R1..R5 of one bank; partner requests for
R1..R4 arrive a little later. The script shows:

* AMS alone drops the oldest request (R1) — whose partner later reopens
  the row, so no activation is saved and Avg-RBL *drops* to 1.6;
* DMS + AMS sees all nine requests and drops the genuine RBL(1) row
  (R5), lifting Avg-RBL to 2.0 — the paper's numbers exactly.

Usage::

    python examples/fig8_walkthrough.py
"""

from __future__ import annotations

from repro.config import (
    AMSConfig,
    AMSMode,
    AddressMapping,
    DMSConfig,
    DMSMode,
    GPUConfig,
    SchedulerConfig,
    gddr5_timings,
)
from repro.config.address import DecodedAddress
from repro.dram import Channel, MemoryRequest
from repro.sched import MemoryController
from repro.sim.engine import Engine

FILLER = 20  # background reads giving the coverage ledger a denominator


def scheme(delay: int) -> SchedulerConfig:
    dms = (
        DMSConfig(mode=DMSMode.STATIC, static_delay=delay)
        if delay
        else DMSConfig(mode=DMSMode.OFF)
    )
    return SchedulerConfig(
        dms=dms,
        ams=AMSConfig(
            mode=AMSMode.STATIC,
            static_th_rbl=1,
            coverage_limit=0.05,
            warmup_fills=0,
        ),
    )


def run(delay: int) -> None:
    config = GPUConfig()
    engine = Engine()
    channel = Channel(0, config.mapping, gddr5_timings())
    mc = MemoryController(
        channel,
        config=config,
        sched_config=scheme(delay),
        engine=engine,
        reply_fn=lambda req, approx, donor: None,
    )
    mapping = AddressMapping()

    def inject(t, bank, row, col, approximable=False):
        addr = mapping.encode(
            DecodedAddress(channel=0, bank=bank, bank_group=bank // 4,
                           row=row, column=col)
        )
        req = MemoryRequest.from_address(
            addr, is_write=False, mapping=mapping,
            approximable=approximable,
        )
        engine.at(t, lambda: mc.submit(req))

    for i in range(FILLER):
        inject(0.0, bank=3, row=100, col=i % 16)
    for i, row in enumerate((1, 2, 3, 4, 5)):
        inject(float(i), bank=0, row=row, col=0, approximable=True)
    for i, row in enumerate((1, 2, 3, 4)):
        inject(20.0 + i, bank=0, row=row, col=1, approximable=True)
    engine.run()
    channel.finalize()

    served = channel.stats.reads_served - FILLER
    acts = channel.stats.activations - 1  # filler opens one row
    dropped_rows = [
        mapping.decode(d.addr).row for d in mc.drops
    ]
    label = f"DMS({delay}) + AMS(1)" if delay else "AMS(1) alone"
    print(f"{label}:")
    print(f"  dropped request row(s): R{dropped_rows}")
    print(f"  requests served {served}, activations {acts}, "
          f"Avg-RBL {served / acts:.2f}")
    print()


def main() -> None:
    print(__doc__)
    run(0)
    run(512)


if __name__ == "__main__":
    main()
