#!/usr/bin/env python
"""Energy study: the Fig. 12 trade-off on a workload mix of your choice.

Sweeps the paper's scheme set over a set of applications, prints a
row-energy / IPC / error summary per scheme, and projects the savings
onto GDDR5, HBM1 and HBM2 memory-system energy (paper Section V).

Usage::

    python examples/energy_study.py --apps SCP,LPS,MVT --scale 0.5
"""

from __future__ import annotations

import argparse

from repro.config.energy import gddr5_energy, hbm1_energy, hbm2_energy
from repro.dram.energy import project_memory_system_energy
from repro.harness.runner import Runner
from repro.harness.schemes import evaluation_schemes
from repro.harness.tables import format_table, geomean


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", default="SCP,BICG,LPS,MVT,3MM")
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()
    apps = [a.strip() for a in args.apps.split(",")]

    runner = Runner(scale=args.scale, verbose=True)
    schemes = evaluation_schemes()
    results = runner.run_matrix(apps, schemes, measure_error=True)

    rows = []
    for label in schemes:
        if label == "Baseline":
            continue
        energy = geomean(
            results[(a, label)].normalized_row_energy(
                results[(a, "Baseline")]
            )
            for a in apps
        )
        ipc = geomean(
            results[(a, label)].normalized_ipc(results[(a, "Baseline")])
            for a in apps
        )
        errors = [
            results[(a, label)].application_error or 0.0 for a in apps
        ]
        hbm1 = project_memory_system_energy(1.0, energy, hbm1_energy())
        hbm2 = project_memory_system_energy(1.0, energy, hbm2_energy())
        gddr = project_memory_system_energy(1.0, energy, gddr5_energy())
        rows.append(
            [label, energy, ipc, sum(errors) / len(errors),
             gddr, hbm1, hbm2]
        )
    print()
    print(
        format_table(
            ["Scheme", "row energy", "IPC", "mean error",
             "GDDR5 sys", "HBM1 sys", "HBM2 sys"],
            rows,
            title=f"Energy study over {', '.join(apps)} "
            "(normalized to baseline)",
        )
    )


if __name__ == "__main__":
    main()
