"""Unit tests for DRAM statistics and energy accounting."""

import pytest

from repro.config import gddr5_energy, hbm1_energy, hbm2_energy
from repro.dram import (
    BusUtilizationTracker,
    ChannelStats,
    compute_energy,
    merge_rbl_histograms,
    project_memory_system_energy,
)


class TestBusUtilizationTracker:
    def test_total_busy_accumulates(self) -> None:
        bus = BusUtilizationTracker()
        bus.add(0, 4)
        bus.add(10, 14)
        assert bus.total_busy == 8

    def test_empty_interval_ignored(self) -> None:
        bus = BusUtilizationTracker()
        bus.add(5, 5)
        bus.add(6, 4)
        assert bus.total_busy == 0

    def test_windowed_queries_split_intervals(self) -> None:
        bus = BusUtilizationTracker()
        bus.add(0, 4)
        bus.add(6, 10)
        # Window [0, 8): 4 cycles from the first burst, 2 from the second.
        assert bus.busy_since_last_query(8) == pytest.approx(6)
        # Window [8, 16): the remaining 2 cycles.
        assert bus.busy_since_last_query(16) == pytest.approx(2)

    def test_future_intervals_not_counted_early(self) -> None:
        bus = BusUtilizationTracker()
        bus.add(100, 104)
        assert bus.busy_since_last_query(50) == 0
        assert bus.busy_since_last_query(200) == pytest.approx(4)

    def test_monotone_queries_never_double_count(self) -> None:
        bus = BusUtilizationTracker()
        for i in range(10):
            bus.add(i * 10, i * 10 + 4)
        total = sum(
            bus.busy_since_last_query(t) for t in (5, 25, 33, 70, 1000)
        )
        assert total == pytest.approx(bus.total_busy)

    def test_busy_in_is_pure(self) -> None:
        bus = BusUtilizationTracker()
        bus.add(0, 4)
        bus.add(6, 10)
        bus.add(20, 30)
        # Repeated, overlapping, and out-of-order windows all work and
        # return identical answers: no cursor, no consumption.
        assert bus.busy_in(0, 8) == pytest.approx(6)
        assert bus.busy_in(0, 8) == pytest.approx(6)
        assert bus.busy_in(25, 100) == pytest.approx(5)
        assert bus.busy_in(0, 8) == pytest.approx(6)
        assert bus.busy_in(0, 100) == pytest.approx(18)
        assert bus.busy_in(4, 6) == 0.0
        assert bus.busy_in(8, 8) == 0.0

    def test_busy_in_clips_partial_overlaps(self) -> None:
        bus = BusUtilizationTracker()
        bus.add(10, 20)
        assert bus.busy_in(0, 15) == pytest.approx(5)
        assert bus.busy_in(15, 18) == pytest.approx(3)
        assert bus.busy_in(18, 50) == pytest.approx(2)
        assert bus.busy_in(0, 10) == 0.0
        assert bus.busy_in(20, 30) == 0.0

    def test_busy_in_does_not_disturb_profiling_cursor(self) -> None:
        # The Dyn-DMS profiler consumes windows via
        # busy_since_last_query; a telemetry reader interleaving pure
        # busy_in calls must not shift what the profiler sees.
        plain = BusUtilizationTracker()
        probed = BusUtilizationTracker()
        for bus in (plain, probed):
            for i in range(8):
                bus.add(i * 10, i * 10 + 6)
        consumed_plain, consumed_probed = [], []
        for t in (15, 40, 41, 100):
            consumed_plain.append(plain.busy_since_last_query(t))
            probed.busy_in(0, 1000)
            probed.busy_in(t - 10, t)
            consumed_probed.append(probed.busy_since_last_query(t))
            probed.busy_in(0, t)
        assert consumed_probed == consumed_plain

    def test_last_end_tracks_latest_interval(self) -> None:
        bus = BusUtilizationTracker()
        assert bus.last_end == 0.0
        bus.add(0, 4)
        bus.add(10, 14)
        assert bus.last_end == 14.0


class TestChannelStats:
    def test_avg_rbl_zero_when_idle(self) -> None:
        assert ChannelStats().avg_rbl == 0.0

    def test_merge_histograms(self) -> None:
        a, b = ChannelStats(), ChannelStats()
        a.rbl_histogram[1] = 3
        b.rbl_histogram[1] = 2
        b.rbl_histogram[4] = 1
        merged = merge_rbl_histograms([a, b])
        assert merged[1] == 5 and merged[4] == 1

    def test_finalize_is_idempotent(self) -> None:
        s = ChannelStats()
        s.on_activate(0, 5, 0.0)
        s.on_column(0, is_write=False)
        s.finalize()
        s.finalize()
        assert s.rbl_histogram[1] == 1
        assert s.activations == 1

    def test_record_activations_flag(self) -> None:
        s = ChannelStats(record_activations=False)
        s.on_activate(0, 5, 0.0)
        s.finalize()
        assert not s.activation_log
        assert s.rbl_histogram[0] == 1


class TestEnergyModel:
    def _stats(self, acts: int, reads: int, writes: int) -> ChannelStats:
        s = ChannelStats()
        s.activations = acts
        s.reads_served = reads
        s.writes_served = writes
        return s

    def test_row_energy_proportional_to_activations(self) -> None:
        p = gddr5_energy()
        e1 = compute_energy([self._stats(100, 0, 0)], p, 0, 924)
        e2 = compute_energy([self._stats(50, 0, 0)], p, 0, 924)
        assert e2.row_nj == pytest.approx(0.5 * e1.row_nj)

    def test_breakdown_components(self) -> None:
        p = gddr5_energy()
        e = compute_energy([self._stats(10, 20, 5)], p, 9240, 924.0)
        assert e.row_nj == pytest.approx(10 * p.e_act_nj)
        assert e.access_nj == pytest.approx(20 * p.e_rd_nj + 5 * p.e_wr_nj)
        assert e.background_nj == pytest.approx(p.background_mw * 10.0)
        assert e.total_nj == pytest.approx(
            e.row_nj + e.access_nj + e.background_nj
        )
        assert 0 < e.row_fraction < 1

    def test_hbm_projection_matches_paper_weighting(self) -> None:
        # A 44 % row-energy reduction projects to ~22 % on HBM1 (50 % row
        # fraction) and ~11 % on HBM2 (25 % row fraction) — Section V.
        reduced = project_memory_system_energy(100.0, 56.0, hbm1_energy())
        assert reduced == pytest.approx(1 - 0.22)
        reduced = project_memory_system_energy(100.0, 56.0, hbm2_energy())
        assert reduced == pytest.approx(1 - 0.11)

    def test_projection_degenerate_baseline(self) -> None:
        assert project_memory_system_energy(0.0, 0.0, hbm1_energy()) == 1.0

    def test_projection_explicit_other(self) -> None:
        val = project_memory_system_energy(
            50.0, 25.0, hbm1_energy(), baseline_other_nj=50.0
        )
        assert val == pytest.approx(0.75)
