"""Integration tests for the supervised, fault-tolerant runner.

The invariants pinned down here (under deterministic chaos injection,
at ``jobs=1`` and ``jobs>1``):

1. **Determinism survives recovery** — a matrix that crashed, hung, or
   lost its worker mid-run produces reports field-identical to a
   fault-free run once retried.
2. **keep_going salvages the sweep** — persistently failing cells are
   quarantined into structured ``CellFailure`` records while every
   healthy cell is returned.
3. **The cache self-heals end-to-end** — a blob corrupted on disk costs
   one extra simulation, never a failed run.
4. **The CLI maps outcomes to exit codes** — 0 clean, 3 partial
   (``--keep-going``), 4 failed — and writes the failure manifest.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CellFailedError
from repro.harness import cli
from repro.harness.cache import ResultCache
from repro.harness.experiments import ExperimentResult
from repro.harness.faults import FaultPlan
from repro.harness.runner import MatrixResult, Runner
from repro.harness.schemes import evaluation_schemes
from repro.telemetry.hub import (
    HARNESS_POOL_REBUILDS,
    HARNESS_QUARANTINED,
    HARNESS_RETRIES,
    HARNESS_TIMEOUTS,
    HARNESS_WORKER_CRASHES,
)

SCALE = 0.1
APPS = ("SCP", "GEMM")
#: Generous bound for injected hangs: far above a healthy cell's runtime
#: at this scale (~0.3 s), far below the suite's patience.
HANG_SECONDS = 30.0
CELL_TIMEOUT = 1.5


def _schemes() -> dict:
    return {"Baseline": evaluation_schemes()["Baseline"]}


def _runner(**kwargs) -> Runner:
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("verbose", False)
    kwargs.setdefault("cache", None)
    kwargs.setdefault("faults", None)
    kwargs.setdefault("retry_backoff", 0.01)
    return Runner(**kwargs)


@pytest.fixture(scope="module")
def clean_reports() -> MatrixResult:
    """Fault-free reference matrix every chaos run must reproduce."""
    return _runner().run_matrix(APPS, _schemes())


def _assert_identical(result, clean_reports) -> None:
    assert set(result) == set(clean_reports)
    for cell in clean_reports:
        assert result[cell] == clean_reports[cell], (
            f"report for {cell} differs from the fault-free run"
        )


# ----------------------------------------------------------------------
# Recovery paths: retried results are field-identical to clean runs
# ----------------------------------------------------------------------
class TestRecoveryDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crash_is_retried_transparently(self, clean_reports, jobs):
        runner = _runner(
            jobs=jobs, retries=1, faults=FaultPlan.parse("crash@0")
        )
        result = runner.run_matrix(APPS, _schemes())
        _assert_identical(result, clean_reports)
        assert result.ok
        assert runner.metrics.counter(HARNESS_RETRIES) == 1
        assert runner.metrics.counter(HARNESS_QUARANTINED) == 0

    def test_dead_worker_rebuilds_the_pool(self, clean_reports):
        # exit@0 kills the worker process outright: the pool breaks,
        # every in-flight cell is charged a crash attempt, the pool is
        # rebuilt, and the retries reproduce the clean reports.
        runner = _runner(
            jobs=2, retries=2, faults=FaultPlan.parse("exit@0")
        )
        result = runner.run_matrix(APPS, _schemes())
        _assert_identical(result, clean_reports)
        assert runner.metrics.counter(HARNESS_POOL_REBUILDS) >= 1
        assert runner.metrics.counter(HARNESS_WORKER_CRASHES) >= 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_hung_cell_is_killed_and_retried(self, clean_reports, jobs):
        # With a cell timeout set, even jobs=1 goes through the
        # supervised pool (an in-process cell cannot be preempted).
        runner = _runner(
            jobs=jobs,
            retries=1,
            cell_timeout=CELL_TIMEOUT,
            faults=FaultPlan.parse(f"hang@0:{HANG_SECONDS}"),
        )
        result = runner.run_matrix(APPS, _schemes())
        _assert_identical(result, clean_reports)
        assert runner.metrics.counter(HARNESS_TIMEOUTS) == 1

    def test_serial_crash_then_hang_mixed_plan(self, clean_reports):
        # Acceptance scenario: one injected crash plus one injected hang
        # in the same matrix, completed under keep_going with every
        # healthy cell identical to the fault-free run.
        runner = _runner(
            jobs=2,
            retries=1,
            cell_timeout=CELL_TIMEOUT,
            keep_going=True,
            faults=FaultPlan.parse(f"crash@0;hang@1:{HANG_SECONDS}"),
        )
        result = runner.run_matrix(APPS, _schemes())
        _assert_identical(result, clean_reports)
        assert result.ok
        assert runner.metrics.counter(HARNESS_RETRIES) == 2


# ----------------------------------------------------------------------
# Quarantine and keep_going semantics
# ----------------------------------------------------------------------
class TestKeepGoing:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_persistent_failure_is_quarantined(self, clean_reports, jobs):
        runner = _runner(
            jobs=jobs, retries=1, faults=FaultPlan.parse("crash@0x9")
        )
        result = runner.run_matrix(APPS, _schemes(), keep_going=True)
        # Cell 0 is SCP/Baseline (dispatch order); GEMM must survive.
        assert ("GEMM", "Baseline") in result
        assert ("SCP", "Baseline") not in result
        assert result["GEMM", "Baseline"] == clean_reports[
            "GEMM", "Baseline"
        ]
        assert not result.ok
        (failure,) = result.failures
        assert failure.app == "SCP"
        assert failure.error_type == "ChaosCrash"
        assert failure.attempts == 2, "1 attempt + 1 retry"
        assert "ChaosCrash" in failure.traceback
        assert failure.elapsed >= 0.0
        assert runner.failures == [failure]

    def test_indexing_a_failed_cell_raises_cell_failed(self):
        runner = _runner(retries=0, faults=FaultPlan.parse("crash@0x9"))
        result = runner.run_matrix(APPS, _schemes(), keep_going=True)
        with pytest.raises(CellFailedError, match="quarantined"):
            result["SCP", "Baseline"]
        assert result.get(("SCP", "Baseline")) is None
        with pytest.raises(KeyError):
            result["no-such-app", "Baseline"]

    def test_without_keep_going_the_sweep_raises_at_the_end(
        self, clean_reports
    ):
        runner = _runner(retries=0, faults=FaultPlan.parse("crash@0x9"))
        with pytest.raises(CellFailedError) as info:
            runner.run_matrix(APPS, _schemes())
        (failure,) = info.value.failures
        assert failure.app == "SCP"
        # The healthy cell was still simulated (and memoized) before the
        # raise: a follow-up keep_going call serves it from memory.
        assert runner.simulations_run == 1
        result = runner.run_matrix(APPS, _schemes(), keep_going=True)
        assert result["GEMM", "Baseline"] == clean_reports[
            "GEMM", "Baseline"
        ]

    def test_timeout_quarantine_records_cell_timeout_error(self):
        runner = _runner(
            retries=0,
            cell_timeout=CELL_TIMEOUT,
            faults=FaultPlan.parse(f"hang@0:{HANG_SECONDS}x9"),
        )
        result = runner.run_matrix(
            ("SCP",), _schemes(), keep_going=True
        )
        (failure,) = result.failures
        assert failure.error_type == "CellTimeoutError"
        assert "wall-clock timeout" in failure.message


# ----------------------------------------------------------------------
# Cache corruption end-to-end (chaos corrupt -> self-heal -> warm hit)
# ----------------------------------------------------------------------
class TestCorruptBlobEndToEnd:
    def test_corrupted_store_self_heals_on_the_next_run(
        self, clean_reports, tmp_path
    ):
        cell = ("SCP", "Baseline")
        # Run 1: simulate and corrupt the stored blob via the chaos plan.
        chaotic = _runner(
            cache=ResultCache(tmp_path, enabled=True),
            faults=FaultPlan.parse("corrupt@0"),
        )
        first = chaotic.run_matrix(("SCP",), _schemes())
        assert first[cell] == clean_reports[cell]
        assert chaotic.simulations_run == 1

        # Run 2 (cold runner, same cache dir): the corrupt blob is
        # quarantined, the cell re-simulated, and a healthy blob stored.
        healing = _runner(cache=ResultCache(tmp_path, enabled=True))
        second = healing.run_matrix(("SCP",), _schemes())
        assert second[cell] == clean_reports[cell]
        assert healing.simulations_run == 1, "corrupt blob => resimulate"
        assert healing.cache.quarantined == 1

        # Run 3: the healed blob now serves a warm hit.
        warm = _runner(cache=ResultCache(tmp_path, enabled=True))
        third = warm.run_matrix(("SCP",), _schemes())
        assert third[cell] == clean_reports[cell]
        assert warm.simulations_run == 0
        assert warm.cache.hits == 1


# ----------------------------------------------------------------------
# CLI: flags, exit codes, failure manifest
# ----------------------------------------------------------------------
def _tiny_experiment(runner: Runner, apps=APPS) -> ExperimentResult:
    reports = runner.run_matrix(apps, _schemes())
    # Touch every *requested* cell — like real experiments do — so a
    # quarantined cell raises CellFailedError from the MatrixResult.
    text = ", ".join(
        f"{app}/Baseline={reports[app, 'Baseline'].activations}"
        for app in apps
    )
    return ExperimentResult("tiny", text)


@pytest.fixture
def tiny_cli(monkeypatch):
    monkeypatch.setattr(cli, "EXPERIMENTS", {"tiny": _tiny_experiment})
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    return ["tiny", "--scale", str(SCALE), "--quiet", "--no-cache"]


class TestCliExitCodes:
    def test_clean_run_exits_zero(self, tiny_cli, capsys):
        assert cli.main(tiny_cli) == cli.EXIT_OK
        assert "SCP/Baseline=" in capsys.readouterr().out

    def test_recovered_chaos_still_exits_zero(self, tiny_cli):
        code = cli.main(
            tiny_cli + ["--chaos", "crash@0", "--retries", "1"]
        )
        assert code == cli.EXIT_OK

    def test_unrecoverable_failure_exits_failed(self, tiny_cli, capsys):
        code = cli.main(
            tiny_cli + ["--chaos", "crash@0x9", "--retries", "0"]
        )
        assert code == cli.EXIT_FAILED
        assert "failed after retries" in capsys.readouterr().err

    def test_keep_going_exits_partial_and_writes_manifest(
        self, tiny_cli, tmp_path, capsys
    ):
        manifest_path = tmp_path / "failures.json"
        code = cli.main(
            tiny_cli
            + [
                "--chaos", "crash@0x9", "--retries", "0", "--keep-going",
                "--failures-out", str(manifest_path),
            ]
        )
        assert code == cli.EXIT_PARTIAL
        err = capsys.readouterr().err
        assert "[partial] tiny incomplete" in err
        manifest = json.loads(manifest_path.read_text())
        assert manifest["failed_cells"] == 1
        (record,) = manifest["failures"]
        assert record["app"] == "SCP"
        assert record["error_type"] == "ChaosCrash"
        assert record["attempts"] == 1
        assert record["traceback"]

    def test_chaos_from_env_is_honoured(self, tiny_cli, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash@0x9")
        code = cli.main(tiny_cli + ["--retries", "0"])
        assert code == cli.EXIT_FAILED

    def test_bad_flags_are_usage_errors(self, tiny_cli):
        with pytest.raises(SystemExit) as info:
            cli.main(tiny_cli + ["--chaos", "frobnicate@1"])
        assert info.value.code == 2
        with pytest.raises(SystemExit):
            cli.main(tiny_cli + ["--retries", "-1"])
        with pytest.raises(SystemExit):
            cli.main(tiny_cli + ["--cell-timeout", "0"])
