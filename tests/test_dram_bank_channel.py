"""Unit tests for the DRAM bank/channel timing model."""

import pytest

from repro.config import AddressMapping, gddr5_timings
from repro.dram import Channel, DRAMCommand, NO_ROW, TimingChecker


def make_channel(**kwargs) -> Channel:
    return Channel(
        0, AddressMapping(), gddr5_timings(), log_commands=True, **kwargs
    )


class TestActivatePath:
    def test_first_activate_opens_row(self) -> None:
        ch = make_channel()
        bank = ch.banks[0]
        t_act = ch.switch_row(bank, row=7, now=0.0)
        assert t_act == 0.0
        assert bank.open_row == 7

    def test_column_respects_trcd(self) -> None:
        ch = make_channel()
        bank = ch.banks[0]
        t_act = ch.switch_row(bank, 7, now=0.0)
        t_cmd, data_end = ch.issue_column(bank, is_write=False, now=t_act)
        tm = ch.timings
        assert t_cmd == t_act + tm.tRCD
        assert data_end == t_cmd + tm.tCL + tm.tBURST

    def test_row_switch_costs_tras_trp(self) -> None:
        ch = make_channel()
        tm = ch.timings
        bank = ch.banks[0]
        t_act = ch.switch_row(bank, 7, now=0.0)
        # Switch immediately: PRE cannot issue before tRAS, ACT before +tRP.
        t_act2 = ch.switch_row(bank, 8, now=t_act)
        assert t_act2 >= t_act + tm.tRAS + tm.tRP
        assert t_act2 >= t_act + tm.tRC
        assert bank.open_row == 8

    def test_trrd_between_banks(self) -> None:
        ch = make_channel()
        tm = ch.timings
        t0 = ch.switch_row(ch.banks[0], 1, now=0.0)
        t1 = ch.switch_row(ch.banks[1], 1, now=t0)
        assert t1 - t0 >= tm.tRRD


class TestColumnPath:
    def test_row_hits_pipeline_on_bus(self) -> None:
        ch = make_channel()
        tm = ch.timings
        bank = ch.banks[0]
        t_act = ch.switch_row(bank, 3, now=0.0)
        t1, e1 = ch.issue_column(bank, is_write=False, now=t_act)
        t2, e2 = ch.issue_column(bank, is_write=False, now=t1)
        # Back-to-back reads are limited by the burst length on the bus.
        assert e2 - e1 == tm.tBURST
        assert bank.accesses_this_activation == 2

    def test_tccd_within_bank_group(self) -> None:
        ch = make_channel()
        tm = ch.timings
        b0, b1 = ch.banks[0], ch.banks[1]  # same bank group (0-3)
        assert b0.bank_group == b1.bank_group
        ta0 = ch.switch_row(b0, 1, now=0.0)
        ta1 = ch.switch_row(b1, 1, now=0.0)
        t1, _ = ch.issue_column(b0, is_write=False, now=max(ta0, ta1))
        t2, _ = ch.issue_column(b1, is_write=False, now=t1)
        assert t2 - t1 >= tm.tCCD

    def test_write_then_read_same_bank_tcdlr(self) -> None:
        ch = make_channel()
        tm = ch.timings
        bank = ch.banks[0]
        t_act = ch.switch_row(bank, 3, now=0.0)
        t_wr, wr_end = ch.issue_column(bank, is_write=True, now=t_act)
        t_rd, _ = ch.issue_column(bank, is_write=False, now=t_wr)
        assert t_rd >= wr_end + tm.tCDLR

    def test_write_recovery_gates_precharge(self) -> None:
        ch = make_channel()
        tm = ch.timings
        bank = ch.banks[0]
        t_act = ch.switch_row(bank, 3, now=0.0)
        t_wr, wr_end = ch.issue_column(bank, is_write=True, now=t_act)
        t_act2 = ch.switch_row(bank, 4, now=t_wr)
        # PRE must wait for write recovery, then ACT waits tRP more.
        assert t_act2 >= wr_end + tm.tWR + tm.tRP


class TestStatsIntegration:
    def test_rbl_histogram_counts_accesses_per_activation(self) -> None:
        ch = make_channel()
        bank = ch.banks[0]
        t = ch.switch_row(bank, 1, now=0.0)
        for _ in range(3):
            t, _ = ch.issue_column(bank, is_write=False, now=t)
        t = ch.switch_row(bank, 2, now=t)  # closes row 1 with RBL 3
        t, _ = ch.issue_column(bank, is_write=False, now=t)
        ch.finalize()  # closes row 2 with RBL 1
        assert ch.stats.activations == 2
        assert ch.stats.rbl_histogram[3] == 1
        assert ch.stats.rbl_histogram[1] == 1
        assert ch.stats.avg_rbl == pytest.approx(2.0)

    def test_activation_log_read_only_flag(self) -> None:
        ch = make_channel()
        bank = ch.banks[0]
        t = ch.switch_row(bank, 1, now=0.0)
        t, _ = ch.issue_column(bank, is_write=False, now=t)
        t, _ = ch.issue_column(bank, is_write=True, now=t)
        ch.finalize()
        (rec,) = ch.stats.activation_log
        assert rec.reads == 1 and rec.writes == 1
        assert not rec.reads_only

    def test_bus_utilization_tracked(self) -> None:
        ch = make_channel()
        tm = ch.timings
        bank = ch.banks[0]
        t = ch.switch_row(bank, 1, now=0.0)
        ch.issue_column(bank, is_write=False, now=t)
        assert ch.stats.bus.total_busy == tm.tBURST


class TestCommandLogLegality:
    """Every command sequence the channel emits must pass the checker."""

    def test_mixed_traffic_stream_is_legal(self) -> None:
        ch = make_channel()
        t = 0.0
        # Exercise switches, hits, writes across banks and groups.
        pattern = [
            (0, 1, False),
            (0, 1, False),
            (5, 2, True),
            (0, 3, False),
            (9, 1, False),
            (5, 2, False),
            (1, 7, True),
            (0, 3, True),
            (15, 0, False),
            (1, 8, False),
        ]
        for bank_idx, row, is_write in pattern:
            bank = ch.banks[bank_idx]
            if bank.open_row != row:
                t = max(t, ch.switch_row(bank, row, now=t))
            t_cmd, _ = ch.issue_column(bank, is_write=is_write, now=t)
            t = max(t, t_cmd)
        checker = TimingChecker(ch.timings)
        n = checker.check_stream(sorted(ch.command_log, key=lambda r: r.time))
        assert n == len(ch.command_log)
        assert n > len(pattern)  # includes ACT/PRE commands

    def test_checker_rejects_trcd_violation(self) -> None:
        from repro.dram.commands import CommandRecord
        from repro.errors import TimingViolationError

        checker = TimingChecker(gddr5_timings())
        checker.check(
            CommandRecord(time=0, command=DRAMCommand.ACTIVATE, bank=0,
                          bank_group=0, row=1)
        )
        with pytest.raises(TimingViolationError):
            checker.check(
                CommandRecord(time=5, command=DRAMCommand.READ, bank=0,
                              bank_group=0, row=1)
            )

    def test_checker_rejects_act_to_open_bank(self) -> None:
        from repro.dram.commands import CommandRecord
        from repro.errors import TimingViolationError

        checker = TimingChecker(gddr5_timings())
        checker.check(
            CommandRecord(time=0, command=DRAMCommand.ACTIVATE, bank=0,
                          bank_group=0, row=1)
        )
        with pytest.raises(TimingViolationError):
            checker.check(
                CommandRecord(time=100, command=DRAMCommand.ACTIVATE, bank=0,
                              bank_group=0, row=2)
            )
