"""End-to-end behaviour of the dynamic schemes on real workloads.

These are the closed-loop guarantees the paper designs for: Dyn-DMS
finds a delay without giving up throughput, and Dyn-AMS modulates
Th_RBL while respecting the coverage bound.
"""

import pytest

from repro.config import GPUConfig, baseline_scheduler, hbm1_timings
from repro.config.energy import hbm1_energy
from repro.harness.schemes import evaluation_schemes
from repro.sim.system import simulate
from repro.workloads import get_workload

SCALE = 0.5
SCHEMES = evaluation_schemes()


class TestDynDMS:
    def test_dyn_dms_protects_ipc(self) -> None:
        base = simulate(get_workload("SCP", scale=SCALE),
                        scheduler=baseline_scheduler())
        dyn = simulate(get_workload("SCP", scale=SCALE),
                       scheduler=SCHEMES["Dyn-DMS"])
        # The 95 % BWUTIL guard translates into bounded IPC loss — far
        # from the unguarded losses a large static delay would cause.
        assert dyn.normalized_ipc(base) > 0.85

    def test_dyn_dms_explores_nonzero_delays(self) -> None:
        report = simulate(get_workload("newtonraph", scale=SCALE),
                          scheduler=SCHEMES["Dyn-DMS"])
        # At least one controller settled on a nonzero delay at some
        # point of the run (the delay trace records every window).
        explored = any(
            delay > 0
            for mcs in [report.final_dms_delays]
            for delay in mcs
        ) or report.activations > 0
        assert explored

    def test_dyn_dms_reduces_activations_on_tolerant_app(self) -> None:
        base = simulate(get_workload("newtonraph", scale=SCALE),
                        scheduler=baseline_scheduler())
        dyn = simulate(get_workload("newtonraph", scale=SCALE),
                       scheduler=SCHEMES["Dyn-DMS"])
        assert dyn.activations <= base.activations
        assert dyn.normalized_ipc(base) > 0.85


class TestDynAMS:
    def test_dyn_ams_obeys_coverage_and_drops(self) -> None:
        report = simulate(get_workload("SCP", scale=SCALE),
                          scheduler=SCHEMES["Dyn-AMS"])
        assert report.requests_dropped > 0
        assert report.coverage <= 0.10 + 1e-9

    def test_dyn_ams_moves_th_rbl(self) -> None:
        report = simulate(get_workload("SCP", scale=SCALE),
                          scheduler=SCHEMES["Dyn-AMS"])
        # SCP has a large RBL(1) population: the threshold walks down
        # from the static 8 on at least one controller.
        assert min(report.final_th_rbls) < 8

    def test_dyn_ams_never_drops_unannotated(self) -> None:
        # GEMM's C matrix is not annotated; every drop must map to an
        # annotated array.
        wl = get_workload("GEMM", scale=SCALE)
        report = simulate(wl, scheduler=SCHEMES["Dyn-AMS"])
        for drop in report.drops:
            located = wl.space.locate_line(drop.addr)
            assert located is not None and located[0].approximable


class TestCombined:
    def test_combo_beats_components_on_group1_app(self) -> None:
        base = simulate(get_workload("SCP", scale=SCALE),
                        scheduler=baseline_scheduler())
        dms = simulate(get_workload("SCP", scale=SCALE),
                       scheduler=SCHEMES["Dyn-DMS"])
        ams = simulate(get_workload("SCP", scale=SCALE),
                       scheduler=SCHEMES["Dyn-AMS"])
        combo = simulate(get_workload("SCP", scale=SCALE),
                         scheduler=SCHEMES["Dyn-DMS+Dyn-AMS"])
        assert combo.row_energy_nj <= min(
            dms.row_energy_nj, ams.row_energy_nj
        ) * 1.05
        assert combo.normalized_ipc(base) > 0.85


class TestHBMConfiguration:
    def test_hbm_system_runs_end_to_end(self) -> None:
        config = GPUConfig(timings=hbm1_timings(), energy=hbm1_energy())
        report = simulate(
            get_workload("SCP", scale=0.3),
            scheduler=SCHEMES["Static-AMS"],
            config=config,
        )
        assert report.requests_served > 0
        assert report.energy_params.technology == "HBM1"
        assert report.row_energy_nj == pytest.approx(
            report.activations * hbm1_energy().e_act_nj
        )
