"""Unit tests for the fault-tolerance building blocks.

Covers the pieces below the supervised runner (which has its own
integration suite in ``test_fault_tolerance.py``):

* the ``HarnessError`` exception hierarchy;
* :class:`FaultPlan` parsing (``REPRO_CHAOS`` grammar) and firing rules;
* :class:`CellFailure` records and the manifest shape;
* self-healing ``ResultCache.load`` across every corruption mode, and
  concurrent-deletion tolerance of ``entries``/``size_bytes``;
* the engine's enriched ``max_events`` diagnostic (including the
  system-level per-bank pending snapshot).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.config import AddressMapping
from repro.config.address import DecodedAddress
from repro.dram import MemoryRequest
from repro.errors import (
    CellFailedError,
    CellTimeoutError,
    HarnessError,
    ReproError,
    SimulationError,
    WorkerCrashError,
)
from repro.harness.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.harness.faults import (
    CellFailure,
    ChaosCrash,
    FaultPlan,
    FaultSpec,
    corrupt_blob,
    failure_manifest,
)
from repro.harness.runner import Runner
from repro.harness.schemes import evaluation_schemes
from repro.sched import PendingQueue
from repro.sim.engine import Engine

SCALE = 0.1


# ----------------------------------------------------------------------
# Exception hierarchy
# ----------------------------------------------------------------------
class TestErrorHierarchy:
    def test_harness_errors_derive_from_repro_error(self) -> None:
        for exc_type in (
            HarnessError, CellTimeoutError, WorkerCrashError,
            CellFailedError,
        ):
            assert issubclass(exc_type, ReproError)
        assert issubclass(CellTimeoutError, HarnessError)
        assert issubclass(WorkerCrashError, HarnessError)
        assert issubclass(CellFailedError, HarnessError)

    def test_chaos_crash_is_not_a_repro_error(self) -> None:
        # The retry machinery must survive arbitrary exceptions, so the
        # injected one deliberately lives outside the hierarchy.
        assert not issubclass(ChaosCrash, ReproError)

    def test_cell_failed_error_carries_failures(self) -> None:
        failure = _failure()
        exc = CellFailedError("boom", failures=[failure])
        assert exc.failures == [failure]
        assert CellFailedError("bare").failures == []


# ----------------------------------------------------------------------
# FaultPlan grammar and firing rules
# ----------------------------------------------------------------------
class TestFaultPlanParsing:
    def test_single_specs(self) -> None:
        assert FaultPlan.parse("crash@2").specs == (
            FaultSpec(kind="crash", cell=2),
        )
        assert FaultPlan.parse("hang@1:30").specs == (
            FaultSpec(kind="hang", cell=1, seconds=30.0),
        )
        assert FaultPlan.parse("exit@0x3").specs == (
            FaultSpec(kind="exit", cell=0, attempts=3),
        )
        assert FaultPlan.parse("hang@4:0.5x2").specs == (
            FaultSpec(kind="hang", cell=4, seconds=0.5, attempts=2),
        )

    def test_multi_spec_plans_and_separators(self) -> None:
        plan = FaultPlan.parse(" crash@0 ; corrupt@1 , exit@2 ")
        assert [s.kind for s in plan.specs] == ["crash", "corrupt", "exit"]
        assert bool(plan)
        assert not FaultPlan.parse("")
        assert not FaultPlan()

    @pytest.mark.parametrize(
        "bad",
        ["crash", "crash@", "@1", "frobnicate@1", "crash@-1",
         "crash@1x0", "hang@1:-2", "crash@one"],
    )
    def test_invalid_specs_raise_value_error(self, bad: str) -> None:
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch) -> None:
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "   ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "crash@1;hang@0:2")
        plan = FaultPlan.from_env()
        assert plan is not None and len(plan.specs) == 2


class TestStrideGrammar:
    """``kind@cell/stride`` — deterministic fault *rates* for the
    service tier's chaos load tests."""

    def test_stride_parses(self) -> None:
        assert FaultSpec.parse("exit@0/5") == FaultSpec(
            kind="exit", cell=0, stride=5
        )

    def test_stride_composes_with_seconds_and_attempts(self) -> None:
        spec = FaultSpec.parse("hang@2/3:1.5x4")
        assert spec == FaultSpec(
            kind="hang", cell=2, stride=3, seconds=1.5, attempts=4
        )

    def test_stride_matches_the_arithmetic_progression(self) -> None:
        spec = FaultSpec.parse("crash@1/4")
        assert [c for c in range(14) if spec.matches(c)] == [1, 5, 9, 13]

    def test_zero_stride_is_exact_match(self) -> None:
        spec = FaultSpec.parse("crash@3")
        assert spec.matches(3)
        assert not spec.matches(6)
        assert not spec.matches(0)

    @pytest.mark.parametrize(
        "bad", ["exit@0/0", "exit@0/-2", "exit@/5", "exit@0/two"]
    )
    def test_invalid_strides_raise(self, bad: str) -> None:
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_plan_active_honours_stride_and_attempts(self) -> None:
        plan = FaultPlan.parse("crash@0/2x2")
        assert list(plan.active(4, 2))
        assert not list(plan.active(3, 1))  # off the progression
        assert not list(plan.active(4, 3))  # attempts exhausted


class TestFaultPlanFiring:
    def test_crash_fires_only_for_its_cell_and_attempts(self) -> None:
        plan = FaultPlan.parse("crash@1x2")
        # Wrong cell: nothing happens.
        plan.fire_pre_simulation(0, 1, in_worker=False)
        # Attempts 1 and 2 crash, attempt 3 is clean.
        for attempt in (1, 2):
            with pytest.raises(ChaosCrash):
                plan.fire_pre_simulation(1, attempt, in_worker=False)
        plan.fire_pre_simulation(1, 3, in_worker=False)

    def test_exit_degrades_to_exception_in_process(self) -> None:
        # In-process, os._exit would kill the harness itself; the fault
        # degrades to a WorkerCrashError instead.
        plan = FaultPlan.parse("exit@0")
        with pytest.raises(WorkerCrashError):
            plan.fire_pre_simulation(0, 1, in_worker=False)

    def test_hang_sleeps_for_the_requested_time(self) -> None:
        plan = FaultPlan.parse("hang@0:0.1")
        start = time.perf_counter()
        plan.fire_pre_simulation(0, 1, in_worker=False)
        assert time.perf_counter() - start >= 0.1

    def test_corrupt_targets_only_its_cell(self) -> None:
        plan = FaultPlan.parse("corrupt@2;crash@1")
        assert plan.should_corrupt(2)
        assert not plan.should_corrupt(1)
        # corrupt does not fire pre-simulation.
        plan.fire_pre_simulation(2, 1, in_worker=False)


# ----------------------------------------------------------------------
# CellFailure records
# ----------------------------------------------------------------------
def _failure() -> CellFailure:
    return CellFailure(
        app="SCP", label="Baseline", key="ab" * 32,
        error_type="ChaosCrash", message="injected",
        traceback="Traceback ...", attempts=2, elapsed=1.5,
    )


class TestCellFailure:
    def test_to_dict_round_trips_through_json(self) -> None:
        blob = json.loads(json.dumps(_failure().to_dict()))
        assert blob["app"] == "SCP"
        assert blob["error_type"] == "ChaosCrash"
        assert blob["attempts"] == 2

    def test_manifest_shape(self) -> None:
        manifest = failure_manifest([_failure(), _failure()])
        assert manifest["failed_cells"] == 2
        assert len(manifest["failures"]) == 2
        json.dumps(manifest)  # must be serializable as-is

    def test_summary_mentions_identity_and_error(self) -> None:
        text = _failure().summary()
        assert "SCP/Baseline" in text
        assert "ChaosCrash" in text
        assert "2 attempt(s)" in text


# ----------------------------------------------------------------------
# Self-healing result cache
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stored_cache_dir(tmp_path_factory):
    """A cache directory holding one healthy blob (module-shared)."""
    root = tmp_path_factory.mktemp("heal-cache")
    cache = ResultCache(root, enabled=True)
    runner = Runner(
        scale=SCALE, verbose=False, cache=cache, faults=None
    )
    runner.run("SCP", evaluation_schemes()["Baseline"])
    (entry,) = cache.entries()
    return root, entry


def _fresh_copy(stored_cache_dir, tmp_path):
    """Copy the healthy blob into a private cache dir for mutation."""
    root, entry = stored_cache_dir
    dest = tmp_path / "cache" / entry.parent.name / entry.name
    dest.parent.mkdir(parents=True)
    dest.write_bytes(entry.read_bytes())
    return ResultCache(tmp_path / "cache", enabled=True), dest, entry.stem


class TestCacheSelfHealing:
    def test_healthy_blob_still_loads(self, stored_cache_dir, tmp_path):
        cache, path, key = _fresh_copy(stored_cache_dir, tmp_path)
        assert cache.load(key) is not None
        assert cache.quarantined == 0
        assert path.exists()

    @pytest.mark.parametrize(
        "mutation",
        [
            pytest.param(lambda blob: "{ not json", id="undecodable-json"),
            pytest.param(lambda blob: json.dumps([1, 2, 3]), id="non-dict"),
            pytest.param(
                lambda blob: json.dumps(
                    {"format_version": CACHE_FORMAT_VERSION}
                ),
                id="missing-report-key",
            ),
            pytest.param(
                lambda blob: json.dumps(
                    {"format_version": CACHE_FORMAT_VERSION,
                     "report": {"workload": "x"}}
                ),
                id="incomplete-report-payload",
            ),
            pytest.param(
                lambda blob: json.dumps(
                    {"format_version": CACHE_FORMAT_VERSION,
                     "report": [1, 2]}
                ),
                id="report-wrong-type",
            ),
        ],
    )
    def test_corrupt_blob_is_a_miss_and_unlinked(
        self, stored_cache_dir, tmp_path, mutation
    ):
        cache, path, key = _fresh_copy(stored_cache_dir, tmp_path)
        path.write_text(mutation(path.read_text()), encoding="utf-8")
        assert cache.load(key) is None
        assert cache.quarantined == 1
        assert cache.misses == 1
        assert not path.exists(), "corrupt blob must be removed"
        # Self-healed: the next load is an ordinary miss, not an error.
        assert cache.load(key) is None
        assert cache.quarantined == 1

    def test_chaos_corrupt_blob_helper_triggers_healing(
        self, stored_cache_dir, tmp_path
    ):
        cache, path, key = _fresh_copy(stored_cache_dir, tmp_path)
        corrupt_blob(path)
        assert cache.load(key) is None
        assert cache.quarantined == 1
        assert not path.exists()

    def test_version_mismatch_is_a_miss_but_kept(
        self, stored_cache_dir, tmp_path
    ):
        cache, path, key = _fresh_copy(stored_cache_dir, tmp_path)
        blob = json.loads(path.read_text())
        blob["format_version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(blob), encoding="utf-8")
        assert cache.load(key) is None
        assert cache.quarantined == 0, "healthy foreign blob must survive"
        assert path.exists()


class TestCacheConcurrentDeletion:
    def test_size_bytes_tolerates_vanishing_blobs(
        self, stored_cache_dir, tmp_path
    ):
        cache, path, _ = _fresh_copy(stored_cache_dir, tmp_path)
        ghost = path.parent / "deadbeef.json"
        # Simulate a blob deleted between entries() and stat().
        cache.entries = lambda: [path, ghost]  # type: ignore[method-assign]
        assert cache.size_bytes() == path.stat().st_size

    def test_entries_tolerates_stray_and_vanishing_shards(
        self, stored_cache_dir, tmp_path
    ):
        cache, path, _ = _fresh_copy(stored_cache_dir, tmp_path)
        (cache.root / "stray-file").write_text("not a shard")
        (cache.root / path.parent.name / ".tmp-partial.json").write_text("{")
        assert cache.entries() == [path]

    def test_entries_on_missing_root(self, tmp_path):
        cache = ResultCache(tmp_path / "nope", enabled=True)
        assert cache.entries() == []
        assert cache.size_bytes() == 0


# ----------------------------------------------------------------------
# Engine livelock diagnostics
# ----------------------------------------------------------------------
class TestEngineDiagnostics:
    def _spinning_engine(self) -> Engine:
        engine = Engine()

        def respin() -> None:
            engine.after(1.0, respin)

        engine.after(0.0, respin)
        return engine

    def test_overflow_message_carries_engine_state(self) -> None:
        engine = self._spinning_engine()
        with pytest.raises(SimulationError) as info:
            engine.run(max_events=25)
        text = str(info.value)
        assert "max_events=25" in text
        assert "cycle=" in text
        assert "live_events=" in text
        assert "total_processed=" in text

    def test_diagnostics_hook_is_appended(self) -> None:
        engine = self._spinning_engine()
        engine.diagnostics = lambda: "EXTRA-CONTEXT"
        with pytest.raises(SimulationError, match="EXTRA-CONTEXT"):
            engine.run(max_events=10)

    def test_broken_diagnostics_hook_never_masks_the_error(self) -> None:
        engine = self._spinning_engine()

        def explode() -> str:
            raise RuntimeError("probe bug")

        engine.diagnostics = explode
        with pytest.raises(SimulationError, match="diagnostics probe"):
            engine.run(max_events=10)

    def test_system_snapshot_reports_pending_per_bank(self) -> None:
        from repro.sim.system import GPUSystem
        from repro.workloads.registry import get_workload

        system = GPUSystem()
        workload = get_workload("synthetic", scale=0.05, seed=7)
        with pytest.raises(SimulationError, match="pending per bank"):
            system.run(
                workload.warp_streams(system.config), max_events=50
            )


class TestPendingPerBank:
    def _request(self, bank: int, row: int) -> MemoryRequest:
        mapping = AddressMapping()
        addr = mapping.encode(
            DecodedAddress(
                channel=0, bank=bank, bank_group=bank // 4, row=row, column=0
            )
        )
        return MemoryRequest.from_address(addr, is_write=False,
                                          mapping=mapping)

    def test_counts_only_nonempty_banks(self) -> None:
        queue = PendingQueue(8, 16)
        assert queue.pending_per_bank() == {}
        queue.offer(self._request(bank=3, row=1), now=0.0)
        queue.offer(self._request(bank=3, row=2), now=1.0)
        queue.offer(self._request(bank=5, row=1), now=2.0)
        assert queue.pending_per_bank() == {3: 2, 5: 1}
