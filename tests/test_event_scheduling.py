"""Property suites for the scheduling backends and the warm pool.

Two families:

* **Wheel vs. heap equivalence** — the bucketed timer wheel is the
  default engine backend purely as an optimization; the seed's global
  heap remains the reference. Hypothesis drives both backends through
  identical schedules (fractional times, past-clamped times, overflow
  beyond the wheel horizon, nested pushes from callbacks, cancellation
  — including cancellation *during* the run — plus ``until`` cutoffs
  and the ``max_events`` guard) and asserts the execution logs are
  identical event for event.
* **Warm-pool determinism** — a matrix simulated serially, over warm
  worker processes, and over worker threads must produce
  field-identical reports (the codec round trip and the thread-local
  request-id counter are load-bearing here).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import WHEEL_HORIZON

# Times span the wheel generously: fractional sub-cycle offsets (the
# core-to-memory clock ratio makes most real event times non-integral),
# plus values far beyond the horizon to force the overflow heap and the
# batch-advance path.
_times = st.one_of(
    st.integers(0, 50).map(float),
    st.floats(min_value=0.0, max_value=3.0 * WHEEL_HORIZON,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=40.0,
              allow_nan=False, allow_infinity=False),
)

_delays = st.floats(min_value=0.0, max_value=2.0 * WHEEL_HORIZON,
                    allow_nan=False, allow_infinity=False)


@st.composite
def _schedules(draw):
    """A schedule: initial events with nested pushes and cancellations.

    Each event is ``(time, nested_delays, cancel_target)``: when it
    runs, it schedules a follow-up per nested delay and (optionally)
    cancels the initial event ``cancel_target`` — which may already
    have run or been cancelled, both no-ops that must stay no-ops on
    either backend.
    """
    n = draw(st.integers(min_value=1, max_value=30))
    events = []
    for _ in range(n):
        time = draw(_times)
        nested = draw(st.lists(_delays, max_size=2))
        cancel_target = draw(
            st.one_of(st.none(), st.integers(0, n - 1))
        )
        events.append((time, nested, cancel_target))
    pre_cancels = draw(
        st.lists(st.integers(0, n - 1), max_size=n, unique=True)
    )
    return events, pre_cancels


def _execute(backend, events, pre_cancels, *, until=None, max_events=None):
    """Run one schedule on ``backend``; returns every observable."""
    engine = Engine(backend=backend)
    log: list[tuple[float, object]] = []
    handles: list[int] = []

    def make_callback(label, nested, cancel_target):
        def callback() -> None:
            log.append((engine.now, label))
            if cancel_target is not None and cancel_target < len(handles):
                engine.cancel(handles[cancel_target])
            for j, delay in enumerate(nested):
                engine.after(delay, make_callback((label, j), (), None))
        return callback

    for i, (time, nested, cancel_target) in enumerate(events):
        handles.append(
            engine.at(time, make_callback(i, nested, cancel_target))
        )
    for idx in pre_cancels:
        engine.cancel(handles[idx])
    overflowed = False
    try:
        engine.run(until=until, max_events=max_events)
    except SimulationError:
        overflowed = True
    return (
        log, overflowed, engine.events_processed,
        engine.live_event_count, engine.now,
    )


class TestWheelHeapEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(_schedules())
    def test_full_drain_order_identical(self, schedule) -> None:
        events, pre_cancels = schedule
        assert (
            _execute("wheel", events, pre_cancels)
            == _execute("heap", events, pre_cancels)
        )

    @settings(max_examples=100, deadline=None)
    @given(
        _schedules(),
        st.floats(min_value=0.0, max_value=2.0 * WHEEL_HORIZON,
                  allow_nan=False),
    )
    def test_until_cutoff_identical(self, schedule, until) -> None:
        events, pre_cancels = schedule
        assert (
            _execute("wheel", events, pre_cancels, until=until)
            == _execute("heap", events, pre_cancels, until=until)
        )

    @settings(max_examples=100, deadline=None)
    @given(_schedules(), st.integers(min_value=1, max_value=20))
    def test_max_events_guard_identical(self, schedule, cap) -> None:
        events, pre_cancels = schedule
        assert (
            _execute("wheel", events, pre_cancels, max_events=cap)
            == _execute("heap", events, pre_cancels, max_events=cap)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        _schedules(),
        st.floats(min_value=0.0, max_value=WHEEL_HORIZON,
                  allow_nan=False),
    )
    def test_resumed_run_identical(self, schedule, until) -> None:
        """``run(until=...)`` then ``run()`` — the two-phase drive the
        telemetry windows use — stays equivalent across backends."""
        events, pre_cancels = schedule

        def two_phase(backend):
            engine = Engine(backend=backend)
            log: list[tuple[float, int]] = []
            for i, (time, _, _) in enumerate(events):
                engine.at(time, lambda i=i: log.append((engine.now, i)))
            for idx in pre_cancels:
                engine.cancel(idx)
            engine.run(until=until)
            midpoint = list(log)
            engine.run()
            return midpoint, log, engine.now, engine.events_processed

        assert two_phase("wheel") == two_phase("heap")


class TestWarmPoolDeterminism:
    def test_serial_pooled_threaded_field_identical(self) -> None:
        """One matrix, three execution modes, byte-identical reports."""
        from repro.harness.runner import Runner
        from repro.harness.schemes import dms_only, evaluation_schemes

        apps = ["SCP", "GEMM"]
        schemes = {
            "Baseline": evaluation_schemes()["Baseline"],
            "DMS(128)": dms_only(128),
        }

        def run(**kwargs):
            runner = Runner(
                scale=0.1, seed=7, cache=None, verbose=False, **kwargs
            )
            result = runner.run_matrix(apps, schemes)
            runner.close()
            return {
                cell: report.to_dict() for cell, report in result.items()
            }

        serial = run(jobs=1)
        pooled = run(jobs=4)
        threaded = run(jobs=4, threads=True)
        assert serial == pooled
        assert serial == threaded

    def test_pool_survives_across_matrices(self) -> None:
        """The second matrix on one runner reuses the warm workers."""
        from repro.harness.runner import Runner
        from repro.harness.schemes import dms_only, evaluation_schemes

        runner = Runner(scale=0.1, seed=7, cache=None, verbose=False,
                        jobs=2)
        runner.prewarm()
        pool = runner._pool
        assert pool is not None and not pool.closed
        first = runner.run_matrix(
            ["SCP", "GEMM"],
            {"Baseline": evaluation_schemes()["Baseline"]},
        )
        second = runner.run_matrix(
            ["SCP", "GEMM"], {"DMS(128)": dms_only(128)}
        )
        assert runner._pool is pool  # no teardown between matrices
        assert first and second
        runner.close()
        assert pool.closed
