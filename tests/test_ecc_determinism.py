"""Fault-injection determinism and v4 cache-invalidation tests.

The flip sites are a pure function of the SimSpec content (seed,
channel, request id), never of execution order — so the same spec must
produce bit-identical reports (including the injection site digest)
whether the matrix runs serially, across worker processes, or on
threads. The second half pins the cache semantics: v3 blobs and any
``ecc``/``faults`` change miss under the v4 key format.
"""

import dataclasses
import json

from repro.config.faults import FaultConfig
from repro.config.scheduler import SchedulerConfig, static_ams
from repro.harness.cache import ResultCache, cache_key
from repro.harness.runner import Runner
from repro.sim.spec import SimSpec

APP = "SCP"
SCALE = 0.1
SEED = 11
#: High enough that the scaled trace sees multiple injected flips, so
#: the digest comparison below is not vacuously comparing empty sets.
FAULTS = FaultConfig(enabled=True, p_bit=1e-5)
SCHEMES = {
    "Baseline": SchedulerConfig(),
    "Static-AMS": static_ams(),
}


def make_runner(**overrides) -> Runner:
    kwargs = dict(
        scale=SCALE, seed=SEED, ecc="secded", fault_model=FAULTS,
        verbose=False, cache=None,
    )
    kwargs.update(overrides)
    return Runner(**kwargs)


def run_matrix(runner: Runner) -> dict:
    try:
        return {
            label: report.to_dict()
            for (_, label), report in runner.run_matrix(
                [APP], SCHEMES, measure_error=True
            ).items()
        }
    finally:
        runner.close()


class TestExecutionBackendDeterminism:
    def test_reports_carry_flip_sites(self) -> None:
        payloads = run_matrix(make_runner())
        for payload in payloads.values():
            assert payload["ecc"]["flips_injected"] > 0
            assert payload["ecc"]["site_digest"]

    def test_serial_rerun_is_identical(self) -> None:
        assert run_matrix(make_runner()) == run_matrix(make_runner())

    def test_process_fanout_matches_serial(self) -> None:
        serial = run_matrix(make_runner(jobs=1))
        fanned = run_matrix(make_runner(jobs=2))
        assert fanned == serial

    def test_thread_fanout_matches_serial(self) -> None:
        serial = run_matrix(make_runner(jobs=1))
        threaded = run_matrix(make_runner(jobs=2, threads=True))
        assert threaded == serial

    def test_different_seed_moves_the_flip_sites(self) -> None:
        base = run_matrix(make_runner())
        other = run_matrix(make_runner(seed=12))
        for label in SCHEMES:
            assert (
                base[label]["ecc"]["site_digest"]
                != other[label]["ecc"]["site_digest"]
            )


class TestCacheInvalidation:
    def key(self, spec: SimSpec) -> str:
        return cache_key(app=APP, scale=SCALE, seed=SEED, spec=spec)

    def test_ecc_field_changes_the_key(self) -> None:
        base = SimSpec()
        for code in ("parity", "secded", "bch"):
            assert self.key(base) != self.key(
                dataclasses.replace(base, ecc=code)
            )

    def test_fault_fields_change_the_key(self) -> None:
        base = SimSpec()
        variants = [
            FaultConfig(enabled=True),
            FaultConfig(p_bit=1e-6),
            FaultConfig(scale=2.0),
            FaultConfig(sensitivity=0.9),
            FaultConfig(nominal_trcd=14),
        ]
        keys = {self.key(base)}
        for faults in variants:
            keys.add(self.key(dataclasses.replace(base, faults=faults)))
        assert len(keys) == len(variants) + 1

    def test_default_ecc_section_keys_like_the_legacy_form(self) -> None:
        # PR-4-era call sites that never heard of ecc/faults must keep
        # hitting blobs stored via the full-spec path.
        legacy = cache_key(
            app=APP, scale=SCALE, seed=SEED, scheduler=SchedulerConfig()
        )
        assert legacy == self.key(SimSpec())

    def test_v3_blob_is_a_plain_miss(self, tmp_path) -> None:
        runner = make_runner(
            ecc="none", fault_model=None,
            cache=ResultCache(tmp_path, enabled=True),
        )
        try:
            report = runner.run(APP, SchedulerConfig(), label="Baseline")
        finally:
            runner.close()
        key = self.key(SimSpec())
        cache = ResultCache(tmp_path, enabled=True)
        assert cache.load(key) is not None

        path = cache.path_for(key)
        blob = json.loads(path.read_text(encoding="utf-8"))
        blob["format_version"] = 3
        path.write_text(json.dumps(blob), encoding="utf-8")
        assert cache.load(key) is None
        assert cache.quarantined == 0  # healthy blob, kept on disk
        assert path.exists()
        assert report.to_dict()  # the simulated report itself is fine
