"""Parallel runner determinism and the persistent result cache.

Three guarantees are pinned down here:

1. A matrix run with ``jobs=4`` produces reports field-identical to a
   serial run (worker re-seeding makes cells order-independent).
2. A report persisted to disk and reloaded equals the fresh one, and a
   warm cache replays a whole matrix with zero simulations.
3. Cache keys are structurally invalidated: perturbing *any* leaf field
   of SchedulerConfig or GPUConfig — or the app/scale/seed/
   measure_error/format-version identity — yields a different key.
"""

from __future__ import annotations

import dataclasses
import enum

import pytest

from repro.config.gpu import GPUConfig
from repro.config.scheduler import SchedulerConfig
from repro.harness.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    cache_key,
)
from repro.harness.runner import Runner
from repro.harness.schemes import dms_plus_ams, evaluation_schemes

SCALE = 0.12
APPS = ("SCP", "GEMM")


def _schemes() -> dict:
    return {
        "Baseline": evaluation_schemes()["Baseline"],
        "DMS(256)+AMS(8)": dms_plus_ams(256, 8),
    }


def _key(**overrides) -> str:
    base = dict(
        app="SCP",
        scale=SCALE,
        seed=7,
        scheduler=SchedulerConfig(),
        config=GPUConfig(),
        measure_error=False,
    )
    base.update(overrides)
    return cache_key(**base)


# ----------------------------------------------------------------------
# Structural key invalidation
# ----------------------------------------------------------------------
def _leaf_paths(obj, prefix=()):
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if dataclasses.is_dataclass(value):
            yield from _leaf_paths(value, prefix + (f.name,))
        else:
            yield prefix + (f.name,)


def _perturb(value):
    if isinstance(value, bool):
        return not value
    if isinstance(value, enum.Enum):
        members = list(type(value))
        return members[(members.index(value) + 1) % len(members)]
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.5
    if isinstance(value, str):
        return value + "_x"
    raise TypeError(f"unperturbable config leaf: {value!r}")


def _with_perturbed(obj, path):
    name, rest = path[0], path[1:]
    value = getattr(obj, name)
    if rest:
        return dataclasses.replace(obj, **{name: _with_perturbed(value, rest)})
    return dataclasses.replace(obj, **{name: _perturb(value)})


class TestCacheKey:
    def test_key_is_stable_and_hex(self) -> None:
        key = _key()
        assert key == _key()
        assert len(key) == 64
        int(key, 16)

    def test_config_none_hashes_as_default_gpu(self) -> None:
        assert _key(config=None) == _key(config=GPUConfig())

    @pytest.mark.parametrize(
        "path", list(_leaf_paths(SchedulerConfig())),
        ids=lambda p: ".".join(p),
    )
    def test_every_scheduler_field_invalidates(self, path) -> None:
        perturbed = _with_perturbed(SchedulerConfig(), path)
        assert _key(scheduler=perturbed) != _key()

    @pytest.mark.parametrize(
        "path", list(_leaf_paths(GPUConfig())),
        ids=lambda p: ".".join(p),
    )
    def test_every_gpu_field_invalidates(self, path) -> None:
        perturbed = _with_perturbed(GPUConfig(), path)
        assert _key(config=perturbed) != _key()

    def test_identity_fields_invalidate(self) -> None:
        base = _key()
        assert _key(app="GEMM") != base
        assert _key(scale=SCALE * 2) != base
        assert _key(seed=8) != base
        assert _key(measure_error=True) != base
        assert _key(version=CACHE_FORMAT_VERSION + 1) != base


# ----------------------------------------------------------------------
# Serial vs parallel determinism
# ----------------------------------------------------------------------
class TestParallelDeterminism:
    def test_jobs4_matrix_field_identical_to_serial(self) -> None:
        serial = Runner(scale=SCALE, verbose=False, cache=None, jobs=1)
        parallel = Runner(scale=SCALE, verbose=False, cache=None, jobs=4)
        a = serial.run_matrix(APPS, _schemes(), measure_error=True)
        b = parallel.run_matrix(APPS, _schemes(), measure_error=True)
        assert set(a) == set(b)
        for cell in a:
            assert a[cell] == b[cell], f"report mismatch for {cell}"
        assert serial.simulations_run == parallel.simulations_run == 4

    def test_matrix_dedupes_cells_sharing_a_key(self) -> None:
        runner = Runner(scale=SCALE, verbose=False, cache=None)
        baseline = evaluation_schemes()["Baseline"]
        reports = runner.run_matrix(
            ("SCP",), {"Baseline": baseline, "also-baseline": baseline}
        )
        assert runner.simulations_run == 1
        assert reports[("SCP", "Baseline")] is reports[
            ("SCP", "also-baseline")
        ]


# ----------------------------------------------------------------------
# Persistent disk cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_cached_then_reloaded_equals_fresh(self, tmp_path) -> None:
        cache = ResultCache(tmp_path, enabled=True)
        fresh = Runner(scale=SCALE, verbose=False, cache=cache)
        a = fresh.run_matrix(APPS, _schemes(), measure_error=True)
        assert fresh.simulations_run == 4
        assert len(cache.entries()) == 4

        warm = Runner(
            scale=SCALE, verbose=False,
            cache=ResultCache(tmp_path, enabled=True),
        )
        b = warm.run_matrix(APPS, _schemes(), measure_error=True)
        assert warm.simulations_run == 0, "warm cache must not simulate"
        assert warm.cache.hits == 4
        for cell in a:
            assert a[cell] == b[cell], f"cached report differs for {cell}"

    def test_run_hits_disk_across_runners(self, tmp_path) -> None:
        cache = ResultCache(tmp_path, enabled=True)
        scheme = evaluation_schemes()["Baseline"]
        first = Runner(scale=SCALE, verbose=False, cache=cache)
        report = first.run("SCP", scheme)
        second = Runner(
            scale=SCALE, verbose=False,
            cache=ResultCache(tmp_path, enabled=True),
        )
        assert second.run("SCP", scheme) == report
        assert second.simulations_run == 0

    def test_format_version_mismatch_is_a_miss(self, tmp_path) -> None:
        import json

        cache = ResultCache(tmp_path, enabled=True)
        runner = Runner(scale=SCALE, verbose=False, cache=cache)
        scheme = evaluation_schemes()["Baseline"]
        runner.run("SCP", scheme)
        (entry,) = cache.entries()
        blob = json.loads(entry.read_text())
        blob["format_version"] = CACHE_FORMAT_VERSION + 1
        entry.write_text(json.dumps(blob))
        key = entry.stem
        assert ResultCache(tmp_path, enabled=True).load(key) is None

    def test_env_var_disables_cache(self, tmp_path, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache(tmp_path)
        assert not cache.enabled
        assert cache.load("0" * 64) is None
        assert cache.store("0" * 64, object()) is None
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        assert ResultCache(tmp_path).enabled

    def test_clear_removes_entries(self, tmp_path) -> None:
        cache = ResultCache(tmp_path, enabled=True)
        runner = Runner(scale=SCALE, verbose=False, cache=cache)
        runner.run("SCP", evaluation_schemes()["Baseline"])
        assert cache.entries()
        assert cache.clear() == 1
        assert cache.entries() == []
        assert cache.size_bytes() == 0
