"""Tests for all-bank refresh modeling."""

import pytest

from repro.config import AddressMapping, GPUConfig, baseline_scheduler
from repro.config.timing import DRAMTimings
from repro.dram import Channel, DRAMCommand, TimingChecker
from repro.errors import ConfigError
from repro.gpu.warp import Access, WarpOp
from repro.sim.system import GPUSystem


class TestChannelRefresh:
    def make(self, **kw) -> Channel:
        return Channel(
            0, AddressMapping(), DRAMTimings(),
            refresh_enabled=True, log_commands=True, **kw
        )

    def test_refresh_due_after_trefi(self) -> None:
        ch = self.make()
        assert not ch.refresh_due(100)
        assert ch.refresh_due(ch.timings.tREFI)

    def test_disabled_channel_never_due(self) -> None:
        ch = Channel(0, AddressMapping(), DRAMTimings())
        assert not ch.refresh_due(1e9)
        assert ch.next_refresh_time() == float("inf")

    def test_refresh_closes_open_rows_and_blocks_acts(self) -> None:
        ch = self.make()
        bank = ch.banks[0]
        ch.switch_row(bank, 5, now=0.0)
        t = ch.issue_column(bank, is_write=False, now=0.0)[0]
        t_ref = ch.issue_refresh(3600.0)
        assert not bank.is_open
        assert ch.stats.refreshes == 1
        # Next activation respects tRFC.
        t_act = ch.issue_activate(bank, 7, now=t_ref)
        assert t_act >= t_ref + ch.timings.tRFC

    def test_refresh_period_advances(self) -> None:
        ch = self.make()
        first = ch.next_refresh_time()
        ch.issue_refresh(first)
        assert ch.next_refresh_time() == pytest.approx(
            first + ch.timings.tREFI
        )

    def test_command_log_with_refresh_is_legal(self) -> None:
        ch = self.make()
        bank = ch.banks[0]
        t = ch.switch_row(bank, 1, now=0.0)
        t, _ = ch.issue_column(bank, is_write=False, now=t)
        t_ref = ch.issue_refresh(3600.0)
        ch.issue_activate(bank, 2, now=t_ref)
        checker = TimingChecker(ch.timings)
        checker.check_stream(ch.command_log)
        kinds = [r.command for r in ch.command_log]
        assert DRAMCommand.REFRESH in kinds


class TestRefreshedSystem:
    def test_system_with_refresh_still_completes(self) -> None:
        config = GPUConfig(refresh_enabled=True)
        system = GPUSystem(config=config, scheduler=baseline_scheduler())
        warps = [
            [
                WarpOp(compute_cycles=2000.0, instructions=4,
                       accesses=(Access(addr=i * 4096 + w * 65536),))
                for i in range(20)
            ]
            for w in range(8)
        ]
        report = system.run(warps, workload_name="refresh")
        refreshes = sum(s.refreshes for s in report.channel_stats)
        assert refreshes > 0
        assert report.requests_served == 160
        # Refresh energy shows up in the background component.
        assert report.energy.background_nj > 0

    def test_refresh_config_validation(self) -> None:
        with pytest.raises(ConfigError):
            DRAMTimings(tREFI=50, tRFC=88).validate()
