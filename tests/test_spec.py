"""SimSpec serialisation, config codec, and cache-v4 key tests."""

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.codec import decode, decode_optional, encode
from repro.config.faults import FaultConfig
from repro.config.gpu import GPUConfig
from repro.config.scheduler import (
    AMSConfig,
    AMSMode,
    DMSConfig,
    DMSMode,
    SchedulerConfig,
)
from repro.config.tenants import TenantMixSpec, TenantSpec
from repro.errors import ConfigError
from repro.harness.cache import CACHE_FORMAT_VERSION, ResultCache, cache_key
from repro.sim.report import SimReport
from repro.sim.spec import SimSpec

GOLDEN = Path(__file__).resolve().parent / "golden" / "seed_reports.json"


def fancy_spec() -> SimSpec:
    """A spec with every field away from its default."""
    return SimSpec(
        scheduler=SchedulerConfig(
            arbiter="frfcfs-cap",
            hit_streak_cap=2,
            dms=DMSConfig(mode=DMSMode.DYNAMIC, window_cycles=512),
            ams=AMSConfig(mode=AMSMode.STATIC, static_th_rbl=4),
        ),
        device="hbm",
        config=dataclasses.replace(GPUConfig(), num_sms=8),
        measure_error=True,
        record_activations=False,
        telemetry=True,
        ecc="secded",
        faults=FaultConfig(enabled=True, p_bit=1e-6, scale=2.0),
        tenants=TenantMixSpec(
            tenants=(
                TenantSpec(name="fg", workload="MVT",
                           tenant_class="latency"),
                TenantSpec(name="bg", workload="ATAX",
                           tenant_class="approx-batch", scale=0.5,
                           seed=3),
            ),
            arbiter="batch-fair",
        ),
    )


#: Random SimSpec generator: every field varied independently, so the
#: codec round-trip and key-coverage properties below hold over the
#: whole spec space, not just hand-picked examples.
random_specs = st.builds(
    SimSpec,
    scheduler=st.builds(
        SchedulerConfig,
        arbiter=st.sampled_from(["frfcfs", "fcfs", "frfcfs-cap"]),
        hit_streak_cap=st.integers(min_value=1, max_value=16),
        dms=st.builds(
            DMSConfig,
            mode=st.sampled_from(list(DMSMode)),
            static_delay=st.integers(min_value=0, max_value=512),
            window_cycles=st.integers(min_value=64, max_value=4096),
        ),
        ams=st.builds(
            AMSConfig,
            mode=st.sampled_from(list(AMSMode)),
            static_th_rbl=st.integers(min_value=1, max_value=32),
        ),
    ),
    device=st.sampled_from([None, "gddr5", "gddr5x", "hbm", "lpddr4"]),
    config=st.sampled_from(
        [None, dataclasses.replace(GPUConfig(), num_sms=8)]
    ),
    measure_error=st.booleans(),
    record_activations=st.booleans(),
    telemetry=st.booleans(),
    ecc=st.sampled_from(["none", "parity", "secded", "bch"]),
    faults=st.builds(
        FaultConfig,
        enabled=st.booleans(),
        p_bit=st.floats(min_value=0.0, max_value=1e-3),
        scale=st.floats(min_value=0.0, max_value=8.0),
        sensitivity=st.floats(min_value=0.0, max_value=2.0),
    ),
    tenants=st.one_of(
        st.none(),
        st.builds(
            TenantMixSpec,
            tenants=st.lists(
                st.builds(
                    TenantSpec,
                    name=st.uuids().map(lambda u: f"t{u.hex[:6]}"),
                    workload=st.sampled_from(["MVT", "ATAX", "SCP"]),
                    tenant_class=st.sampled_from(
                        ["latency", "bandwidth", "approx-batch"]
                    ),
                    scale=st.floats(min_value=0.25, max_value=2.0),
                    seed=st.one_of(
                        st.none(), st.integers(min_value=0, max_value=99)
                    ),
                ),
                min_size=1, max_size=3,
                unique_by=lambda t: t.name,
            ).map(tuple),
            arbiter=st.sampled_from(
                ["shared-frfcfs", "tenant-priority", "batch-fair"]
            ),
        ),
    ),
)


class TestCodec:
    def test_enum_fields_encode_to_values(self) -> None:
        payload = encode(DMSConfig(mode=DMSMode.STATIC))
        assert payload["mode"] == "static"

    def test_round_trip_nested_dataclass(self) -> None:
        original = fancy_spec().scheduler
        assert decode(SchedulerConfig, encode(original)) == original

    def test_unknown_keys_rejected(self) -> None:
        with pytest.raises(ConfigError, match="bogus"):
            decode(DMSConfig, {"bogus": 1})

    def test_missing_keys_use_defaults(self) -> None:
        cfg = decode(DMSConfig, {"mode": "dynamic"})
        assert cfg.mode is DMSMode.DYNAMIC
        assert cfg.window_cycles == DMSConfig().window_cycles

    def test_decode_optional_passes_none(self) -> None:
        assert decode_optional(GPUConfig, None) is None


class TestSimSpec:
    def test_round_trip_is_lossless(self) -> None:
        spec = fancy_spec()
        rebuilt = SimSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_round_trip_survives_json(self) -> None:
        spec = fancy_spec()
        rebuilt = SimSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_default_round_trip(self) -> None:
        assert SimSpec.from_dict(SimSpec().to_dict()) == SimSpec()

    def test_from_dict_rejects_non_dict(self) -> None:
        with pytest.raises(ConfigError, match="dict"):
            SimSpec.from_dict(["not", "a", "dict"])

    def test_resolve_without_device_returns_config_unchanged(self) -> None:
        custom = dataclasses.replace(GPUConfig(), num_sms=8)
        assert SimSpec(config=custom).resolve_config() is custom
        assert SimSpec().resolve_config() == GPUConfig()

    def test_resolve_with_device_overlays_timings(self) -> None:
        from repro.dram.devices import get_device

        custom = dataclasses.replace(GPUConfig(), num_sms=8)
        resolved = SimSpec(config=custom, device="hbm").resolve_config()
        assert resolved.num_sms == 8
        assert resolved.timings == get_device("hbm").timings
        assert resolved.mem_clock_mhz == get_device("hbm").mem_clock_mhz

    def test_validate_rejects_unknown_device(self) -> None:
        with pytest.raises(ConfigError, match="unknown DRAM device"):
            SimSpec(device="ddr3").validate()

    def test_validate_rejects_unknown_arbiter(self) -> None:
        with pytest.raises(ConfigError, match="arbiter"):
            SimSpec(scheduler=SchedulerConfig(arbiter="lifo")).validate()


class TestSpecProperties:
    """Randomised codec/key coverage — the whole spec space, not
    hand-picked examples."""

    @settings(max_examples=40, deadline=None)
    @given(spec=random_specs)
    def test_codec_round_trip_is_lossless(self, spec: SimSpec) -> None:
        rebuilt = SimSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt == spec

    def test_to_dict_covers_every_dataclass_field(self) -> None:
        field_names = {f.name for f in dataclasses.fields(SimSpec)}
        assert set(fancy_spec().to_dict()) == field_names

    def test_every_spec_field_reaches_the_cache_key(self) -> None:
        # The v4 key embeds spec.to_dict() wholesale; perturbing any
        # single field must therefore change the key. The alternates
        # map is keyed by field name and checked for completeness, so
        # adding a SimSpec field without extending this audit fails
        # loudly instead of silently missing the cache key.
        base = fancy_spec()
        alternates = {
            "scheduler": SchedulerConfig(),
            "device": "gddr5",
            "config": dataclasses.replace(GPUConfig(), num_sms=16),
            "measure_error": False,
            "record_activations": True,
            "telemetry": False,
            "ecc": "bch",
            "faults": FaultConfig(),
            "tenants": None,
        }
        assert set(alternates) == {
            f.name for f in dataclasses.fields(SimSpec)
        }
        reference = cache_key(
            app="synthetic", scale=0.25, seed=11, spec=base
        )
        for name, value in alternates.items():
            variant = dataclasses.replace(base, **{name: value})
            key = cache_key(
                app="synthetic", scale=0.25, seed=11, spec=variant
            )
            assert key != reference, f"field {name!r} not part of the key"


class TestCacheV4:
    def test_format_version_is_4(self) -> None:
        assert CACHE_FORMAT_VERSION == 4

    def base_key(self, **overrides) -> str:
        kwargs = dict(
            app="synthetic", scale=0.25, seed=11,
            scheduler=SchedulerConfig(),
        )
        kwargs.update(overrides)
        return cache_key(**kwargs)

    def test_device_is_part_of_the_key(self) -> None:
        # A named device must not collide with the bare default, even
        # for gddr5 where the resolved configs are identical.
        assert self.base_key() != self.base_key(device="gddr5")
        assert self.base_key(device="gddr5") != self.base_key(device="hbm")

    def test_selector_fields_are_part_of_the_key(self) -> None:
        assert self.base_key() != self.base_key(
            scheduler=SchedulerConfig(arbiter="fcfs")
        )
        assert self.base_key(
            scheduler=SchedulerConfig(arbiter="frfcfs-cap", hit_streak_cap=2)
        ) != self.base_key(
            scheduler=SchedulerConfig(arbiter="frfcfs-cap", hit_streak_cap=4)
        )

    def test_tenant_mix_is_part_of_the_key(self) -> None:
        # The whole tenants section reaches the key: roster, per-tenant
        # class/scale, and the arbiter each perturb it independently.
        mix = TenantMixSpec(
            tenants=(
                TenantSpec(name="a", workload="MVT",
                           tenant_class="latency"),
                TenantSpec(name="b", workload="ATAX",
                           tenant_class="approx-batch"),
            ),
        )
        with_mix = self.base_key(spec=SimSpec(tenants=mix))
        assert with_mix != self.base_key(spec=SimSpec())
        reclassed = dataclasses.replace(
            mix,
            tenants=(
                mix.tenants[0],
                dataclasses.replace(mix.tenants[1],
                                    tenant_class="bandwidth"),
            ),
        )
        assert with_mix != self.base_key(spec=SimSpec(tenants=reclassed))
        rearbited = dataclasses.replace(mix, arbiter="batch-fair")
        assert with_mix != self.base_key(spec=SimSpec(tenants=rearbited))
        rescaled = dataclasses.replace(
            mix,
            tenants=(
                dataclasses.replace(mix.tenants[0], scale=0.5),
                mix.tenants[1],
            ),
        )
        assert with_mix != self.base_key(spec=SimSpec(tenants=rescaled))

    def test_old_format_version_key_differs(self) -> None:
        assert self.base_key() != self.base_key(
            version=CACHE_FORMAT_VERSION - 1
        )

    def test_previous_format_blob_is_a_miss(self, tmp_path) -> None:
        # A v3 blob written by the previous build must be a plain miss —
        # not an error and not quarantined (the blob is healthy).
        report = SimReport.from_dict(
            json.loads(GOLDEN.read_text(encoding="utf-8"))
                ["reports"]["frfcfs"]
        )
        cache = ResultCache(tmp_path, enabled=True)
        key = self.base_key()
        path = cache.store(key, report)
        assert cache.load(key) is not None

        blob = json.loads(path.read_text(encoding="utf-8"))
        blob["format_version"] = CACHE_FORMAT_VERSION - 1
        path.write_text(json.dumps(blob), encoding="utf-8")
        assert cache.load(key) is None
        assert cache.quarantined == 0
        assert path.exists()  # kept on disk: healthy, just older
