"""Tests for the value-prediction unit."""

import pytest

from repro.cache import L2Cache
from repro.config import AddressMapping, L2Config, VPConfig
from repro.dram import MemoryRequest
from repro.errors import ConfigError
from repro.vp import (
    LastValuePredictor,
    NearestLinePredictor,
    OraclePredictor,
    ZeroPredictor,
    make_predictor,
)

MAPPING = AddressMapping()


def read_request(addr: int) -> MemoryRequest:
    return MemoryRequest.from_address(
        addr, is_write=False, mapping=MAPPING, approximable=True
    )


def small_l2() -> L2Cache:
    return L2Cache(
        L2Config(size_bytes=8 * 128 * 4, associativity=4, line_bytes=128,
                 mshr_entries=8)
    )


class TestNearestLinePredictor:
    def test_predicts_nearest_resident_line(self) -> None:
        l2 = small_l2()
        l2.access(5 * 128, is_write=True, full_line=True)
        l2.access(40 * 128, is_write=True, full_line=True)
        vp = NearestLinePredictor(l2, search_radius_sets=8)
        assert vp.predict(read_request(6 * 128)) == 5

    def test_empty_cache_gives_none(self) -> None:
        vp = NearestLinePredictor(small_l2(), search_radius_sets=2)
        assert vp.predict(read_request(0)) is None


class TestOtherPredictors:
    def test_last_value_tracks_fills(self) -> None:
        vp = LastValuePredictor()
        assert vp.predict(read_request(0)) is None
        vp.on_fill(77)
        assert vp.predict(read_request(0)) == 77

    def test_zero_predictor(self) -> None:
        assert ZeroPredictor().predict(read_request(128)) is None

    def test_oracle_returns_own_line(self) -> None:
        vp = OraclePredictor(line_bytes=128)
        assert vp.predict(read_request(5 * 128)) == 5


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("nearest_line", NearestLinePredictor),
            ("last_value", LastValuePredictor),
            ("zero", ZeroPredictor),
            ("oracle", OraclePredictor),
        ],
    )
    def test_factory_kinds(self, kind, cls) -> None:
        vp = make_predictor(VPConfig(kind=kind), small_l2())
        assert isinstance(vp, cls)

    def test_unknown_kind_rejected(self) -> None:
        cfg = VPConfig()
        object.__setattr__(cfg, "kind", "psychic")
        with pytest.raises(ConfigError):
            make_predictor(cfg, small_l2())
