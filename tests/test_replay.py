"""Tests for the approximation-replay pipeline and quality metrics."""

import numpy as np
import pytest

from repro.approx import (
    build_perturbed_inputs,
    mean_relative_error,
    measure_application_error,
    mismatch_rate,
    psnr,
    rmse,
)
from repro.vp.predictor import DropRecord
from repro.workloads import get_workload
from repro.workloads.layout import AddressSpace


def drop(addr: int, donor_line: int | None) -> DropRecord:
    return DropRecord(
        rid=0, addr=addr, tag=None, donor_line_addr=donor_line,
        time=0.0, channel=0,
    )


class TestBuildPerturbedInputs:
    def setup_method(self) -> None:
        self.space = AddressSpace()
        self.a = np.arange(256, dtype=np.float32)
        self.space.add("A", self.a, approximable=True)
        self.b = np.arange(256, dtype=np.float32) + 1000
        self.space.add("B", self.b, approximable=False)
        self.arrays = {"A": self.a, "B": self.b}

    def test_donor_values_substituted(self) -> None:
        target = self.space.line_of("A", 0)
        donor_line_addr = self.space.line_of("A", 32) // 128
        perturbed = build_perturbed_inputs(
            self.space, self.arrays, [drop(target, donor_line_addr)]
        )
        np.testing.assert_array_equal(
            perturbed["A"][:32], self.a[32:64]
        )
        # Untouched elements are identical.
        np.testing.assert_array_equal(perturbed["A"][32:], self.a[32:])

    def test_no_donor_means_zeros(self) -> None:
        target = self.space.line_of("A", 64)
        perturbed = build_perturbed_inputs(
            self.space, self.arrays, [drop(target, None)]
        )
        assert (perturbed["A"][64:96] == 0).all()

    def test_non_approximable_arrays_never_touched(self) -> None:
        target = self.space.line_of("B", 0)
        perturbed = build_perturbed_inputs(
            self.space, self.arrays, [drop(target, None)]
        )
        np.testing.assert_array_equal(perturbed["B"], self.b)

    def test_unmapped_drop_ignored(self) -> None:
        far = self.space.footprint_bytes + 4096
        perturbed = build_perturbed_inputs(
            self.space, self.arrays, [drop(far - far % 128, None)]
        )
        np.testing.assert_array_equal(perturbed["A"], self.a)

    def test_originals_never_mutated(self) -> None:
        snapshot = self.a.copy()
        target = self.space.line_of("A", 0)
        build_perturbed_inputs(
            self.space, self.arrays, [drop(target, None)]
        )
        np.testing.assert_array_equal(self.a, snapshot)


class TestMeasureApplicationError:
    def test_no_drops_no_error(self) -> None:
        wl = get_workload("SCP", scale=0.12)
        assert measure_application_error(wl, []) == 0.0

    def test_drops_cause_bounded_error(self) -> None:
        wl = get_workload("meanfilter", scale=0.12)
        spec = wl.space.spec("img")
        drops = [
            drop(spec.base + i * 128, (spec.base + (i + 1) * 128) // 128)
            for i in range(8)
        ]
        err = measure_application_error(wl, drops)
        assert 0.0 < err < 0.05  # smooth image: tiny error

    def test_zero_donor_worse_than_exact_donor(self) -> None:
        wl = get_workload("meanfilter", scale=0.12)
        spec = wl.space.spec("img")
        exact = [
            drop(spec.base + i * 128, (spec.base + i * 128) // 128)
            for i in range(8)
        ]
        zeros = [drop(spec.base + i * 128, None) for i in range(8)]
        assert measure_application_error(wl, exact) == 0.0
        assert measure_application_error(wl, zeros) > 0.0


class TestQualityMetrics:
    def test_mean_relative_error(self) -> None:
        e = np.array([1.0, 2.0, 4.0])
        a = np.array([1.1, 2.0, 4.0])
        assert mean_relative_error(e, a) == pytest.approx(0.1 / 3)

    def test_rmse_and_psnr(self) -> None:
        e = np.full((8, 8), 100.0)
        a = e + 10.0
        assert rmse(e, a) == pytest.approx(10.0)
        assert psnr(e, a) == pytest.approx(20 * np.log10(255 / 10))
        assert psnr(e, e) == float("inf")

    def test_mismatch_rate(self) -> None:
        assert mismatch_rate(np.array([1, 0, 1]), np.array([1, 1, 1])) == (
            pytest.approx(1 / 3)
        )
