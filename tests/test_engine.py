"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestEngine:
    def test_events_run_in_time_order(self) -> None:
        e = Engine()
        log: list[str] = []
        e.at(10, lambda: log.append("b"))
        e.at(5, lambda: log.append("a"))
        e.at(20, lambda: log.append("c"))
        e.run()
        assert log == ["a", "b", "c"]
        assert e.now == 20

    def test_ties_break_by_insertion_order(self) -> None:
        e = Engine()
        log: list[int] = []
        for i in range(5):
            e.at(7, lambda i=i: log.append(i))
        e.run()
        assert log == [0, 1, 2, 3, 4]

    def test_after_is_relative(self) -> None:
        e = Engine()
        seen: list[float] = []
        e.at(10, lambda: e.after(5, lambda: seen.append(e.now)))
        e.run()
        assert seen == [15]

    def test_negative_delay_rejected(self) -> None:
        e = Engine()
        with pytest.raises(SimulationError):
            e.after(-1, lambda: None)

    def test_past_schedule_clamped_to_now(self) -> None:
        e = Engine()
        seen: list[float] = []
        e.at(10, lambda: e.at(3, lambda: seen.append(e.now)))
        e.run()
        assert seen == [10]

    def test_run_until_stops_and_advances_clock(self) -> None:
        e = Engine()
        log: list[float] = []
        e.at(5, lambda: log.append(5))
        e.at(50, lambda: log.append(50))
        e.run(until=20)
        assert log == [5]
        assert e.now == 20
        e.run()
        assert log == [5, 50]

    def test_max_events_guard(self) -> None:
        e = Engine()

        def loop() -> None:
            e.after(1, loop)

        e.at(0, loop)
        with pytest.raises(SimulationError):
            e.run(max_events=100)

    def test_idle_and_peek(self) -> None:
        e = Engine()
        assert e.idle
        assert e.peek_time() is None
        e.at(4, lambda: None)
        assert not e.idle
        assert e.peek_time() == 4
