"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestEngine:
    def test_events_run_in_time_order(self) -> None:
        e = Engine()
        log: list[str] = []
        e.at(10, lambda: log.append("b"))
        e.at(5, lambda: log.append("a"))
        e.at(20, lambda: log.append("c"))
        e.run()
        assert log == ["a", "b", "c"]
        assert e.now == 20

    def test_ties_break_by_insertion_order(self) -> None:
        e = Engine()
        log: list[int] = []
        for i in range(5):
            e.at(7, lambda i=i: log.append(i))
        e.run()
        assert log == [0, 1, 2, 3, 4]

    def test_after_is_relative(self) -> None:
        e = Engine()
        seen: list[float] = []
        e.at(10, lambda: e.after(5, lambda: seen.append(e.now)))
        e.run()
        assert seen == [15]

    def test_negative_delay_rejected(self) -> None:
        e = Engine()
        with pytest.raises(SimulationError):
            e.after(-1, lambda: None)

    def test_past_schedule_clamped_to_now(self) -> None:
        e = Engine()
        seen: list[float] = []
        e.at(10, lambda: e.at(3, lambda: seen.append(e.now)))
        e.run()
        assert seen == [10]

    def test_run_until_stops_and_advances_clock(self) -> None:
        e = Engine()
        log: list[float] = []
        e.at(5, lambda: log.append(5))
        e.at(50, lambda: log.append(50))
        e.run(until=20)
        assert log == [5]
        assert e.now == 20
        e.run()
        assert log == [5, 50]

    def test_max_events_guard(self) -> None:
        e = Engine()

        def loop() -> None:
            e.after(1, loop)

        e.at(0, loop)
        with pytest.raises(SimulationError):
            e.run(max_events=100)

    def test_idle_and_peek(self) -> None:
        e = Engine()
        assert e.idle
        assert e.peek_time() is None
        e.at(4, lambda: None)
        assert not e.idle
        assert e.peek_time() == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self) -> None:
        e = Engine()
        log: list[str] = []
        handle = e.at(10, lambda: log.append("cancelled"))
        e.at(5, lambda: log.append("kept"))
        e.cancel(handle)
        e.run()
        assert log == ["kept"]
        assert e.events_cancelled == 1

    def test_cancelled_events_not_counted_as_processed(self) -> None:
        e = Engine()
        handles = [e.at(t, lambda: None) for t in (1, 2, 3)]
        e.cancel(handles[1])
        e.run()
        assert e.events_processed == 2
        assert e.events_cancelled == 1

    def test_cancel_clears_idle_and_peek(self) -> None:
        e = Engine()
        handle = e.at(4, lambda: None)
        e.cancel(handle)
        assert e.idle
        assert e.peek_time() is None

    def test_peek_skips_cancelled_head(self) -> None:
        e = Engine()
        first = e.at(2, lambda: None)
        e.at(9, lambda: None)
        e.cancel(first)
        assert e.peek_time() == 9

    def test_cancel_unknown_handle_is_harmless(self) -> None:
        e = Engine()
        e.cancel(12345)
        e.at(1, lambda: None)
        e.run()
        assert e.events_processed == 1

    def test_cancelled_event_not_run_by_until(self) -> None:
        e = Engine()
        log: list[float] = []
        handle = e.at(3, lambda: log.append(e.now))
        e.at(7, lambda: log.append(e.now))
        e.cancel(handle)
        e.run(until=5)
        assert log == []
        e.run()
        assert log == [7]
