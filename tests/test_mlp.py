"""Tests for per-warp memory-level parallelism (MLP)."""

import dataclasses

import pytest

from repro.config import GPUConfig, baseline_scheduler
from repro.errors import ConfigError
from repro.gpu.warp import Access, WarpOp
from repro.sim.system import GPUSystem


def mlp_config(m: int) -> GPUConfig:
    return GPUConfig(max_outstanding_ops_per_warp=m)


def load_chain(n: int, base: int = 0) -> list[WarpOp]:
    return [
        WarpOp(compute_cycles=5.0, instructions=4,
               accesses=(Access(addr=base + i * 131072),))
        for i in range(n)
    ]


class TestMLPBehaviour:
    def test_mlp_speeds_up_latency_bound_warp(self) -> None:
        # One warp, 24 dependent-looking loads to distinct rows: with
        # MLP 4 the loads pipeline and the run finishes much faster.
        serial = GPUSystem(config=mlp_config(1),
                           scheduler=baseline_scheduler())
        r1 = serial.run([load_chain(24)], workload_name="mlp")
        pipelined = GPUSystem(config=mlp_config(4),
                              scheduler=baseline_scheduler())
        r4 = pipelined.run([load_chain(24)], workload_name="mlp")
        assert r4.elapsed_mem_cycles < 0.5 * r1.elapsed_mem_cycles
        assert r4.total_instructions == r1.total_instructions
        assert r4.requests_served == r1.requests_served

    def test_mlp_conserves_work_across_warps(self) -> None:
        warps = [load_chain(10, base=w * 1_000_000) for w in range(6)]
        r = GPUSystem(config=mlp_config(3),
                      scheduler=baseline_scheduler()).run(
            warps, workload_name="mlp"
        )
        assert r.requests_served == 60
        assert r.total_instructions == 240

    def test_mlp_is_deterministic(self) -> None:
        def once():
            warps = [load_chain(12, base=w * 500_000) for w in range(4)]
            r = GPUSystem(config=mlp_config(4),
                          scheduler=baseline_scheduler()).run(
                warps, workload_name="mlp"
            )
            return (r.elapsed_mem_cycles, r.activations,
                    r.requests_served)

        assert once() == once()

    def test_invalid_mlp_rejected(self) -> None:
        with pytest.raises(ConfigError):
            mlp_config(0).validate()

    def test_mixed_compute_and_writes_under_mlp(self) -> None:
        ops = [
            WarpOp(compute_cycles=10.0, instructions=2),
            WarpOp(compute_cycles=5.0, instructions=4,
                   accesses=(Access(addr=0),)),
            WarpOp(compute_cycles=5.0, instructions=4,
                   accesses=(Access(addr=262144, is_write=True),)),
            WarpOp(compute_cycles=5.0, instructions=4,
                   accesses=(Access(addr=524288),)),
        ]
        r = GPUSystem(config=mlp_config(2),
                      scheduler=baseline_scheduler()).run(
            [ops], workload_name="mlp"
        )
        assert r.total_instructions == 14
