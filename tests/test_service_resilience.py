"""Unit tests for the resilient service tier's building blocks.

Covers, without a running daemon:

* the per-content-key circuit breaker state machine (closed -> open ->
  half-open probe -> closed/reopen) under an injectable clock;
* the bounded SSE event ring: monotonic ids, idempotent publication,
  eviction accounting for ``Last-Event-ID`` replay;
* the WarmPool supervision surface the tier relies on: heartbeat
  ping/pong, per-worker state introspection, stale-worker reaping, and
  idempotent close();
* journal hardening: fsync batching, torn-line recovery, and the
  invariant that cancelled jobs stay cancelled across a restart;
* the client's jittered, capped Retry-After backoff.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.errors import ConfigError
from repro.harness.pool import WarmPool
from repro.harness.schemes import scheme_def
from repro.service.breaker import (
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    RejectedByBreaker,
)
from repro.service.client import MAX_RETRY_SLEEP, ServiceClient
from repro.service.jobs import (
    Job,
    JobJournal,
    JobState,
    job_content_key,
    new_job_id,
    replay_journal,
)
from repro.service.stream import EventRing
from repro.sim.spec import SimSpec


def _job(**overrides) -> Job:
    spec = overrides.pop("spec", SimSpec())
    app = overrides.pop("app", "synthetic")
    scale = overrides.pop("scale", 0.05)
    seed = overrides.pop("seed", 7)
    job = Job(
        id=new_job_id(),
        app=app,
        scale=scale,
        seed=seed,
        spec=spec,
        key=job_content_key(app, scale, seed, spec),
    )
    for name, value in overrides.items():
        setattr(job, name, value)
    return job


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        kwargs.setdefault("threshold", 3)
        kwargs.setdefault("cooldown", 60.0)
        breaker = CircuitBreaker(clock=lambda: clock["now"], **kwargs)
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self._breaker()
        assert not breaker.record_failure("k", {"error_type": "X"})
        assert not breaker.record_failure("k", {"error_type": "X"})
        assert breaker.record_failure("k", {"error_type": "X"})
        assert breaker.entry("k").state == STATE_OPEN
        assert breaker.opened_total == 1
        with pytest.raises(RejectedByBreaker) as exc_info:
            breaker.check("k")
        assert exc_info.value.retry_after == pytest.approx(60.0)
        assert breaker.rejected_total == 1

    def test_success_resets_the_count(self):
        breaker, _ = self._breaker()
        breaker.record_failure("k", None)
        breaker.record_failure("k", None)
        breaker.record_success("k")
        assert not breaker.record_failure("k", None)
        assert breaker.entry("k").failures == 1

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure("k", None, fatal=True)
        clock["now"] = 61.0
        # First submission after the cooldown is the probe...
        assert breaker.check("k") is True
        assert breaker.entry("k").state == STATE_HALF_OPEN
        # ...concurrent submissions are still rejected...
        with pytest.raises(RejectedByBreaker):
            breaker.check("k")
        # ...and its success closes the circuit completely.
        breaker.record_success("k")
        assert breaker.entry("k") is None
        assert breaker.check("k") is False

    def test_failed_probe_reopens_for_a_full_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure("k", None)
        clock["now"] = 61.0
        assert breaker.check("k") is True
        assert breaker.record_failure("k", None)  # probe failed: re-trip
        entry = breaker.entry("k")
        assert entry.state == STATE_OPEN
        assert entry.opened_at == pytest.approx(61.0)
        with pytest.raises(RejectedByBreaker):
            breaker.check("k")

    def test_abandoned_probe_frees_the_slot(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure("k", None)
        clock["now"] = 61.0
        assert breaker.check("k") is True
        breaker.abandon_trial("k")  # probe was shed/cancelled
        assert breaker.check("k") is True  # next submission probes

    def test_fatal_failures_are_counted_separately(self):
        breaker, _ = self._breaker()
        breaker.record_failure("k", None, fatal=True)
        breaker.record_failure("k", None, fatal=False)
        entry = breaker.entry("k")
        assert entry.failures == 2
        assert entry.fatal_failures == 1

    def test_snapshot_lists_only_non_closed_entries(self):
        breaker, _ = self._breaker(threshold=1)
        breaker.record_failure("bad", {"error_type": "Boom",
                                       "message": "x"})
        breaker.record_failure("meh", None)
        breaker.record_success("meh")
        snapshot = breaker.snapshot()
        assert list(snapshot["open"]) == ["bad"]
        assert snapshot["open"]["bad"]["last_error"]["error_type"] == \
            "Boom"
        assert breaker.open_keys == ["bad"]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


# ----------------------------------------------------------------------
# SSE event ring
# ----------------------------------------------------------------------
class TestEventRing:
    def test_ids_are_monotonic_from_one(self):
        ring = EventRing(maxlen=8)
        ids = [ring.append("e", {"n": n}) for n in range(3)]
        assert ids == [1, 2, 3]
        assert ring.first_id == 1
        assert ring.last_id == 3

    def test_since_replays_exactly_the_missed_window(self):
        ring = EventRing(maxlen=8)
        for n in range(5):
            ring.append("e", {"n": n})
        replay = ring.since(2)
        assert [event_id for event_id, _, _ in replay] == [3, 4, 5]
        assert ring.since(5) == []

    def test_bounded_eviction_is_accounted_for_gap_reporting(self):
        ring = EventRing(maxlen=3)
        for n in range(6):
            ring.append("e", {"n": n})
        assert ring.dropped == 3
        assert ring.first_id == 4
        # A cursor that saw event 1 can no longer replay 2 and 3.
        assert ring.lost_before(1) == 2
        assert ring.lost_before(3) == 0
        assert [e for e, _, _ in ring.since(1)] == [4, 5, 6]

    def test_sync_is_idempotent_across_watchers(self):
        ring = EventRing()
        job = _job()
        ring.sync(job)
        ring.sync(job)  # a second watcher polls the same ring
        # One queued-state event, nothing duplicated.
        events = ring.since(0)
        assert [name for _, name, _ in events] == ["state"]
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE)
        for _ in range(3):
            ring.sync(job)
        names = [name for _, name, _ in ring.since(0)]
        assert names == ["state", "state", "done"]
        assert ring.terminal_published

    def test_terminal_summary_carries_degraded_flag(self):
        ring = EventRing()
        job = _job()
        job.degraded = True
        job.transition(JobState.DONE)
        ring.sync(job)
        _, name, data = ring.since(0)[-1]
        assert name == "done"
        assert data["degraded"] is True

    def test_maxlen_validation(self):
        with pytest.raises(ValueError):
            EventRing(maxlen=0)


# ----------------------------------------------------------------------
# WarmPool supervision surface
# ----------------------------------------------------------------------
class TestWarmPoolSupervision:
    def test_ping_refreshes_heartbeats(self):
        pool = WarmPool(1)
        try:
            deadline = time.time() + 30.0
            pool._workers[0].last_pong = time.time() - 99.0
            while time.time() < deadline:
                pool.ping()
                time.sleep(0.05)
                state = pool.worker_states()[0]
                if state["heartbeat_age_seconds"] < 10.0:
                    break
            else:
                pytest.fail("pong never refreshed the heartbeat")
            assert state["mode"] == "process"
            assert state["alive"] is True
            assert state["pid"] == pool._workers[0].proc.pid
        finally:
            pool.close()

    def test_reap_stale_respawns_only_silent_idle_workers(self):
        pool = WarmPool(2)
        try:
            fresh_pid = pool._workers[1].proc.pid
            pool._workers[0].last_pong = time.time() - 100.0
            assert pool.reap_stale(50.0) == 1
            assert pool.respawns == 1
            assert pool._workers[1].proc.pid == fresh_pid
            # The respawned slot still serves work.
            spec = SimSpec(scheduler=scheme_def("frfcfs").build())
            from repro.harness.runner import CellSpec

            cell = CellSpec(
                app="synthetic", scale=0.05, seed=7, config=None,
                scheme=spec.scheduler, measure_error=False,
            )
            futures = [
                pool.submit((cell.key, cell, None, i, 1))
                for i in range(2)
            ]
            for future in futures:
                key, report, _ = future.result(timeout=60)
                assert report.elapsed_mem_cycles > 0
        finally:
            pool.close()

    def test_reap_stale_never_touches_busy_workers(self):
        pool = WarmPool(1)
        try:
            worker = pool._workers[0]
            worker.last_pong = time.time() - 100.0
            worker.inflight[999] = object()  # simulate a long job
            assert pool.reap_stale(50.0) == 0
            assert pool.respawns == 0
            worker.inflight.clear()
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = WarmPool(1)
        pool.close()
        pool.close()  # second close must be a no-op, not a crash
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.submit(("k", None, None, 0, 1))

    def test_thread_mode_reports_liveness_only(self):
        pool = WarmPool(1, threads=True)
        try:
            assert pool.ping() == 0
            assert pool.reap_stale(0.0) == 0
            states = pool.worker_states()
            assert states[0]["mode"] == "thread"
            assert states[0]["alive"] is True
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Journal hardening
# ----------------------------------------------------------------------
class TestJournalHardening:
    def test_fsync_mode_is_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            JobJournal(tmp_path / "j.jsonl", fsync="sometimes")

    def test_batch_mode_keeps_every_record(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync="batch")
        jobs = [_job(seed=i) for i in range(5)]
        for job in jobs:
            journal.record_submit(job)
        journal.close()
        assert len(replay_journal(path)) == 5

    def test_batch_mode_syncs_at_the_watermark(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync="batch")
        job = _job()
        for _ in range(JobJournal.BATCH_FSYNC_EVERY - 1):
            journal.record_state(job)
        assert journal._unsynced == JobJournal.BATCH_FSYNC_EVERY - 1
        journal.record_state(job)
        assert journal._unsynced == 0
        journal.close()

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync="batch")
        journal.record_submit(_job(seed=1))
        journal.record_submit(_job(seed=2))
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "submit", "id": "jdeadbeef", "ap')
        recovered = replay_journal(path)
        assert len(recovered) == 2

    def test_cancelled_jobs_are_not_requeued_on_restart(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        cancelled = _job(seed=1)
        interrupted = _job(seed=2)
        journal.record_submit(cancelled)
        journal.record_submit(interrupted)
        cancelled.transition(JobState.CANCELLED)
        journal.record_state(cancelled)
        interrupted.transition(JobState.RUNNING)
        journal.record_state(interrupted)
        journal.close()
        by_seed = {job.seed: job for job in replay_journal(path)}
        # CANCELLED is terminal: it must never come back to the queue.
        assert by_seed[1].state is JobState.CANCELLED
        # An interrupted RUNNING job does re-queue for a fresh attempt.
        assert by_seed[2].state is JobState.QUEUED


# ----------------------------------------------------------------------
# Client backoff
# ----------------------------------------------------------------------
class TestClientBackoff:
    def test_busy_delay_is_jittered_within_the_hint(self):
        client = ServiceClient(rng=random.Random(42))
        for _ in range(50):
            delay = client._busy_delay(8.0)
            assert 4.0 <= delay <= 8.0

    def test_busy_delay_is_capped(self):
        client = ServiceClient(rng=random.Random(7))
        assert client._busy_delay(10_000.0) == MAX_RETRY_SLEEP

    def test_busy_delay_is_deterministic_with_seeded_rng(self):
        a = ServiceClient(rng=random.Random(3))
        b = ServiceClient(rng=random.Random(3))
        assert [a._busy_delay(4.0) for _ in range(5)] == \
            [b._busy_delay(4.0) for _ in range(5)]

    def test_retry_busy_sleeps_the_jittered_hint(self):
        sleeps: list[float] = []
        client = ServiceClient(
            rng=random.Random(1), sleep=sleeps.append
        )
        responses = iter([
            (429, {"Retry-After": "4"}, {"error": "full",
                                         "retry_after": 4.0}),
            (503, {}, {"error": "tier down", "retry_after": 2.0}),
            (202, {}, {"outcome": "queued", "job": {"id": "j1"}}),
        ])
        client._request = lambda *a, **k: next(responses)
        job = client.submit("synthetic", retry_busy=3)
        assert job["id"] == "j1"
        assert len(sleeps) == 2
        assert 2.0 <= sleeps[0] <= 4.0
        assert 1.0 <= sleeps[1] <= 2.0
