"""End-to-end tests for the simulation-as-a-service daemon.

The invariants pinned down here, against a real in-process daemon
(asyncio loop in a background thread, HTTP over localhost):

1. **Coalescing is exact** — 8 concurrent submissions of the same
   SimSpec run exactly one simulation and all 8 clients receive
   byte-identical ``SimReport.to_dict()`` payloads.
2. **The cache outlives the daemon** — a warm resubmission after a
   restart is answered from the persistent cache without simulating.
3. **SSE carries the controller state** — a dyn-dms telemetry job
   streams at least one window sample with its per-channel Dyn-DMS
   ``X`` trajectory, followed by a terminal frame.
4. **Backpressure is a protocol, not a crash** — a full queue is a 429
   with a Retry-After hint; a malformed spec is a 400 naming the
   offending key path.
5. **The journal resurrects queued work** — non-terminal jobs from a
   killed daemon re-enter the queue on restart and still finish.
"""

from __future__ import annotations

import concurrent.futures
import json

import pytest

from repro.errors import ConfigError, ServiceBusyError, ServiceError
from repro.harness.cache import ResultCache
from repro.harness.schemes import scheme_def
from repro.service.client import ServiceClient
from repro.service.jobs import (
    Job,
    JobState,
    job_content_key,
    new_job_id,
    replay_journal,
)
from repro.service.queue import JobQueue
from repro.service.server import ServiceDaemon
from repro.sim.spec import SimSpec
from repro.telemetry.hub import SERVICE_SIMULATIONS

SCALE = 0.05
WAIT = 120.0


def _daemon(tmp_path, **kwargs) -> ServiceDaemon:
    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault(
        "cache", ResultCache(tmp_path / "cache", enabled=True)
    )
    kwargs.setdefault("journal_path", tmp_path / "journal.jsonl")
    kwargs.setdefault("retry_backoff", 0.01)
    kwargs.setdefault("verbose", False)
    return ServiceDaemon(**kwargs)


def _simulations(daemon: ServiceDaemon) -> float:
    return daemon.hub.snapshot()["counters"].get(SERVICE_SIMULATIONS, 0.0)


# ----------------------------------------------------------------------
# The headline acceptance path.


def test_coalescing_runs_one_simulation_for_eight_clients(tmp_path):
    daemon = _daemon(tmp_path)
    daemon.start_in_thread()
    try:
        spec = SimSpec(scheduler=scheme_def("frfcfs").build())

        def submit_and_wait(_):
            client = ServiceClient(port=daemon.port)
            job = client.submit(
                "synthetic", spec=spec, scale=SCALE, seed=11
            )
            doc = client.wait(job["id"], timeout=WAIT)
            assert doc["state"] == "done", doc.get("error")
            return job["outcome"], json.dumps(
                doc["result"], sort_keys=True
            )

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = list(pool.map(submit_and_wait, range(8)))

        payloads = {payload for _, payload in results}
        assert len(payloads) == 1  # byte-identical result documents
        assert _simulations(daemon) == 1
        outcomes = sorted(outcome for outcome, _ in results)
        # Exactly one primary actually entered the queue; every
        # duplicate either coalesced onto it or (if it finished first)
        # hit the cache. Never a second simulation.
        assert outcomes.count("queued") <= 1
        assert all(
            o in ("queued", "coalesced", "cached") for o in outcomes
        )
    finally:
        daemon.stop()


def test_warm_restart_serves_from_persistent_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    first = _daemon(tmp_path, cache=ResultCache(cache_dir, enabled=True))
    first.start_in_thread()
    try:
        client = ServiceClient(port=first.port)
        job = client.submit("synthetic", scale=SCALE, seed=5)
        report = client.wait_for_report(job["id"], timeout=WAIT)
        assert _simulations(first) == 1
    finally:
        first.stop()

    second = _daemon(
        tmp_path,
        cache=ResultCache(cache_dir, enabled=True),
        journal_path=tmp_path / "journal2.jsonl",
    )
    second.start_in_thread()
    try:
        client = ServiceClient(port=second.port)
        job = client.submit("synthetic", scale=SCALE, seed=5)
        assert job["outcome"] == "cached"
        assert job["state"] == "done"
        warm = client.wait_for_report(job["id"], timeout=WAIT)
        assert warm.to_dict() == report.to_dict()
        assert _simulations(second) == 0  # never touched a worker
    finally:
        second.stop()


def test_sse_streams_dyn_dms_window_trajectory(tmp_path):
    daemon = _daemon(tmp_path)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        spec = SimSpec(
            scheduler=scheme_def("dyn-dms").build(), telemetry=True
        )
        job = client.submit("synthetic", spec=spec, scale=0.3, seed=3)
        windows = []
        terminal = None
        for event, data in client.events(job["id"], timeout=WAIT):
            if event == "window":
                windows.append(data)
            elif event in ("done", "failed", "cancelled"):
                terminal = (event, data)
        assert terminal is not None and terminal[0] == "done"
        assert len(windows) >= 1
        sample = windows[0]
        # The Fig. 10 observables ride in every window frame.
        assert "bwutil" in sample and "activations" in sample
        assert "drops" in sample
        assert isinstance(sample["dms_x"], list) and sample["dms_x"]
        assert isinstance(sample["th_rbl"], list) and sample["th_rbl"]
        # Terminal frame carries the summary metrics.
        assert terminal[1]["metrics"]["ipc"] > 0
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# Protocol edges: backpressure, validation, cancellation.


def test_full_queue_answers_429_with_retry_after(tmp_path):
    daemon = _daemon(tmp_path, workers=0, queue_size=2)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        for seed in (1, 2):
            client.submit("synthetic", scale=SCALE, seed=seed)
        with pytest.raises(ServiceBusyError) as excinfo:
            client.submit("synthetic", scale=SCALE, seed=3)
        assert excinfo.value.retry_after >= 1.0
    finally:
        daemon.stop(drain=False)


def test_malformed_spec_is_400_naming_the_key_path(tmp_path):
    daemon = _daemon(tmp_path, workers=0)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        with pytest.raises(ConfigError, match=r"scheduler\.dms\.bogus"):
            client.submit(
                "synthetic",
                spec={"scheduler": {"dms": {"bogus": 1}}},
            )
        with pytest.raises(ConfigError, match="unknown workload"):
            client.submit("no-such-app")
    finally:
        daemon.stop(drain=False)


def test_cancel_queued_job_and_reject_double_cancel(tmp_path):
    daemon = _daemon(tmp_path, workers=0, queue_size=4)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        job = client.submit("synthetic", scale=SCALE, seed=21)
        doc = client.cancel(job["id"])
        assert doc["state"] == "cancelled"
        with pytest.raises(ServiceError):
            client.cancel(job["id"])  # already terminal -> 409
    finally:
        daemon.stop(drain=False)


def test_unknown_job_is_404(tmp_path):
    daemon = _daemon(tmp_path, workers=0)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        with pytest.raises(ServiceError, match="404"):
            client.job("jdeadbeef0000")
    finally:
        daemon.stop(drain=False)


def test_healthz_and_stats_shapes(tmp_path):
    daemon = _daemon(tmp_path, workers=1)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        health = client.healthz()
        assert health["ok"] is True and health["serving"] is True
        job = client.submit("synthetic", scale=SCALE, seed=31)
        client.wait(job["id"], timeout=WAIT)
        stats = client.stats()
        assert stats["jobs"]["done"] >= 1
        assert stats["queue"]["workers"] == 1
        assert stats["cache"]["entries"] >= 1
        assert stats["service"]["counters"]["service.jobs.submitted"] >= 1
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# Journal recovery.


def test_restart_recovers_queued_jobs_from_journal(tmp_path):
    journal = tmp_path / "journal.jsonl"
    cache_dir = tmp_path / "cache"
    first = _daemon(
        tmp_path,
        workers=0,
        cache=ResultCache(cache_dir, enabled=True),
        journal_path=journal,
    )
    first.start_in_thread()
    try:
        client = ServiceClient(port=first.port)
        job_id = client.submit("synthetic", scale=SCALE, seed=41)["id"]
    finally:
        first.stop(drain=False)  # dies with the job still queued

    second = _daemon(
        tmp_path,
        workers=1,
        cache=ResultCache(cache_dir, enabled=True),
        journal_path=journal,
    )
    second.start_in_thread()
    try:
        client = ServiceClient(port=second.port)
        doc = client.wait(job_id, timeout=WAIT)
        assert doc["state"] == "done"
        assert doc["recovered"] is True
    finally:
        second.stop()


def test_replay_journal_tolerates_torn_tail(tmp_path):
    journal = tmp_path / "journal.jsonl"
    spec = SimSpec()
    job = Job(
        id=new_job_id(),
        app="synthetic",
        scale=SCALE,
        seed=1,
        spec=spec,
        key=job_content_key("synthetic", SCALE, 1, spec),
    )
    from repro.service.jobs import JobJournal

    log = JobJournal(journal)
    log.record_submit(job)
    job.transition(JobState.RUNNING)
    log.record_state(job)
    log.close()
    with open(journal, "a", encoding="utf-8") as fh:
        fh.write('{"torn": ')  # crash mid-write
    jobs = replay_journal(journal)
    assert len(jobs) == 1
    # Non-terminal state resets to QUEUED for re-execution.
    assert jobs[0].state is JobState.QUEUED
    assert jobs[0].recovered is True


# ----------------------------------------------------------------------
# Multi-tenant jobs: priority maps to the tenant service contract.


def test_priority_sets_tenant_contract_end_to_end(tmp_path):
    """A job's HTTP ``priority`` becomes the default tenant class, and
    the simulated mix honours the resulting contract: the same
    class-less two-tenant payload yields AMS drops as a background
    (``approx-batch``) job but none as a high-priority (``latency``)
    one, and an explicit class always survives the defaulting."""
    daemon = _daemon(tmp_path)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        from repro.config.codec import encode

        scheme = scheme_def("static-dms+static-ams").build()
        spec_doc = {
            "scheduler": encode(scheme),
            "tenants": {
                "arbiter": "shared-frfcfs",
                "tenants": [
                    {"name": "a", "workload": "blackscholes",
                     "scale": SCALE},
                    {"name": "b", "workload": "MVT", "scale": SCALE,
                     "tenant_class": "approx-batch"},
                ],
            },
        }

        def run(priority: int) -> dict:
            job = client.submit(
                "blackscholes", spec=spec_doc, seed=11,
                priority=priority,
            )
            doc = client.wait(job["id"], timeout=WAIT)
            assert doc["state"] == "done", doc.get("error")
            return doc["result"]

        background = run(priority=0)
        foreground = run(priority=2)

        bg = {t["name"]: t for t in background["tenants"]["tenants"]}
        fg = {t["name"]: t for t in foreground["tenants"]["tenants"]}
        # priority 0 -> both default to approx-batch, drops allowed.
        assert bg["a"]["tenant_class"] == "approx-batch"
        assert sum(t["requests_dropped"] for t in bg.values()) > 0
        # priority 2 -> class-less tenant becomes latency: no drops in
        # its stream; the explicit approx-batch choice is preserved.
        assert fg["a"]["tenant_class"] == "latency"
        assert fg["a"]["requests_dropped"] == 0
        assert fg["b"]["tenant_class"] == "approx-batch"
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# Queue unit behaviour (no HTTP, no simulations).


def _job(seed: int, priority: int = 0) -> Job:
    spec = SimSpec()
    return Job(
        id=new_job_id(),
        app="synthetic",
        scale=SCALE,
        seed=seed,
        spec=spec,
        key=job_content_key("synthetic", SCALE, seed, spec),
        priority=priority,
    )


def test_queue_orders_by_priority_then_fifo():
    import asyncio

    async def scenario():
        queue = JobQueue(maxsize=8, cache=ResultCache(enabled=False))
        low = _job(1, priority=0)
        high = _job(2, priority=5)
        low2 = _job(3, priority=0)
        for job in (low, high, low2):
            await queue.admit(job)
        order = [await queue.get() for _ in range(3)]
        return [j.id for j in order], [low.id, high.id, low2.id]

    order, (low_id, high_id, low2_id) = asyncio.run(scenario())
    assert order == [high_id, low_id, low2_id]


def test_queue_promotes_follower_when_primary_cancelled():
    import asyncio

    async def scenario():
        queue = JobQueue(maxsize=8, cache=ResultCache(enabled=False))
        primary = _job(7)
        duplicate = _job(7)
        assert (await queue.admit(primary)) == "queued"
        assert (await queue.admit(duplicate)) == "coalesced"
        assert duplicate.coalesced_into == primary.id
        await queue.cancel(primary)
        # The duplicate took over as the new primary for the key.
        promoted = await queue.get()
        return primary, duplicate, promoted

    import asyncio

    primary, duplicate, promoted = asyncio.run(scenario())
    assert primary.state is JobState.CANCELLED
    assert promoted.id == duplicate.id
    assert duplicate.coalesced_into is None
