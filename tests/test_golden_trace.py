"""Golden-trace regression test.

One canonical traced run — the registered ``synthetic`` workload under
Dyn-DMS + Dyn-AMS — is pinned, per-window, against a checked-in JSON
fixture. Any change to the scheduler, the DRAM timing model, the
profiling state machines, or the telemetry sampler that shifts even a
single window shows up here as a diff.

The simulator is deterministic end to end (pure-Python float timing,
seeded numpy data generation), so the comparison is *exact*, floats
included: JSON serialises floats via shortest-round-trip repr, so a
load reproduces bit-identical values.

To regenerate after a deliberate behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_trace.py --regen-golden

then review the fixture diff and commit it with the change.
"""

import json
from pathlib import Path

from repro.config.scheduler import (
    AMSConfig,
    AMSMode,
    DMSConfig,
    DMSMode,
    SchedulerConfig,
)
from repro.harness.runner import Runner

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_trace.json"

#: The canonical fixture cell. Small enough to simulate in ~1 s, busy
#: enough to exercise the Dyn-DMS search, AMS drops, and the coverage
#: bound across a few profiling phases.
FIXTURE = {
    "workload": "synthetic",
    "scale": 0.25,
    "seed": 11,
    "window_cycles": 512,
}


def _scheme() -> SchedulerConfig:
    return SchedulerConfig(
        dms=DMSConfig(
            mode=DMSMode.DYNAMIC, window_cycles=512, windows_per_phase=8
        ),
        ams=AMSConfig(
            mode=AMSMode.DYNAMIC,
            coverage_limit=0.10,
            window_cycles=512,
            warmup_fills=16,
        ),
    )


def current_payload() -> dict:
    """Simulate the fixture cell and shape the golden payload."""
    runner = Runner(
        scale=FIXTURE["scale"], seed=FIXTURE["seed"],
        verbose=False, cache=None,
    )
    report, _system, hub = runner.run_traced(
        FIXTURE["workload"], _scheme(),
        window_cycles=FIXTURE["window_cycles"],
        log_commands=False,
    )
    assert report.timeline is hub.timeline
    return {
        "fixture": dict(FIXTURE),
        "timeline": report.timeline.to_dict(),
        "report": {
            "workload": report.workload,
            "scheme": report.scheme,
            "elapsed_mem_cycles": report.elapsed_mem_cycles,
            "elapsed_core_cycles": report.elapsed_core_cycles,
            "total_instructions": report.total_instructions,
            "activations": report.activations,
            "requests_served": report.requests_served,
            "requests_dropped": report.requests_dropped,
            "reads_arrived": report.reads_arrived,
            "ipc": report.ipc,
            "avg_rbl": report.avg_rbl,
            "bwutil": report.bwutil,
            "coverage": report.coverage,
            "row_energy_nj": report.row_energy_nj,
            "final_dms_delays": list(report.final_dms_delays),
            "final_th_rbls": list(report.final_th_rbls),
            "l2": report.l2.to_dict(),
        },
    }


def test_golden_trace(regen_golden: bool) -> None:
    payload = current_payload()
    if regen_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return
    assert GOLDEN_PATH.is_file(), (
        f"missing golden fixture {GOLDEN_PATH}; generate it with "
        "`pytest tests/test_golden_trace.py --regen-golden`"
    )
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert payload["fixture"] == golden["fixture"], (
        "fixture parameters changed; regenerate the golden trace"
    )
    # Compare the report first (small, high-signal diff), then the full
    # per-window series.
    assert payload["report"] == golden["report"]
    got, want = payload["timeline"], golden["timeline"]
    assert got["window_cycles"] == want["window_cycles"]
    assert len(got["samples"]) == len(want["samples"])
    for got_sample, want_sample in zip(got["samples"], want["samples"]):
        assert got_sample == want_sample, (
            f"window {want_sample['index']} diverged"
        )
