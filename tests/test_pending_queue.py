"""Unit and property tests for the FR-FCFS pending queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AddressMapping
from repro.dram import MemoryRequest
from repro.errors import SchedulingError
from repro.sched import PendingQueue

MAPPING = AddressMapping()


def make_request(
    bank: int = 0, row: int = 0, col: int = 0, *, is_write: bool = False,
    approximable: bool = False,
) -> MemoryRequest:
    from repro.config.address import DecodedAddress

    addr = MAPPING.encode(
        DecodedAddress(channel=0, bank=bank, bank_group=bank // 4, row=row,
                       column=col)
    )
    return MemoryRequest.from_address(
        addr, is_write=is_write, mapping=MAPPING, approximable=approximable
    )


class TestBasics:
    def test_offer_and_remove(self) -> None:
        q = PendingQueue(4, 16)
        r = make_request()
        assert q.offer(r, now=5.0)
        assert r.enqueue_time == 5.0
        assert len(q) == 1
        q.remove(r, now=6.0)
        assert q.empty

    def test_fifo_oldest(self) -> None:
        q = PendingQueue(8, 16)
        first = make_request(bank=1, row=1)
        second = make_request(bank=2, row=1)
        q.offer(first, 0.0)
        q.offer(second, 1.0)
        assert q.oldest() is first
        assert q.oldest_for_bank(2) is second

    def test_row_queries(self) -> None:
        q = PendingQueue(8, 16)
        a = make_request(bank=3, row=9, col=0)
        b = make_request(bank=3, row=9, col=1)
        w = make_request(bank=3, row=9, col=2, is_write=True)
        for i, r in enumerate((a, b, w)):
            q.offer(r, float(i))
        assert q.row_pending_count(3, 9) == 3
        assert not q.row_all_reads(3, 9)
        q.remove(w, 3.0)
        assert q.row_all_reads(3, 9)
        assert not q.row_all_approximable(3, 9)
        assert q.hits_for(3, 9) == [a, b]

    def test_row_queries_empty_row(self) -> None:
        q = PendingQueue(8, 16)
        assert q.row_pending_count(0, 0) == 0
        assert not q.row_all_reads(0, 0)
        assert q.oldest_hit_for(0, 0) is None

    def test_double_remove_rejected(self) -> None:
        q = PendingQueue(4, 16)
        r = make_request()
        q.offer(r, 0.0)
        q.remove(r, 1.0)
        with pytest.raises(SchedulingError):
            q.remove(r, 2.0)

    def test_double_offer_rejected(self) -> None:
        q = PendingQueue(4, 16)
        r = make_request()
        q.offer(r, 0.0)
        with pytest.raises(SchedulingError):
            q.offer(r, 1.0)


class TestCapacityAndIngress:
    def test_overflow_defers_and_admits_in_order(self) -> None:
        q = PendingQueue(2, 16)
        reqs = [make_request(bank=0, row=i) for i in range(4)]
        for i, r in enumerate(reqs):
            q.offer(r, float(i))
        assert len(q) == 2
        assert q.ingress_backlog == 2
        assert q.total_deferred == 2
        q.remove(reqs[0], now=10.0)
        # The first deferred request is admitted with enqueue_time = now.
        assert len(q) == 2
        assert q.ingress_backlog == 1
        assert reqs[2].enqueue_time == 10.0

    def test_deferred_requests_invisible_to_scheduler(self) -> None:
        q = PendingQueue(1, 16)
        a = make_request(bank=0, row=1)
        b = make_request(bank=0, row=2)
        q.offer(a, 0.0)
        q.offer(b, 0.0)
        assert q.oldest_for_bank(0) is a
        assert q.row_pending_count(0, 2) == 0
        assert not q.empty

    def test_banks_with_pending(self) -> None:
        q = PendingQueue(8, 16)
        q.offer(make_request(bank=2), 0.0)
        q.offer(make_request(bank=7), 0.0)
        assert sorted(q.banks_with_pending()) == [2, 7]


class TestDiagnosticsSnapshots:
    """Edge cases of the diagnostics queries the engine's livelock
    report and the controller's deadlock snapshot lean on."""

    def test_empty_queue(self) -> None:
        q = PendingQueue(4, 16)
        assert q.pending_per_bank() == {}
        assert q.ingress_backlog == 0
        assert list(q.banks_with_pending()) == []
        assert q.empty

    def test_all_same_bank(self) -> None:
        q = PendingQueue(8, 16)
        for i in range(5):
            q.offer(make_request(bank=3, row=i), float(i))
        assert q.pending_per_bank() == {3: 5}
        assert list(q.banks_with_pending()) == [3]

    def test_deferred_requests_not_counted(self) -> None:
        # Only *visible* requests appear in the snapshot; the ingress
        # FIFO contributes to ingress_backlog instead.
        q = PendingQueue(2, 16)
        for i in range(5):
            q.offer(make_request(bank=0, row=i), float(i))
        assert q.pending_per_bank() == {0: 2}
        assert q.ingress_backlog == 3

    def test_snapshot_safe_to_iterate_while_draining(self) -> None:
        # pending_per_bank copies the counts, so removing requests while
        # iterating the snapshot must neither skip banks nor blow up.
        q = PendingQueue(8, 16)
        for bank in (0, 2, 5):
            for i in range(2):
                q.offer(make_request(bank=bank, row=i), float(i))
        snapshot = q.pending_per_bank()
        t = 100.0
        for bank, count in snapshot.items():
            for _ in range(count):
                q.remove(q.oldest_for_bank(bank), t)
                t += 1.0
                q.check_invariants()
        assert q.empty
        assert q.pending_per_bank() == {}
        # The original snapshot is untouched by the drain.
        assert snapshot == {0: 2, 2: 2, 5: 2}

    def test_ingress_backlog_drains_through_removals(self) -> None:
        q = PendingQueue(1, 16)
        reqs = [make_request(bank=0, row=i) for i in range(3)]
        for i, r in enumerate(reqs):
            q.offer(r, float(i))
        backlogs = [q.ingress_backlog]
        now = 10.0
        while not q.empty:
            q.remove(q.oldest_for_bank(0), now)
            backlogs.append(q.ingress_backlog)
            now += 1.0
            q.check_invariants()
        # 2 deferred at the start, admitted one per removal, never negative.
        assert backlogs == [2, 1, 0, 0]
        assert q.total_deferred == 2


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["offer", "remove_oldest", "remove_bank_oldest"]),
            st.integers(min_value=0, max_value=3),  # bank
            st.integers(min_value=0, max_value=2),  # row
        ),
        max_size=60,
    ),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_queue_invariants_hold_under_arbitrary_ops(ops, capacity) -> None:
    """The three indexes stay mutually consistent under any op sequence."""
    q = PendingQueue(capacity, 16)
    t = 0.0
    for op, bank, row in ops:
        t += 1.0
        if op == "offer":
            q.offer(make_request(bank=bank, row=row), t)
        elif op == "remove_oldest":
            victim = q.oldest()
            if victim is not None:
                q.remove(victim, t)
        else:
            victim = q.oldest_for_bank(bank)
            if victim is not None:
                q.remove(victim, t)
        q.check_invariants()
        assert len(q) <= capacity
