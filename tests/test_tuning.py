"""Tests for the calibration/tuning layer."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import TABLE_II, get_workload
from repro.workloads.tuning import TUNING


class TestTuningTable:
    def test_every_app_is_tuned(self) -> None:
        assert set(TUNING) == set(TABLE_II)

    def test_values_are_sane(self) -> None:
        for name, (p, cs) in TUNING.items():
            assert 0.1 <= p <= 4.0, name
            assert 0.05 <= cs <= 64.0, name

    def test_get_workload_applies_tuning(self) -> None:
        wl = get_workload("SCP")
        p, cs = TUNING["SCP"]
        assert wl.parallelism == pytest.approx(p)
        assert wl.compute_scale == pytest.approx(cs)

    def test_explicit_override_wins(self) -> None:
        wl = get_workload("SCP", parallelism=2.5, compute_scale=0.5)
        assert wl.parallelism == 2.5
        assert wl.compute_scale == 0.5

    def test_invalid_knobs_rejected(self) -> None:
        with pytest.raises(WorkloadError):
            get_workload("SCP", parallelism=0.0)
        with pytest.raises(WorkloadError):
            get_workload("SCP", compute_scale=-1.0)


class TestScalingHelpers:
    def test_warps_scale_with_parallelism_and_scale(self) -> None:
        big = get_workload("SCP", scale=1.0, parallelism=2.0,
                           compute_scale=1.0)
        small = get_workload("SCP", scale=0.5, parallelism=2.0,
                             compute_scale=1.0)
        assert big.warps(50) == 100
        assert small.warps(50) == 50
        assert big.warps(10_000) == 1440  # SM-slot ceiling
        assert big.warps(0) == 2  # floor

    def test_cycles_scale(self) -> None:
        wl = get_workload("SCP", compute_scale=3.0)
        assert wl.cycles(40.0) == pytest.approx(120.0)

    def test_dim2_dim3_preserve_footprint_scaling(self) -> None:
        full = get_workload("MVT", scale=1.0)
        half = get_workload("MVT", scale=0.5)
        ratio = half.space.footprint_bytes / full.space.footprint_bytes
        # dim2 makes the 2-D footprint scale ~linearly with `scale`.
        assert 0.35 < ratio < 0.65
