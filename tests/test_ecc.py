"""Property suite for the ECC model registry and fault injector.

Every registered code must honour its declared guarantee on *every*
flip pattern Hypothesis can find: up to ``correct_t`` flips decode back
to the original data, up to ``detect_d`` flips are at least flagged,
and the clean path round-trips bit-exactly. Width/overhead invariants
are pinned for every ``ecc_word_bits`` in the devices registry plus a
randomised range, so a new device preset cannot silently pick a width
the codes mishandle.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.faults import FaultConfig
from repro.dram.devices import device_names, get_device
from repro.dram.ecc import (
    BCHCode,
    DecodeResult,
    ECCCode,
    ECCStatus,
    FaultInjector,
    NoECC,
    ParityCode,
    SECDEDCode,
    ecc_names,
    estimate_carbon_per_gib_year,
    estimate_fit,
    get_ecc,
    register_ecc,
    word_outcome_probabilities,
)
from repro.errors import ConfigError

#: Every data width a registered DRAM device can ask the codes to
#: protect, plus small odd widths to stress the algebra.
DEVICE_WIDTHS = sorted(
    {get_device(name).ecc_word_bits for name in device_names()}
)
ALL_WIDTHS = sorted(set(DEVICE_WIDTHS) | {8, 11, 16, 27, 64})

CODE_NAMES = ("none", "parity", "secded", "bch")

codes = st.sampled_from([get_ecc(name) for name in CODE_NAMES])
widths = st.sampled_from(ALL_WIDTHS)


def data_words(data_bits: int):
    return st.integers(min_value=0, max_value=(1 << data_bits) - 1)


def flip_sets(code: ECCCode, data_bits: int, count: int):
    """Exactly ``count`` distinct flip positions within the codeword."""
    n = code.codeword_bits(data_bits)
    return st.lists(
        st.integers(min_value=0, max_value=n - 1),
        min_size=count, max_size=count, unique=True,
    )


def corrupt(codeword: int, positions) -> int:
    for pos in positions:
        codeword ^= 1 << pos
    return codeword


class TestRegistry:
    def test_all_expected_codes_registered(self) -> None:
        assert set(CODE_NAMES) <= set(ecc_names())

    def test_names_are_sorted(self) -> None:
        assert ecc_names() == sorted(ecc_names())

    def test_lookup_returns_the_named_code(self) -> None:
        for name in CODE_NAMES:
            assert get_ecc(name).name == name

    def test_unknown_code_raises_with_listing(self) -> None:
        with pytest.raises(ConfigError, match="secded"):
            get_ecc("reed-solomon")

    def test_register_rejects_anonymous_codes(self) -> None:
        with pytest.raises(ConfigError, match="non-empty"):
            register_ecc(ECCCode())

    def test_width_below_one_bit_rejected(self) -> None:
        for name in CODE_NAMES:
            with pytest.raises(ConfigError, match=">= 1"):
                get_ecc(name).check_bits(0)


class TestWidthInvariants:
    @settings(max_examples=60, deadline=None)
    @given(code=codes, data_bits=st.integers(min_value=1, max_value=160))
    def test_codeword_width_identity(
        self, code: ECCCode, data_bits: int
    ) -> None:
        assert code.codeword_bits(data_bits) == (
            data_bits + code.check_bits(data_bits)
        )
        assert code.storage_overhead(data_bits) >= 1.0
        assert code.check_bits(data_bits) >= 0

    def test_device_registry_widths_have_known_overheads(self) -> None:
        # The widths the device presets actually use, pinned: a change
        # to the Hamming/BCH construction that alters stored bits is a
        # cache-semantics change and must be deliberate.
        secded, bch = get_ecc("secded"), get_ecc("bch")
        expected_secded = {32: 39, 64: 72, 128: 137}
        expected_bch = {32: 44, 64: 78, 128: 144}
        for width in DEVICE_WIDTHS:
            assert secded.codeword_bits(width) == expected_secded[width]
            assert bch.codeword_bits(width) == expected_bch[width]
            assert get_ecc("parity").codeword_bits(width) == width + 1
            assert get_ecc("none").codeword_bits(width) == width

    @settings(max_examples=30, deadline=None)
    @given(data_bits=st.integers(min_value=1, max_value=160))
    def test_encoded_words_fit_the_declared_width(
        self, data_bits: int
    ) -> None:
        all_ones = (1 << data_bits) - 1
        for name in CODE_NAMES:
            code = get_ecc(name)
            n = code.codeword_bits(data_bits)
            assert code.encode(all_ones, data_bits) < (1 << n)
            assert code.encode(0, data_bits) < (1 << n)


class TestCleanRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(code=codes, data_bits=widths, data=st.data())
    def test_decode_of_encode_is_identity(
        self, code: ECCCode, data_bits: int, data
    ) -> None:
        word = data.draw(data_words(data_bits))
        result = code.decode(code.encode(word, data_bits), data_bits)
        assert result == DecodeResult(data=word, status=ECCStatus.CLEAN)


class TestGuarantees:
    """encode → inject k flips → decode honours each code's contract."""

    @settings(max_examples=120, deadline=None)
    @given(data_bits=widths, data=st.data())
    def test_secded_corrects_any_single_flip(
        self, data_bits: int, data
    ) -> None:
        code = get_ecc("secded")
        word = data.draw(data_words(data_bits))
        flips = data.draw(flip_sets(code, data_bits, 1))
        result = code.decode(
            corrupt(code.encode(word, data_bits), flips), data_bits
        )
        assert result.status is ECCStatus.CORRECTED
        assert result.data == word

    @settings(max_examples=120, deadline=None)
    @given(data_bits=widths, data=st.data())
    def test_secded_detects_any_double_flip(
        self, data_bits: int, data
    ) -> None:
        code = get_ecc("secded")
        word = data.draw(data_words(data_bits))
        flips = data.draw(flip_sets(code, data_bits, 2))
        result = code.decode(
            corrupt(code.encode(word, data_bits), flips), data_bits
        )
        assert result.status is ECCStatus.DETECTED

    @settings(max_examples=120, deadline=None)
    @given(data_bits=widths, count=st.integers(min_value=1, max_value=3),
           data=st.data())
    def test_parity_detects_every_odd_flip_count(
        self, data_bits: int, count: int, data
    ) -> None:
        code = get_ecc("parity")
        word = data.draw(data_words(data_bits))
        flips = data.draw(
            flip_sets(code, data_bits, 2 * count - 1)  # 1, 3, or 5
        )
        result = code.decode(
            corrupt(code.encode(word, data_bits), flips), data_bits
        )
        assert result.status is ECCStatus.DETECTED

    @settings(max_examples=120, deadline=None)
    @given(data_bits=widths, count=st.integers(min_value=1, max_value=2),
           data=st.data())
    def test_bch_corrects_up_to_t_flips(
        self, data_bits: int, count: int, data
    ) -> None:
        code = get_ecc("bch")
        assert isinstance(code, BCHCode) and code.correct_t == 2
        word = data.draw(data_words(data_bits))
        flips = data.draw(flip_sets(code, data_bits, count))
        result = code.decode(
            corrupt(code.encode(word, data_bits), flips), data_bits
        )
        assert result.status is ECCStatus.CORRECTED
        assert result.data == word

    @settings(max_examples=80, deadline=None)
    @given(data_bits=widths, count=st.integers(min_value=1, max_value=4),
           data=st.data())
    def test_none_returns_corrupted_data_as_clean(
        self, data_bits: int, count: int, data
    ) -> None:
        # The whole point of the sweep: unprotected cells pass flipped
        # bits straight through with a CLEAN verdict (silent).
        code = get_ecc("none")
        word = data.draw(data_words(data_bits))
        flips = data.draw(flip_sets(code, data_bits, count))
        result = code.decode(
            corrupt(code.encode(word, data_bits), flips), data_bits
        )
        assert result.status is ECCStatus.CLEAN
        assert result.data == word ^ corrupt(0, flips)


class TestClassify:
    """The statistical path mirrors the guarantees, pessimistically."""

    @settings(max_examples=60, deadline=None)
    @given(code=codes, flips=st.integers(min_value=0, max_value=8))
    def test_classify_matches_declared_guarantee(
        self, code: ECCCode, flips: int
    ) -> None:
        status = code.classify(flips)
        if flips == 0:
            assert status is ECCStatus.CLEAN
        elif flips <= code.correct_t:
            assert status is ECCStatus.CORRECTED
        elif code.name == "parity":
            assert status is (
                ECCStatus.DETECTED if flips % 2 else ECCStatus.SILENT
            )
        elif flips <= code.detect_d:
            assert status is ECCStatus.DETECTED
        else:
            assert status is ECCStatus.SILENT

    def test_spot_checks(self) -> None:
        assert NoECC().classify(1) is ECCStatus.SILENT
        assert ParityCode().classify(2) is ECCStatus.SILENT
        assert SECDEDCode().classify(3) is ECCStatus.SILENT
        assert BCHCode(t=2).classify(2) is ECCStatus.CORRECTED


class TestFaultInjector:
    def make(self, **overrides) -> FaultInjector:
        kwargs = dict(
            config=FaultConfig(enabled=True, p_bit=1e-3),
            trcd=10, trp=10, seed=0xDEAD, channel_id=0,
            stored_bits=72,
        )
        kwargs.update(overrides)
        return FaultInjector(**kwargs)

    def test_same_inputs_same_flips(self) -> None:
        a, b = self.make(), self.make()
        for rid in range(2000):
            assert a.flips_for(rid) == b.flips_for(rid)

    def test_positions_lie_within_the_stored_word(self) -> None:
        injector = self.make(stored_bits=39)
        for rid in range(2000):
            flips = injector.flips_for(rid)
            assert all(0 <= pos < 39 for pos in flips)
            assert len(set(flips)) == len(flips)

    def test_seed_channel_and_rid_all_matter(self) -> None:
        base = self.make()
        othr = self.make(seed=0xBEEF)
        chan = self.make(channel_id=1)
        sites = [
            tuple(inj.flips_for(rid) for rid in range(4000))
            for inj in (base, othr, chan)
        ]
        assert sites[0] != sites[1]
        assert sites[0] != sites[2]

    def test_disabled_config_never_flips(self) -> None:
        injector = self.make(config=FaultConfig(enabled=False, p_bit=0.5))
        assert injector.p_bit == 0.0
        assert all(injector.flips_for(rid) == () for rid in range(100))

    def test_lower_timings_raise_the_flip_rate(self) -> None:
        cfg = FaultConfig(enabled=True, p_bit=1e-6)
        nominal = FaultInjector(
            config=cfg, trcd=cfg.nominal_trcd, trp=cfg.nominal_trp,
            seed=1, channel_id=0, stored_bits=72,
        )
        truncated = FaultInjector(
            config=cfg, trcd=cfg.nominal_trcd - 4, trp=cfg.nominal_trp - 4,
            seed=1, channel_id=0, stored_bits=72,
        )
        assert truncated.p_bit > nominal.p_bit > 0.0

    def test_empirical_rate_tracks_p_bit(self) -> None:
        # Aggressive p so the law of large numbers converges quickly.
        injector = self.make(
            config=FaultConfig(enabled=True, p_bit=5e-4), stored_bits=72
        )
        reads = 20_000
        total = sum(len(injector.flips_for(rid)) for rid in range(reads))
        expected = injector.p_bit * 72 * reads
        assert expected * 0.8 < total < expected * 1.2


class TestEstimators:
    def test_outcome_probabilities_sum_to_one(self) -> None:
        for name in CODE_NAMES:
            probs = word_outcome_probabilities(
                get_ecc(name), 64, 1e-6
            )
            assert math.isclose(sum(probs.values()), 1.0, rel_tol=1e-9)

    def test_protection_collapses_fit(self) -> None:
        words_per_hour = 1e12
        fit_none = estimate_fit(get_ecc("none"), 64, 1e-9, words_per_hour)
        fit_sec = estimate_fit(get_ecc("secded"), 64, 1e-9, words_per_hour)
        assert fit_none > 0
        assert fit_sec < fit_none / 1e6

    def test_fit_monotonic_in_p_bit(self) -> None:
        code = get_ecc("secded")
        fits = [
            estimate_fit(code, 64, p, 1e12)
            for p in (1e-12, 1e-9, 1e-6)
        ]
        assert fits[0] < fits[1] < fits[2]

    def test_carbon_scales_with_storage_overhead(self) -> None:
        kwargs = dict(total_energy_nj=5e6, elapsed_us=1e3)
        g_none = estimate_carbon_per_gib_year(
            get_ecc("none"), 64, **kwargs
        )
        g_sec = estimate_carbon_per_gib_year(
            get_ecc("secded"), 64, **kwargs
        )
        assert 0 < g_none < g_sec
