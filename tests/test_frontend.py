"""Unit tests for the GPU frontend (warps, SM slots, reply handling)."""

import pytest

from repro.config import GPUConfig
from repro.errors import SimulationError, WorkloadError
from repro.gpu.frontend import GPUFrontend
from repro.gpu.warp import Access, Warp, WarpOp, WarpState
from repro.sim.engine import Engine


def compute_op(cycles: float = 10.0, instructions: int = 4) -> WarpOp:
    return WarpOp(compute_cycles=cycles, instructions=instructions)


def load_op(addr: int, *, compute: float = 10.0) -> WarpOp:
    return WarpOp(
        compute_cycles=compute, instructions=4,
        accesses=(Access(addr=addr),),
    )


class RecordingMemory:
    """Captures issued accesses; replies are delivered manually."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.issued: list[tuple[Access, Warp]] = []
        self.auto_latency: float | None = None
        self.frontend: GPUFrontend | None = None

    def __call__(self, access: Access, warp: Warp) -> None:
        self.issued.append((access, warp))
        if self.auto_latency is not None and not access.is_write:
            self.engine.after(
                self.auto_latency,
                lambda w=warp: self.frontend.on_load_reply(w),
            )


class TestWarpLifecycle:
    def test_warp_iterates_and_accounts(self) -> None:
        warp = Warp(0, 0, [compute_op(instructions=3),
                           compute_op(instructions=5)])
        op = warp.next_op()
        assert op is not None
        warp.retire_current()
        warp.next_op()
        warp.retire_current()
        # Exhaustion alone does not finish the warp (MLP may still have
        # loads in flight); the frontend marks it FINISHED.
        assert warp.next_op() is None
        assert not warp.finished
        assert warp.instructions_retired == 8
        assert warp.ops_retired == 2


class TestFrontendExecution:
    def make(self, streams, config=None):
        engine = Engine()
        mem = RecordingMemory(engine)
        frontend = GPUFrontend(engine, config or GPUConfig(), streams, mem)
        mem.frontend = frontend
        return engine, mem, frontend

    def test_pure_compute_warps_finish_without_memory(self) -> None:
        engine, mem, fe = self.make([[compute_op(), compute_op()]])
        fe.start()
        engine.run()
        assert fe.all_finished
        assert fe.total_instructions == 8
        assert not mem.issued

    def test_loads_block_until_reply(self) -> None:
        engine, mem, fe = self.make([[load_op(0), compute_op()]])
        fe.start()
        engine.run()
        # The warp is stuck waiting for the load.
        assert not fe.all_finished
        assert fe.warps[0].state is WarpState.WAITING_MEM
        fe.on_load_reply(fe.warps[0])
        engine.run()
        assert fe.all_finished

    def test_auto_replies_complete_run(self) -> None:
        streams = [[load_op(i * 128) for i in range(5)] for _ in range(3)]
        engine, mem, fe = self.make(streams)
        mem.auto_latency = 25.0
        fe.start()
        engine.run()
        assert fe.all_finished
        assert len(mem.issued) == 15
        assert fe.finish_time_mem > 0

    def test_writes_do_not_block(self) -> None:
        op = WarpOp(
            compute_cycles=5.0, instructions=4,
            accesses=(Access(addr=0, is_write=True),),
        )
        engine, mem, fe = self.make([[op]])
        fe.start()
        engine.run()
        assert fe.all_finished  # store is fire-and-forget
        assert len(mem.issued) == 1

    def test_unexpected_reply_rejected(self) -> None:
        engine, mem, fe = self.make([[compute_op()]])
        fe.start()
        with pytest.raises(SimulationError):
            fe.on_load_reply(fe.warps[0])

    def test_empty_streams_rejected(self) -> None:
        engine = Engine()
        with pytest.raises(WorkloadError):
            GPUFrontend(engine, GPUConfig(), [], lambda a, w: None)

    def test_double_start_rejected(self) -> None:
        engine, mem, fe = self.make([[compute_op()]])
        fe.start()
        with pytest.raises(SimulationError):
            fe.start()


class TestSMOversubscription:
    def test_deferred_warps_run_after_slots_free(self) -> None:
        # 1 SM with 2 warp slots, 5 warps: 3 must wait their turn.
        config = GPUConfig(num_sms=1, max_warps_per_sm=2)
        engine = Engine()
        mem = RecordingMemory(engine)
        streams = [[compute_op(cycles=50.0)] for _ in range(5)]
        fe = GPUFrontend(engine, config, streams, mem)
        mem.frontend = fe
        fe.start()
        assert len(fe._deferred) == 3
        engine.run()
        assert fe.all_finished
        assert fe.total_instructions == 20

    def test_round_robin_sm_assignment(self) -> None:
        config = GPUConfig(num_sms=4)
        engine = Engine()
        fe = GPUFrontend(
            engine, config, [[compute_op()] for _ in range(8)],
            lambda a, w: None,
        )
        assert [w.sm_id for w in fe.warps] == [0, 1, 2, 3, 0, 1, 2, 3]
