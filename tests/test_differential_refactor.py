"""Differential lock on the composable scheduler-policy refactor.

``tests/golden/seed_reports.json`` pins the full ``SimReport.to_dict()``
payload of eight paper schemes, produced by the monolithic controller
the seed shipped with. These tests assert the refactored pipeline —
registry selectors, activation gates, drop policies, :class:`SimSpec` —
reproduces every payload *field-identically*, and that the named
``gddr5`` device preset is indistinguishable from the legacy no-device
path.

The fixture must never be regenerated to make these tests pass: a diff
here means the refactor changed simulator behaviour.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.config.scheduler import AMSMode, SchedulerConfig
from repro.dram.request import reset_request_ids
from repro.harness.runner import Runner
from repro.workloads.registry import get_workload

REPO = Path(__file__).resolve().parent.parent
FIXTURE_PATH = REPO / "tests" / "golden" / "seed_reports.json"

# The scheme set lives in the regeneration script so the fixture and the
# assertion can never drift apart; load it straight from the file.
_spec = importlib.util.spec_from_file_location(
    "_regen_seed_reports", REPO / "scripts" / "regen_seed_reports.py"
)
_regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_regen)

GOLDEN = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
SCHEMES = _regen.scheme_set()
FIXTURE = _regen.FIXTURE


def make_runner(**overrides) -> Runner:
    kwargs = dict(
        scale=FIXTURE["scale"], seed=FIXTURE["seed"],
        verbose=False, cache=None,
    )
    kwargs.update(overrides)
    return Runner(**kwargs)


def test_fixture_and_scheme_set_agree() -> None:
    assert GOLDEN["fixture"] == FIXTURE
    assert set(GOLDEN["reports"]) == set(SCHEMES)


@pytest.mark.parametrize("scheme_id", sorted(SCHEMES))
def test_scheme_reproduces_seed_payload(scheme_id: str) -> None:
    scheme = SCHEMES[scheme_id]
    report = make_runner().run(
        FIXTURE["workload"], scheme, label=scheme_id,
        measure_error=scheme.ams.mode is not AMSMode.OFF,
    )
    assert report.to_dict() == GOLDEN["reports"][scheme_id]


@pytest.mark.parametrize("scheme_id", sorted(SCHEMES))
def test_disabled_ecc_hook_is_field_identical(scheme_id: str) -> None:
    """``ecc="none"`` + faults off must be a zero-cost no-op.

    The injection hook sits on the served-column path of every scheme;
    with ECC and faults explicitly disabled the reports must stay
    bit-identical to the pre-ECC golden payloads — no extra keys, no
    energy delta, no counter drift.
    """
    from repro.config.faults import FaultConfig

    scheme = SCHEMES[scheme_id]
    report = make_runner(ecc="none", fault_model=FaultConfig()).run(
        FIXTURE["workload"], scheme, label=scheme_id,
        measure_error=scheme.ams.mode is not AMSMode.OFF,
    )
    payload = report.to_dict()
    assert "ecc" not in payload
    assert "ecc_nj" not in payload["energy"]
    assert payload == GOLDEN["reports"][scheme_id]


def test_named_gddr5_device_is_field_identical_to_default() -> None:
    """Selecting --device gddr5 must change nothing but the cache key."""
    report = make_runner(device="gddr5").run(
        FIXTURE["workload"], SchedulerConfig(), label="frfcfs@gddr5"
    )
    assert report.to_dict() == GOLDEN["reports"]["frfcfs"]


def test_simulate_shim_matches_simulate_spec() -> None:
    """The legacy ``simulate(scheduler=..., ...)`` keyword surface is a
    thin shim over ``simulate_spec`` and must produce identical reports."""
    from repro.sim.spec import SimSpec
    from repro.sim.system import simulate, simulate_spec

    reset_request_ids()
    via_shim = simulate(
        get_workload(FIXTURE["workload"], scale=FIXTURE["scale"],
                     seed=FIXTURE["seed"])
    )
    reset_request_ids()
    via_spec = simulate_spec(
        get_workload(FIXTURE["workload"], scale=FIXTURE["scale"],
                     seed=FIXTURE["seed"]),
        SimSpec(),
    )
    assert via_shim.to_dict() == via_spec.to_dict()
    assert via_shim.to_dict() == GOLDEN["reports"]["frfcfs"]
