"""Tests for configuration objects, asserting every Table I value."""

import dataclasses

import pytest

from repro.config import (
    AddressMapping,
    DMSConfig,
    DMSMode,
    AMSConfig,
    AMSMode,
    GPUConfig,
    L2Config,
    SchedulerConfig,
    VPConfig,
    baseline_config,
    baseline_scheduler,
    dyn_ams,
    dyn_combo,
    dyn_dms,
    gddr5_timings,
    hbm1_energy,
    hbm2_energy,
    static_ams,
    static_combo,
    static_dms,
)
from repro.config.timing import DRAMTimings, hbm1_timings, hbm2_timings
from repro.errors import ConfigError


class TestTableI:
    """The defaults must reproduce Table I of the paper."""

    def setup_method(self) -> None:
        self.cfg = baseline_config()

    def test_sm_array(self) -> None:
        assert self.cfg.num_sms == 30
        assert self.cfg.max_warps_per_sm == 48
        assert self.cfg.threads_per_warp == 32

    def test_clocks(self) -> None:
        assert self.cfg.core_clock_mhz == 1400.0
        assert self.cfg.mem_clock_mhz == 924.0
        assert self.cfg.core_to_mem_ratio == pytest.approx(1400 / 924)

    def test_l2_geometry(self) -> None:
        # 8-way 128 KB per memory channel, 128 B lines.
        assert self.cfg.l2.size_bytes == 128 * 1024
        assert self.cfg.l2.associativity == 8
        assert self.cfg.l2.line_bytes == 128
        assert self.cfg.l2.num_sets == 128

    def test_memory_model(self) -> None:
        m = self.cfg.mapping
        assert m.num_channels == 6
        assert m.banks_per_channel == 16
        assert m.bank_groups_per_channel == 4
        assert m.interleave_bytes == 256
        assert self.cfg.pending_queue_size == 128

    def test_gddr5_timings(self) -> None:
        t = self.cfg.timings
        assert t.tCL == 12
        assert t.tRP == 12
        assert t.tRC == 40
        assert t.tRAS == 28
        assert t.tCCD == 2
        assert t.tRCD == 12
        assert t.tRRD == 6
        assert t.tCDLR == 5

    def test_clock_conversions_roundtrip(self) -> None:
        assert self.cfg.mem_to_core(self.cfg.core_to_mem(700.0)) == pytest.approx(
            700.0
        )


class TestTimingValidation:
    def test_valid_presets(self) -> None:
        for preset in (gddr5_timings(), hbm1_timings(), hbm2_timings()):
            preset.validate()

    def test_trc_consistency(self) -> None:
        bad = DRAMTimings(tRC=10)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_nonpositive_rejected(self) -> None:
        bad = DRAMTimings(tCL=0)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_tras_vs_trcd(self) -> None:
        bad = DRAMTimings(tRAS=5, tRCD=12, tRC=40)
        with pytest.raises(ConfigError):
            bad.validate()


class TestAddressMapping:
    def setup_method(self) -> None:
        self.m = AddressMapping()

    def test_channel_interleave_256b(self) -> None:
        # Consecutive 256-byte chunks rotate across the 6 channels.
        assert self.m.decode(0).channel == 0
        assert self.m.decode(256).channel == 1
        assert self.m.decode(5 * 256).channel == 5
        assert self.m.decode(6 * 256).channel == 0

    def test_accesses_within_chunk_same_channel(self) -> None:
        a = self.m.decode(0)
        b = self.m.decode(128)
        assert a.channel == b.channel
        assert (a.bank, a.row) == (b.bank, b.row)
        assert b.column == a.column + 1

    def test_bank_interleaved_rows(self) -> None:
        # Consecutive row-sized local regions land in successive banks.
        first = self.m.decode(0)
        # One full row in channel 0 = row_size * num_channels bytes globally
        # (2048-byte rows arrive as 8 chunks of 256 interleaved 6 ways).
        nxt = self.m.decode(self.m.row_size_bytes * self.m.num_channels)
        assert nxt.channel == first.channel
        assert nxt.bank == (first.bank + 1) % self.m.banks_per_channel

    def test_bank_groups(self) -> None:
        assert self.m.banks_per_group == 4
        assert self.m.bank_group_of(0) == 0
        assert self.m.bank_group_of(3) == 0
        assert self.m.bank_group_of(4) == 1
        assert self.m.bank_group_of(15) == 3

    def test_columns_per_row(self) -> None:
        assert self.m.columns_per_row == 2048 // 128

    @pytest.mark.parametrize(
        "addr", [0, 128, 256, 4096, 123 * 128, 999_936, 2**30]
    )
    def test_encode_decode_roundtrip(self, addr: int) -> None:
        aligned = addr - addr % self.m.access_bytes
        assert self.m.encode(self.m.decode(aligned)) == aligned

    def test_invalid_geometry_rejected(self) -> None:
        with pytest.raises(ConfigError):
            AddressMapping(banks_per_channel=15).validate()
        with pytest.raises(ConfigError):
            AddressMapping(row_size_bytes=1000).validate()
        with pytest.raises(ConfigError):
            AddressMapping(num_channels=0).validate()


class TestL2Config:
    def test_power_of_two_sets_required(self) -> None:
        with pytest.raises(ConfigError):
            L2Config(size_bytes=96 * 1024, associativity=8).validate()

    def test_mshr_positive(self) -> None:
        with pytest.raises(ConfigError):
            L2Config(mshr_entries=0).validate()


class TestSchedulerConfigs:
    def test_scheme_names(self) -> None:
        assert baseline_scheduler().name == "Baseline"
        assert static_dms().name == "Static-DMS(128)"
        assert dyn_dms().name == "Dyn-DMS"
        assert static_ams().name == "Static-AMS(8)"
        assert dyn_ams().name == "Dyn-AMS"
        assert static_combo().name == "Static-DMS(128) + Static-AMS(8)"
        assert dyn_combo().name == "Dyn-DMS + Dyn-AMS"

    def test_paper_defaults(self) -> None:
        d = DMSConfig(mode=DMSMode.DYNAMIC)
        assert d.static_delay == 128
        assert d.delay_step == 128
        assert d.max_delay == 2048
        assert d.window_cycles == 4096
        assert d.windows_per_phase == 32
        assert d.bwutil_threshold == 0.95
        a = AMSConfig(mode=AMSMode.DYNAMIC)
        assert a.static_th_rbl == 8
        assert (a.min_th_rbl, a.max_th_rbl) == (1, 8)
        assert a.coverage_limit == 0.10
        assert a.window_cycles == 4096

    def test_validation_errors(self) -> None:
        with pytest.raises(ConfigError):
            DMSConfig(bwutil_threshold=0.0).validate()
        with pytest.raises(ConfigError):
            DMSConfig(max_delay=-1, min_delay=0).validate()
        with pytest.raises(ConfigError):
            AMSConfig(static_th_rbl=9).validate()
        with pytest.raises(ConfigError):
            AMSConfig(coverage_limit=0.0).validate()
        with pytest.raises(ConfigError):
            VPConfig(kind="psychic").validate()
        SchedulerConfig().validate()

    def test_all_schemes_validate(self) -> None:
        for scheme in (
            baseline_scheduler(),
            static_dms(),
            dyn_dms(),
            static_ams(),
            dyn_ams(),
            static_combo(),
            dyn_combo(),
        ):
            scheme.validate()

    def test_configs_are_frozen(self) -> None:
        cfg = baseline_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_sms = 64  # type: ignore[misc]


class TestEnergyPresets:
    def test_hbm_row_fractions_match_paper(self) -> None:
        # Section V: row energy ~50 % of HBM1 and ~25 % of HBM2 energy.
        assert hbm1_energy().baseline_row_energy_fraction == 0.50
        assert hbm2_energy().baseline_row_energy_fraction == 0.25

    def test_validation(self) -> None:
        from repro.config import DRAMEnergyParams

        with pytest.raises(ConfigError):
            DRAMEnergyParams(e_act_nj=-1).validate()
        with pytest.raises(ConfigError):
            DRAMEnergyParams(baseline_row_energy_fraction=1.5).validate()
