"""Integration tests for the memory controller (open-loop traces).

These tests drive the controller with scripted request streams, the same
way the paper's worked examples (Figs. 3 and 8) are constructed.
"""

import pytest

from repro.config import (
    AMSConfig,
    AMSMode,
    AddressMapping,
    DMSConfig,
    DMSMode,
    GPUConfig,
    SchedulerConfig,
    baseline_scheduler,
    gddr5_timings,
    static_dms,
)
from repro.config.address import DecodedAddress
from repro.dram import Channel, MemoryRequest, TimingChecker
from repro.sched import MemoryController
from repro.sim.engine import Engine


def addr_for(bank: int, row: int, col: int = 0) -> int:
    m = AddressMapping()
    return m.encode(
        DecodedAddress(channel=0, bank=bank, bank_group=bank // 4,
                       row=row, column=col)
    )


class Harness:
    """A channel + controller pair fed by scripted arrivals."""

    def __init__(self, sched: SchedulerConfig, *, log_commands: bool = False):
        self.config = GPUConfig()
        self.engine = Engine()
        self.channel = Channel(
            0, self.config.mapping, gddr5_timings(),
            log_commands=log_commands,
        )
        self.replies: list[tuple[float, int, bool]] = []
        self.mc = MemoryController(
            self.channel,
            config=self.config,
            sched_config=sched,
            engine=self.engine,
            reply_fn=self._on_reply,
        )

    def _on_reply(self, request, approx, donor) -> None:
        self.replies.append((self.engine.now, request.rid, approx))

    def inject(self, time: float, bank: int, row: int, col: int = 0, *,
               is_write: bool = False, approximable: bool = False
               ) -> MemoryRequest:
        req = MemoryRequest.from_address(
            addr_for(bank, row, col),
            is_write=is_write,
            mapping=self.config.mapping,
            approximable=approximable,
        )
        self.engine.at(time, lambda: self.mc.submit(req))
        return req

    def run(self) -> None:
        self.engine.run(max_events=1_000_000)
        self.channel.finalize()


class TestBaselineFRFCFS:
    def test_single_read_is_served(self) -> None:
        h = Harness(baseline_scheduler())
        r = h.inject(0, bank=0, row=1)
        h.run()
        assert h.channel.stats.reads_served == 1
        assert h.channel.stats.activations == 1
        assert len(h.replies) == 1
        t, rid, approx = h.replies[0]
        assert rid == r.rid and not approx
        tm = h.channel.timings
        assert t == tm.tRCD + tm.tCL + tm.tBURST

    def test_row_hits_prioritized_over_older_misses(self) -> None:
        # Open row 1; then a miss (row 2) arrives BEFORE another row-1 hit.
        # FR-FCFS must serve the younger hit before switching to row 2.
        h = Harness(baseline_scheduler(), log_commands=True)
        h.inject(0, bank=0, row=1, col=0)
        h.inject(5, bank=0, row=2, col=0)
        h.inject(6, bank=0, row=1, col=1)
        h.run()
        assert h.channel.stats.activations == 2
        assert h.channel.stats.rbl_histogram[2] == 1  # row 1 served twice
        assert h.channel.stats.rbl_histogram[1] == 1

    def test_banks_served_in_parallel(self) -> None:
        h = Harness(baseline_scheduler())
        h.inject(0, bank=0, row=1)
        h.inject(0, bank=8, row=1)  # different bank group
        h.run()
        times = sorted(t for t, _, _ in h.replies)
        tm = h.channel.timings
        # The second reply must NOT wait a full row cycle: bank-level
        # parallelism overlaps the activations (only tRRD + burst apart).
        assert times[1] - times[0] < tm.tRC
        assert h.channel.stats.activations == 2

    def test_command_stream_is_timing_legal(self) -> None:
        h = Harness(baseline_scheduler(), log_commands=True)
        pattern = [
            (0, 0, 1, 0), (1, 0, 2, 0), (2, 5, 1, 0), (3, 0, 1, 1),
            (10, 9, 3, 0), (11, 0, 2, 1), (250, 0, 7, 0), (251, 5, 1, 1),
        ]
        for t, bank, row, col in pattern:
            h.inject(t, bank=bank, row=row, col=col)
        h.inject(20, bank=0, row=2, col=2, is_write=True)
        h.run()
        checker = TimingChecker(h.channel.timings)
        checker.check_stream(h.channel.command_log)
        assert checker.commands_checked == len(h.channel.command_log)

    def test_writes_complete_without_replies(self) -> None:
        h = Harness(baseline_scheduler())
        h.inject(0, bank=0, row=1, is_write=True)
        h.run()
        assert h.channel.stats.writes_served == 1
        assert not h.replies


class TestDelayedScheduling:
    def test_dms_merges_skewed_same_row_streams(self) -> None:
        """Paper Fig. 3: delaying lets a second wave of same-row requests
        reach the queue before their rows are opened, halving activations."""

        def run(sched) -> int:
            h = Harness(sched)
            for i in range(8):
                h.inject(i * 2.0, bank=0, row=i, col=0)
            for i in range(8):
                h.inject(300.0 + i * 2.0, bank=0, row=i, col=1)
            h.run()
            return h.channel.stats.activations

        base_acts = run(baseline_scheduler())
        dms_acts = run(static_dms(512))
        assert dms_acts < base_acts
        assert dms_acts == 8  # every row opened exactly once
        assert base_acts > 8

    def test_dms_delays_first_service(self) -> None:
        h = Harness(static_dms(256))
        r = h.inject(0, bank=0, row=1)
        h.run()
        t, rid, _ = h.replies[0]
        tm = h.channel.timings
        assert t >= 256 + tm.tRCD + tm.tCL + tm.tBURST

    def test_row_hits_not_delayed(self) -> None:
        h = Harness(static_dms(512))
        h.inject(0, bank=0, row=1, col=0)
        h.inject(520, bank=0, row=1, col=1)  # arrives once row 1 is open
        h.run()
        t_hit = h.replies[-1][0]
        # The hit is served promptly after arrival, not 512 cycles later.
        assert t_hit < 520 + 100
        assert h.channel.stats.activations == 1


def ams_scheme(th_rbl: int = 8, coverage: float = 1.0,
               delay: int = 0) -> SchedulerConfig:
    dms = (
        DMSConfig(mode=DMSMode.STATIC, static_delay=delay)
        if delay
        else DMSConfig(mode=DMSMode.OFF)
    )
    return SchedulerConfig(
        dms=dms,
        ams=AMSConfig(mode=AMSMode.STATIC, static_th_rbl=th_rbl,
                      coverage_limit=coverage, warmup_fills=0),
    )


class TestApproximateScheduling:
    def test_low_rbl_row_dropped_and_answered_approximately(self) -> None:
        h = Harness(ams_scheme(th_rbl=1))
        r = h.inject(0, bank=0, row=1, approximable=True)
        h.run()
        assert h.channel.stats.activations == 0
        assert h.channel.stats.requests_dropped == 1
        (t, rid, approx) = h.replies[0]
        assert approx and rid == r.rid

    def test_unannotated_requests_never_dropped(self) -> None:
        h = Harness(ams_scheme(th_rbl=8))
        h.inject(0, bank=0, row=1, approximable=False)
        h.run()
        assert h.channel.stats.requests_dropped == 0
        assert h.channel.stats.activations == 1

    def test_high_rbl_row_not_dropped(self) -> None:
        # A small DMS delay makes both requests visible at decision time.
        h = Harness(ams_scheme(th_rbl=1, delay=64))
        h.inject(0, bank=0, row=1, col=0, approximable=True)
        h.inject(1, bank=0, row=1, col=1, approximable=True)
        h.run()
        # Two pending requests > Th_RBL(1): the row is served normally.
        assert h.channel.stats.requests_dropped == 0
        assert h.channel.stats.activations == 1
        assert h.channel.stats.rbl_histogram[2] == 1

    def test_whole_row_group_dropped_together(self) -> None:
        h = Harness(ams_scheme(th_rbl=4))
        for col in range(3):
            h.inject(float(col), bank=0, row=1, col=col, approximable=True)
        h.run()
        assert h.channel.stats.requests_dropped == 3
        assert h.channel.stats.activations == 0
        # Replies are staggered one cycle apart (sequential drops).
        times = sorted(t for t, _, _ in h.replies)
        assert times[1] - times[0] == 1
        assert times[2] - times[1] == 1


class TestFig8Example:
    """The paper's Fig. 8: AMS alone mis-drops the oldest request; with
    DMS it correctly identifies and drops the true RBL(1) row.

    Nine requests target rows R1..R5 of bank 0; partner requests for
    R1..R4 arrive a little later. Twenty filler reads to another bank
    give the coverage ledger a realistic denominator (the bound is 5 %,
    so exactly one drop is affordable), and partner timing matches the
    paper's premise that the bank serves slowly enough for partners to
    reach the queue while their rows are open.
    """

    FILLER = 20

    def scripted(self, sched: SchedulerConfig) -> "Harness":
        h = Harness(sched)
        for i in range(self.FILLER):
            h.inject(0.0, bank=3, row=100, col=i % 16)
        for i, row in enumerate((1, 2, 3, 4, 5)):
            h.inject(float(i), bank=0, row=row, col=0, approximable=True)
        for i, row in enumerate((1, 2, 3, 4)):
            h.inject(20.0 + i, bank=0, row=row, col=1, approximable=True)
        h.run()
        return h

    def example_metrics(self, h: "Harness") -> tuple[int, int]:
        """(requests served, activations) excluding the filler traffic."""
        served = h.channel.stats.reads_served - self.FILLER
        acts = h.channel.stats.activations - 1  # filler opens one row
        return served, acts

    def test_ams_alone_drops_oldest_r1(self) -> None:
        h = self.scripted(ams_scheme(th_rbl=1, coverage=0.05))
        assert h.channel.stats.requests_dropped == 1
        first = h.mc.drops[0]
        assert h.config.mapping.decode(first.addr).row == 1
        served, acts = self.example_metrics(h)
        # The drop did not save any activation: Avg-RBL fell to 8/5 = 1.6.
        assert (served, acts) == (8, 5)
        assert served / acts == pytest.approx(1.6)

    def test_dms_plus_ams_drops_true_rbl1_row(self) -> None:
        h = self.scripted(ams_scheme(th_rbl=1, coverage=0.05, delay=512))
        assert h.channel.stats.requests_dropped == 1
        first = h.mc.drops[0]
        assert h.config.mapping.decode(first.addr).row == 5
        served, acts = self.example_metrics(h)
        # 8 requests served with 4 activations: Avg-RBL 2 (paper's value).
        assert (served, acts) == (8, 4)
        assert served / acts == pytest.approx(2.0)
