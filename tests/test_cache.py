"""Unit tests for the L2 cache slice and MSHR file."""

import pytest

from repro.cache import L2Cache, L2Outcome, MSHRFile
from repro.config import L2Config
from repro.errors import SimulationError


def small_l2(**kwargs) -> L2Cache:
    defaults = dict(
        size_bytes=4 * 128 * 2,  # 2 sets x 4 ways x 128 B
        associativity=4,
        line_bytes=128,
        mshr_entries=4,
    )
    defaults.update(kwargs)
    return L2Cache(L2Config(**defaults))


class TestMSHRFile:
    def test_allocate_and_complete(self) -> None:
        m = MSHRFile(2)
        m.allocate(10, "a")
        m.merge(10, "b")
        assert m.merges == 1
        assert m.complete(10) == ["a", "b"]
        assert len(m) == 0

    def test_double_allocate_rejected(self) -> None:
        m = MSHRFile(2)
        m.allocate(10, "a")
        with pytest.raises(SimulationError):
            m.allocate(10, "b")

    def test_capacity_enforced(self) -> None:
        m = MSHRFile(1)
        m.allocate(1, "a")
        assert m.full
        with pytest.raises(SimulationError):
            m.allocate(2, "b")

    def test_complete_unknown_rejected(self) -> None:
        with pytest.raises(SimulationError):
            MSHRFile(1).complete(99)

    def test_zero_capacity_rejected(self) -> None:
        with pytest.raises(SimulationError):
            MSHRFile(0)


class TestL2AccessPath:
    def test_read_miss_then_fill_then_hit(self) -> None:
        l2 = small_l2()
        r = l2.access(0, is_write=False, waiter="w0")
        assert r.outcome is L2Outcome.MISS
        waiters, wb = l2.fill(0)
        assert waiters == ["w0"] and wb is None
        assert l2.access(0, is_write=False).outcome is L2Outcome.HIT
        assert l2.hits == 1 and l2.misses == 1 and l2.fills == 1

    def test_miss_to_outstanding_line_merges(self) -> None:
        l2 = small_l2()
        l2.access(0, is_write=False, waiter="w0")
        r = l2.access(64, is_write=False, waiter="w1")  # same 128 B line
        assert r.outcome is L2Outcome.MISS_MERGED
        waiters, _ = l2.fill(0)
        assert waiters == ["w0", "w1"]

    def test_full_line_store_allocates_without_fetch(self) -> None:
        l2 = small_l2()
        r = l2.access(0, is_write=True, full_line=True)
        assert r.outcome is L2Outcome.MISS_NO_FETCH
        assert l2.contains(0)
        # The allocated line is dirty: evicting it writes back.
        assert l2.access(0, is_write=False).outcome is L2Outcome.HIT

    def test_partial_write_miss_fetches(self) -> None:
        l2 = small_l2()
        r = l2.access(0, is_write=True, full_line=False, waiter="w")
        assert r.outcome is L2Outcome.MISS

    def test_mshr_full_stalls(self) -> None:
        l2 = small_l2(mshr_entries=1)
        l2.access(0, is_write=False, waiter="a")
        r = l2.access(128 * 2, is_write=False, waiter="b")
        assert r.outcome is L2Outcome.STALL

    def test_lru_eviction_and_dirty_writeback(self) -> None:
        l2 = small_l2()  # 2 sets, 4 ways
        # Fill set 0 with 4 dirty lines: line addresses 0, 2, 4, 6.
        for i in range(4):
            line_byte = i * 2 * 128
            r = l2.access(line_byte, is_write=True, full_line=True)
            assert r.outcome is L2Outcome.MISS_NO_FETCH
        # Touch line 0 to make line 2 the LRU victim.
        l2.access(0, is_write=False)
        r = l2.access(8 * 128, is_write=True, full_line=True)
        assert r.writeback_line == 2  # line address, not byte address
        assert l2.writebacks == 1
        assert not l2.contains(2 * 128)
        assert l2.contains(0)

    def test_clean_eviction_no_writeback(self) -> None:
        l2 = small_l2()
        for i in range(5):
            addr = i * 2 * 128
            l2.access(addr, is_write=False, waiter=i)
            _, wb = l2.fill(addr)
            assert wb is None  # clean victims evict silently
        assert l2.writebacks == 0

    def test_occupancy(self) -> None:
        l2 = small_l2()
        l2.access(0, is_write=True, full_line=True)
        l2.access(128, is_write=True, full_line=True)
        assert l2.occupancy == 2


class TestNearestResidentSearch:
    def test_exact_line_preferred(self) -> None:
        l2 = small_l2()
        l2.access(0, is_write=True, full_line=True)
        l2.access(128, is_write=True, full_line=True)
        assert l2.find_nearest_resident(128, radius_sets=1) == 1

    def test_nearest_by_address_distance(self) -> None:
        l2 = small_l2()  # 2 sets: even lines -> set 0, odd -> set 1
        l2.access(0, is_write=True, full_line=True)  # line 0
        l2.access(10 * 128, is_write=True, full_line=True)  # line 10
        # Target line 3 (set 1): with radius 1 both sets searched;
        # line 0 (distance 3) beats line 10 (distance 7).
        assert l2.find_nearest_resident(3 * 128, radius_sets=1) == 0

    def test_empty_cache_returns_none(self) -> None:
        assert small_l2().find_nearest_resident(0, radius_sets=2) is None

    def test_radius_zero_searches_home_set_only(self) -> None:
        l2 = small_l2()
        l2.access(0, is_write=True, full_line=True)  # line 0 -> set 0
        # Target line 1 lives in set 1; radius 0 must not see set 0.
        assert l2.find_nearest_resident(128, radius_sets=0) is None
        assert l2.find_nearest_resident(128, radius_sets=1) == 0
