"""Smoke-level integration: every Table II application simulates."""

import pytest

from repro.config import baseline_scheduler, static_ams
from repro.sim.system import simulate
from repro.workloads import TABLE_II, get_workload

SCALE = 0.12


@pytest.mark.parametrize("name", sorted(TABLE_II))
def test_every_app_simulates_under_baseline(name: str) -> None:
    report = simulate(get_workload(name, scale=SCALE),
                      scheduler=baseline_scheduler())
    assert report.requests_served > 0
    assert report.activations > 0
    assert report.total_instructions > 0
    assert report.elapsed_mem_cycles > 0
    assert report.row_energy_nj > 0
    assert report.requests_dropped == 0
    # The RBL histogram partitions exactly the served requests.
    hist = report.rbl_histogram
    assert sum(r * c for r, c in hist.items()) == report.requests_served


@pytest.mark.parametrize("name", ("SCP", "MVT", "RAY", "meanfilter"))
def test_representative_apps_with_ams_and_error(name: str) -> None:
    wl = get_workload(name, scale=0.25)
    report = simulate(
        wl,
        scheduler=static_ams(8),
        measure_error=True,
    )
    assert report.coverage <= 0.10 + 1e-9
    err = report.application_error
    assert err is not None and err >= 0.0
    # Every drop maps back to an annotated array line.
    for drop in report.drops[:50]:
        located = wl.space.locate_line(drop.addr)
        assert located is not None
        assert located[0].approximable
