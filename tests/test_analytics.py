"""Results-warehouse suite: statistics, ingest, reports, gates, service.

The statistics layer is held to mathematical ground truth — bootstrap
CI properties under Hypothesis (interval nesting in the confidence
level, determinism, degenerate samples) and Mann–Whitney U against
both hand-computed fixtures and brute-force enumeration of the exact
null distribution. On top of that sit the integration layers: cache
traversal (``iter_blobs``/``iter_entries``), sqlite ingest
idempotency, the end-to-end ingest → render → diff pipeline on a real
2-seed matrix (including a seeded synthetic regression that must trip
exit code 5), and the service's ``/v1/experiments`` routes returning
the same aggregates as the CLI render.
"""

import itertools
import json
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.report import (
    render_diff_markdown,
    render_html,
    render_markdown,
)
from repro.analytics.results import ExperimentResults
from repro.analytics.stats import (
    bootstrap_ci,
    holm_adjust,
    mann_whitney_u,
    percentile,
    rankdata,
)
from repro.analytics.warehouse import Warehouse, ingest_sources
from repro.config.warehouse import WarehouseSpec
from repro.errors import ConfigError
from repro.harness.cache import ResultCache
from repro.harness.cli import (
    EXIT_OK,
    EXIT_REGRESSION,
    main as cli_main,
)
from repro.harness.runner import Runner
from repro.harness.schemes import evaluation_schemes
from repro.sim.report import SimReport

#: Tiny but representative: full pipeline in a few seconds per cell.
SCALE = 0.05
SEEDS = (7, 8)
#: evaluation_schemes() keys for the fixture matrix...
MATRIX_KEYS = ("Baseline", "Static-AMS")
#: ...and the config-derived labels those cells carry in reports (the
#: AMS one picks up its Th_RBL parameter).
AMS = "Static-AMS(8)"
REPORT_SCHEMES = ("Baseline", AMS)


# ======================================================================
# Statistics: bootstrap CI
# ======================================================================
class TestBootstrapCI:
    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_single_seed_degenerate(self):
        ci = bootstrap_ci([3.25])
        assert (ci.low, ci.mean, ci.high) == (3.25, 3.25, 3.25)
        assert ci.n == 1

    def test_constant_sample_degenerate(self):
        ci = bootstrap_ci([2.0, 2.0, 2.0])
        assert (ci.low, ci.mean, ci.high) == (2.0, 2.0, 2.0)

    def test_known_small_sample(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.mean == pytest.approx(2.5)
        assert ci.low < ci.mean < ci.high
        assert 1.0 <= ci.low and ci.high <= 4.0

    def test_deterministic(self):
        a = bootstrap_ci([0.3, 0.9, 0.4, 0.8, 0.1])
        b = bootstrap_ci([0.3, 0.9, 0.4, 0.8, 0.1])
        assert a == b

    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=12,
        ),
        confidences=st.tuples(
            st.floats(min_value=0.05, max_value=0.99),
            st.floats(min_value=0.05, max_value=0.99),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_nesting_monotone_in_confidence(self, values, confidences):
        """A wider confidence level must fully contain a narrower one.

        Holds by construction (one resample plan, cut at different
        percentiles) — this is the coverage-monotonicity property the
        regression gate's sanity relies on.
        """
        lo_conf, hi_conf = sorted(confidences)
        narrow = bootstrap_ci(values, confidence=lo_conf, resamples=200)
        wide = bootstrap_ci(values, confidence=hi_conf, resamples=200)
        assert wide.low <= narrow.low
        assert narrow.high <= wide.high
        assert narrow.low <= narrow.high

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=10,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_within_sample_range(self, values):
        # Resample means live in [min, max] up to float rounding — a
        # mean of identical values can differ from them by one ulp.
        slack = 1e-9 * max(1.0, max(abs(v) for v in values))
        ci = bootstrap_ci(values, resamples=100)
        assert min(values) - slack <= ci.low
        assert ci.low <= ci.high
        assert ci.high <= max(values) + slack


class TestPercentile:
    def test_endpoints_and_median(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 1.0) == 4.0
        assert percentile(xs, 0.5) == pytest.approx(2.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


# ======================================================================
# Statistics: Mann-Whitney U
# ======================================================================
def brute_force_p(a, b):
    """Exact two-sided p by enumerating every group relabeling.

    Counts P(U1 <= min(u1_obs, u2_obs)) over all C(n1+n2, n1) equally
    likely assignments of the pooled values to group A — the definition
    the DP in ``_u_counts`` is meant to reproduce — and doubles it.
    """
    combined = list(a) + list(b)
    n1 = len(a)
    observed = mann_whitney_u(a, b)
    u_obs = min(observed.u1, observed.u2)
    count = 0
    total = 0
    for a_index in itertools.combinations(range(len(combined)), n1):
        chosen = set(a_index)
        ga = [combined[i] for i in a_index]
        gb = [combined[i] for i in range(len(combined))
              if i not in chosen]
        u1 = sum(1 for x in ga for y in gb if x > y)
        total += 1
        if u1 <= u_obs:
            count += 1
    return min(1.0, 2.0 * count / total)


class TestMannWhitney:
    def test_hand_computed_separated(self):
        # a entirely below b: U1 = 0; exact two-sided p = 2 * 1/C(6,3)
        # * |{U <= 0}| = 2/20 = 0.1.
        result = mann_whitney_u([1, 2, 3], [4, 5, 6])
        assert result.u1 == 0.0
        assert result.u2 == 9.0
        assert result.method == "exact"
        assert result.p_value == pytest.approx(0.1)

    def test_hand_computed_two_vs_two(self):
        # The 2-seed case the gate must survive: minimum possible
        # two-sided p is 2/6 — never significant at 0.05, which is
        # exactly why the delta-only fallback exists.
        result = mann_whitney_u([1, 2], [3, 4])
        assert result.p_value == pytest.approx(1 / 3)

    def test_hand_computed_interleaved(self):
        # Perfectly interleaved samples carry no shift evidence.
        result = mann_whitney_u([1, 3, 5], [2, 4, 6])
        assert result.method == "exact"
        assert result.p_value > 0.5

    def test_symmetry(self):
        a, b = [1.0, 5.0, 2.5], [4.0, 0.5, 6.0, 3.0]
        assert (
            mann_whitney_u(a, b).p_value
            == mann_whitney_u(b, a).p_value
        )

    def test_u1_plus_u2_identity(self):
        a, b = [3.0, 1.0, 4.0], [1.5, 5.0]
        result = mann_whitney_u(a, b)
        assert result.u1 + result.u2 == len(a) * len(b)

    def test_ties_use_normal_approximation(self):
        result = mann_whitney_u([1, 1, 2], [2, 3, 3])
        assert result.method == "normal"
        assert 0.0 < result.p_value <= 1.0

    def test_identical_samples_not_significant(self):
        result = mann_whitney_u([2.0, 2.0], [2.0, 2.0])
        assert result.p_value == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    @given(
        a=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                   min_size=1, max_size=5),
        b=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                   min_size=1, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_matches_brute_force(self, a, b):
        values = [float(v) for v in a + b]
        if len(set(values)) != len(values):
            return  # exact path is tie-free by contract
        result = mann_whitney_u(a, b)
        assert result.method == "exact"
        assert result.p_value == pytest.approx(brute_force_p(a, b))

    def test_rankdata_midranks(self):
        assert rankdata([10.0, 20.0, 20.0, 30.0]) == [1.0, 2.5, 2.5, 4.0]


class TestHolm:
    def test_fixture(self):
        assert holm_adjust([0.01, 0.04, 0.03]) == pytest.approx(
            [0.03, 0.06, 0.06]
        )

    def test_empty(self):
        assert holm_adjust([]) == []

    def test_never_exceeds_one(self):
        assert max(holm_adjust([0.9, 0.8, 0.7])) == 1.0


# ======================================================================
# WarehouseSpec validation
# ======================================================================
class TestWarehouseSpec:
    def test_defaults_valid(self):
        WarehouseSpec().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"confidence": 1.5},
            {"resamples": 0},
            {"alpha": 0.0},
            {"min_effect": -0.1},
            {"min_samples": 0},
            {"metrics": ()},
            {"metrics": ("not_a_metric",)},
            {"baseline_scheme": ""},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            WarehouseSpec(**kwargs).validate()


# ======================================================================
# End-to-end: matrix -> cache -> warehouse -> report -> gate -> service
# ======================================================================
@pytest.fixture(scope="module")
def sweep_cache(tmp_path_factory):
    """A real 2-seed matrix cached once for the whole module."""
    root = tmp_path_factory.mktemp("analytics-cache")
    cache = ResultCache(root, enabled=True)
    schemes = {
        label: config
        for label, config in evaluation_schemes().items()
        if label in MATRIX_KEYS
    }
    assert len(schemes) == len(MATRIX_KEYS)
    for seed in SEEDS:
        runner = Runner(
            scale=SCALE, seed=seed, cache=cache, verbose=False
        )
        try:
            runner.run_matrix(["SCP"], schemes, measure_error=True)
        finally:
            runner.close()
    return root


@pytest.fixture()
def warehouse_db(sweep_cache, tmp_path):
    """A freshly ingested warehouse over the shared sweep cache."""
    db = tmp_path / "wh.sqlite"
    with Warehouse(db) as warehouse:
        warehouse.ingest_cache(ResultCache(sweep_cache, enabled=True))
    return db


class TestCacheTraversal:
    def test_iter_entries_matches_load(self, sweep_cache):
        cache = ResultCache(sweep_cache, enabled=True)
        seen = list(cache.iter_entries())
        assert len(seen) == len(cache.entries())
        for key, report, mtime in seen:
            assert isinstance(report, SimReport)
            assert mtime > 0
            loaded = cache.load(key)
            assert loaded is not None
            assert loaded.to_dict() == report.to_dict()

    def test_iter_blobs_is_lazy(self, sweep_cache):
        cache = ResultCache(sweep_cache, enabled=True)
        iterator = cache.iter_blobs()
        key, blob, _mtime, size = next(iterator)
        assert blob["format_version"] == cache.info()["format_version"]
        assert size > 0
        iterator.close()  # abandoning mid-walk must be fine

    def test_iter_blobs_quarantines_corrupt(self, sweep_cache, tmp_path):
        cache = ResultCache(tmp_path / "c", enabled=True)
        src = ResultCache(sweep_cache, enabled=True)
        for key, report, _mtime in src.iter_entries():
            cache.store(key, report)
        victim = cache.entries()[0]
        victim.write_text("{ torn", encoding="utf-8")
        healthy = len(cache.entries()) - 1
        assert len(list(cache.iter_blobs())) == healthy
        assert cache.quarantined == 1
        assert victim not in cache.entries()

    def test_store_meta_recorded_and_load_unaffected(self, sweep_cache):
        cache = ResultCache(sweep_cache, enabled=True)
        metas = [blob.get("meta") for _k, blob, _m, _s in cache.iter_blobs()]
        assert metas and all(m is not None for m in metas)
        for meta in metas:
            assert meta["app"] == "SCP"
            assert meta["scale"] == SCALE
            assert meta["seed"] in SEEDS
            assert "scheduler" in meta["spec"]

    def test_info_deep_counts(self, sweep_cache):
        cache = ResultCache(sweep_cache, enabled=True)
        info = cache.info(deep=True)
        assert info["entries"] == len(SEEDS) * len(REPORT_SCHEMES)
        assert info["workloads"] == {"SCP": info["entries"]}
        assert sorted(info["schemes"]) == sorted(REPORT_SCHEMES)
        assert all(
            count == len(SEEDS) for count in info["schemes"].values()
        )


class TestWarehouseIngest:
    def test_ingest_idempotent(self, sweep_cache, tmp_path):
        cache = ResultCache(sweep_cache, enabled=True)
        with Warehouse(tmp_path / "wh.sqlite") as warehouse:
            first = warehouse.ingest_cache(cache)
            second = warehouse.ingest_cache(cache)
            assert first == second == len(cache.entries())
            assert warehouse.counts()["experiments"] == first

    def test_rows_flattened_and_ordered(self, warehouse_db):
        with Warehouse(warehouse_db) as warehouse:
            rows = warehouse.rows()
            assert len(rows) == len(SEEDS) * len(REPORT_SCHEMES)
            assert rows == sorted(
                rows,
                key=lambda r: (
                    r["app"], r["scheme"], r["device"] or "",
                    r["ecc"] or "", r["seed"],
                ),
            )
            for row in rows:
                assert row["seed"] in SEEDS
                assert row["scale"] == SCALE
                assert row["row_energy_nj"] > 0
            ams = warehouse.rows(scheme=AMS)
            assert [r["seed"] for r in ams] == sorted(SEEDS)
            assert all(r["app_error"] is not None for r in ams)

    def test_unknown_filter_rejected(self, warehouse_db):
        with Warehouse(warehouse_db) as warehouse:
            with pytest.raises(ValueError):
                warehouse.rows(bogus="x")

    def test_row_includes_report_blob(self, warehouse_db):
        with Warehouse(warehouse_db) as warehouse:
            key = warehouse.rows()[0]["content_key"]
            doc = warehouse.row(key)
            assert doc is not None
            report = SimReport.from_dict(doc["report"])
            assert report.workload == "SCP"
            assert warehouse.row("no-such-key") is None

    def test_ingest_failures_and_bench(self, tmp_path):
        manifest = tmp_path / "failures.json"
        manifest.write_text(json.dumps({"failures": [
            {"app": "SCP", "label": "Dyn-DMS", "key": "abc",
             "error_type": "ValueError", "message": "boom",
             "attempts": 2, "elapsed": 1.5},
        ]}), encoding="utf-8")
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps({
            "benchmark": "x",
            "history": [{"timestamp": "2026-08-08T00:00:00Z", "rps": 5}],
        }), encoding="utf-8")
        with Warehouse(tmp_path / "wh.sqlite") as warehouse:
            ingested = ingest_sources(
                warehouse,
                failure_manifests=[manifest],
                bench_files=[bench],
            )
            assert ingested == {
                "experiments": 0, "failures": 1, "bench": 1,
            }
            assert warehouse.failures()[0]["message"] == "boom"
            assert warehouse.bench_entries("x")[0]["rps"] == 5


class TestExperimentResults:
    def test_summary_structure(self, warehouse_db):
        with Warehouse(warehouse_db) as warehouse:
            summary = ExperimentResults(warehouse).summary()
        assert summary["confidence"] == 0.95
        assert summary["n_experiments"] == len(SEEDS) * len(REPORT_SCHEMES)
        schemes = [g["scheme"] for g in summary["groups"]]
        assert schemes == sorted(schemes)
        by_scheme = {g["scheme"]: g for g in summary["groups"]}
        assert by_scheme["Baseline"]["row_energy_savings"] is None
        savings = by_scheme[AMS]["row_energy_savings"]
        assert savings is not None and savings["n"] == len(SEEDS)
        assert savings["low"] <= savings["mean"] <= savings["high"]
        assert 0.0 < savings["mean"] < 1.0  # AMS drops rows -> saves
        for group in summary["groups"]:
            ipc = group["metrics"]["ipc"]
            assert ipc is not None and ipc["n"] == len(SEEDS)

    def test_snapshot_round_trip_clean_diff(self, warehouse_db):
        with Warehouse(warehouse_db) as warehouse:
            results = ExperimentResults(warehouse)
            snapshot = json.loads(json.dumps(results.snapshot()))
            assert results.regressions_against(snapshot) == []

    def test_injected_regression_flagged(self, warehouse_db):
        with Warehouse(warehouse_db) as warehouse:
            snapshot = ExperimentResults(warehouse).snapshot()
        conn = sqlite3.connect(warehouse_db)
        conn.execute(
            "UPDATE experiments SET row_energy_nj = row_energy_nj * 2"
            " WHERE scheme = ?", (AMS,)
        )
        conn.commit()
        conn.close()
        with Warehouse(warehouse_db) as warehouse:
            found = ExperimentResults(warehouse).regressions_against(
                snapshot
            )
        assert [(r.scheme, r.metric) for r in found] == [
            (AMS, "row_energy_nj")
        ]
        regression = found[0]
        assert regression.method == "delta-only"  # 2 seeds a side
        assert regression.rel_delta == pytest.approx(1.0)

    def test_improvement_not_flagged(self, warehouse_db):
        with Warehouse(warehouse_db) as warehouse:
            snapshot = ExperimentResults(warehouse).snapshot()
        conn = sqlite3.connect(warehouse_db)
        conn.execute(
            "UPDATE experiments SET row_energy_nj = row_energy_nj * 0.5"
        )
        conn.commit()
        conn.close()
        with Warehouse(warehouse_db) as warehouse:
            assert ExperimentResults(warehouse).regressions_against(
                snapshot
            ) == []

    def test_mann_whitney_gate_with_enough_seeds(self, tmp_path):
        """Synthetic many-seed warehouse exercises the tested path."""
        db = tmp_path / "wh.sqlite"
        seeds = range(8)
        with Warehouse(db) as warehouse:
            for seed in seeds:
                warehouse._conn.execute(
                    "INSERT INTO experiments (content_key, app, scheme,"
                    " device, ecc, seed, scale, ipc, activations,"
                    " avg_rbl, row_energy_nj, total_energy_nj,"
                    " ecc_energy_nj, coverage, bwutil, app_error, fit,"
                    " carbon_g_per_gib_year, flips_injected,"
                    " words_silent, n_tenants, jain_fairness,"
                    " elapsed_mem_cycles, total_instructions, mtime,"
                    " ingested_at, report) VALUES"
                    " (?, 'SCP', 'Dyn-DMS', NULL, NULL, ?, 0.05, 0.5,"
                    " 100, 4.0, ?, 1000.0, 0.0, 0.1, 0.5, NULL, NULL,"
                    " NULL, NULL, NULL, 0, NULL, 1e6, 1e5, 0.0, 0.0,"
                    " '{}')",
                    (f"k{seed}", seed, 100.0 + seed),
                )
            warehouse._conn.commit()
            results = ExperimentResults(warehouse)
            snapshot = results.snapshot()
            assert results.regressions_against(snapshot) == []
        conn = sqlite3.connect(db)
        conn.execute(
            "UPDATE experiments SET row_energy_nj = row_energy_nj + 50"
        )
        conn.commit()
        conn.close()
        with Warehouse(db) as warehouse:
            found = ExperimentResults(warehouse).regressions_against(
                snapshot
            )
        assert len(found) == 1
        assert found[0].method == "mann-whitney"
        assert found[0].p_value is not None
        assert found[0].p_value <= 0.05


class TestRenderers:
    def test_markdown_report(self, warehouse_db):
        with Warehouse(warehouse_db) as warehouse:
            summary = ExperimentResults(warehouse).summary()
        markdown = render_markdown(summary)
        assert "95% bootstrap CIs" in markdown
        assert "row-energy savings" in markdown
        assert AMS in markdown
        assert "&mdash;" not in markdown  # entities are HTML-only

    def test_html_report_self_contained(self, warehouse_db):
        with Warehouse(warehouse_db) as warehouse:
            summary = ExperimentResults(warehouse).summary()
        html = render_html(summary)
        assert html.startswith("<!DOCTYPE html>")
        assert AMS in html
        assert "<style>" in html
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html

    def test_diff_markdown(self):
        assert "No significant regressions" in render_diff_markdown([])
        block = render_diff_markdown([{
            "app": "SCP", "scheme": "Dyn-DMS", "device": None,
            "ecc": None, "metric": "row_energy_nj",
            "baseline_mean": 1.0, "current_mean": 2.0,
            "rel_delta": 1.0, "p_value": None, "method": "delta-only",
        }])
        assert "row_energy_nj" in block and "+100.0%" in block


class TestReportCLI:
    def test_ingest_render_diff_pipeline(
        self, sweep_cache, tmp_path, monkeypatch, capsys
    ):
        db = tmp_path / "wh.sqlite"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(sweep_cache))
        monkeypatch.setenv("REPRO_WAREHOUSE", str(db))
        monkeypatch.chdir(tmp_path)
        assert cli_main(["report", "ingest"]) == EXIT_OK
        assert cli_main([
            "report", "render", "--out", "report.md",
            "--html", "report.html", "--snapshot-out", "snap.json",
        ]) == EXIT_OK
        markdown = (tmp_path / "report.md").read_text(encoding="utf-8")
        assert "95% bootstrap CIs" in markdown
        assert "row-energy savings" in markdown
        html = (tmp_path / "report.html").read_text(encoding="utf-8")
        assert AMS in html
        assert cli_main([
            "report", "diff", "--baseline", "snap.json",
        ]) == EXIT_OK
        conn = sqlite3.connect(db)
        conn.execute(
            "UPDATE experiments SET row_energy_nj = row_energy_nj * 2"
            " WHERE scheme = ?", (AMS,)
        )
        conn.commit()
        conn.close()
        assert cli_main([
            "report", "diff", "--baseline", "snap.json",
        ]) == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "row_energy_nj" in out

    def test_query_filters(self, sweep_cache, tmp_path, monkeypatch, capsys):
        db = tmp_path / "wh.sqlite"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(sweep_cache))
        monkeypatch.setenv("REPRO_WAREHOUSE", str(db))
        assert cli_main(["report", "ingest"]) == EXIT_OK
        capsys.readouterr()
        assert cli_main([
            "report", "query", "--scheme", "Baseline", "--json",
        ]) == EXIT_OK
        rows = json.loads(capsys.readouterr().out)
        assert [r["seed"] for r in rows] == sorted(SEEDS)
        assert all(r["scheme"] == "Baseline" for r in rows)


class TestServiceExperiments:
    def test_summary_matches_cli_code_path(self, warehouse_db, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import ServiceDaemon

        daemon = ServiceDaemon(
            port=0,
            workers=0,
            cache=ResultCache(tmp_path / "cache", enabled=True),
            journal_path=tmp_path / "journal.jsonl",
            warehouse_path=warehouse_db,
            verbose=False,
        )
        daemon.start_in_thread()
        try:
            client = ServiceClient(port=daemon.port)
            with Warehouse(warehouse_db) as warehouse:
                expected = ExperimentResults(warehouse).summary()
            assert client.experiments_summary() == json.loads(
                json.dumps(expected)
            )
            rows = client.experiments()
            assert len(rows) == len(SEEDS) * len(REPORT_SCHEMES)
            baseline = client.experiments(scheme="Baseline")
            assert [r["seed"] for r in baseline] == sorted(SEEDS)
            doc = client.experiment(rows[0]["content_key"])
            assert doc["report"]["workload"] == "SCP"
            with pytest.raises(ConfigError):
                client.experiments(nope="x")
            from repro.errors import ServiceError
            with pytest.raises(ServiceError):
                client.experiment("missing-key")
            counters = client.stats()["service"]
            flat = counters.get("counters", counters)
            assert any(
                str(name).startswith("analytics.") for name in flat
            )
        finally:
            daemon.stop()

    def test_missing_warehouse_is_404(self, tmp_path):
        from repro.errors import ServiceError
        from repro.service.client import ServiceClient
        from repro.service.server import ServiceDaemon

        daemon = ServiceDaemon(
            port=0,
            workers=0,
            cache=ResultCache(tmp_path / "cache", enabled=True),
            journal_path=tmp_path / "journal.jsonl",
            warehouse_path=tmp_path / "absent.sqlite",
            verbose=False,
        )
        daemon.start_in_thread()
        try:
            client = ServiceClient(port=daemon.port)
            with pytest.raises(ServiceError, match="no warehouse"):
                client.experiments_summary()
        finally:
            daemon.stop()


class TestParetoOrdering:
    def test_rows_sorted_across_devices(self, tmp_path):
        from repro.harness.pareto import run_pareto

        rows = run_pareto(
            apps=["SCP"],
            scheme_tokens=["base", "dms"],
            devices=["gddr5", "hbm"],
            ecc_codes=["none"],
            scale=SCALE,
            seed=7,
            cache=ResultCache(tmp_path / "cache", enabled=True),
            verbose=False,
        )
        keys = [(r.app, r.scheme, r.device, r.ecc) for r in rows]
        assert keys == sorted(keys)
        # The loop fills device-major; sorted order interleaves devices
        # within each scheme, so this asserts a real reordering.
        assert len({r.device for r in rows}) == 2
        assert rows[0].scheme == rows[1].scheme
        assert rows[0].device != rows[1].device
