"""Tests for the experiment harness: schemes, tables, runner, CLI."""

import pytest

from repro.config import AMSMode, DMSMode
from repro.harness import (
    EXPERIMENTS,
    Runner,
    ams_only,
    dms_only,
    dms_plus_ams,
    evaluation_schemes,
    format_table,
    geomean,
)


class TestSchemes:
    def test_evaluation_scheme_set_matches_fig12_legend(self) -> None:
        schemes = evaluation_schemes()
        assert set(schemes) == {
            "Baseline",
            "Static-DMS",
            "Dyn-DMS",
            "Static-AMS",
            "Dyn-AMS",
            "Static-DMS+Static-AMS",
            "Dyn-DMS+Dyn-AMS",
        }
        combo = schemes["Dyn-DMS+Dyn-AMS"]
        assert combo.dms.mode is DMSMode.DYNAMIC
        assert combo.ams.mode is AMSMode.DYNAMIC

    def test_delay_only_set_for_group4(self) -> None:
        schemes = evaluation_schemes(include_ams=False)
        assert set(schemes) == {"Baseline", "Static-DMS", "Dyn-DMS"}

    def test_scaled_windows_applied(self) -> None:
        schemes = evaluation_schemes(window_cycles=512,
                                     windows_per_phase=8)
        assert schemes["Dyn-DMS"].dms.window_cycles == 512
        assert schemes["Dyn-AMS"].ams.window_cycles == 512

    def test_helper_factories(self) -> None:
        assert dms_only(256).dms.static_delay == 256
        assert ams_only(3).ams.static_th_rbl == 3
        combo = dms_plus_ams(512, 2, coverage=0.2)
        assert combo.dms.static_delay == 512
        assert combo.ams.static_th_rbl == 2
        assert combo.ams.coverage_limit == 0.2
        for scheme in (dms_only(128), ams_only(8), dms_plus_ams(128, 8)):
            scheme.validate()


class TestTables:
    def test_format_table_alignment(self) -> None:
        text = format_table(
            ["App", "x"], [["SCP", 1.23456], ["LPS", 2.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "SCP" in lines[3] and "1.235" in lines[3]
        assert len(lines) == 5

    def test_geomean(self) -> None:
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 2.0]) == pytest.approx(2.0)  # zeros skipped


class TestRunner:
    def test_runner_caches_by_label(self) -> None:
        runner = Runner(scale=0.12, verbose=False)
        scheme = evaluation_schemes()["Baseline"]
        r1 = runner.run("SCP", scheme, label="Baseline")
        r2 = runner.run("SCP", scheme, label="Baseline")
        assert r1 is r2

    def test_run_matrix_covers_all_cells(self) -> None:
        runner = Runner(scale=0.12, verbose=False)
        schemes = {
            "Baseline": evaluation_schemes()["Baseline"],
            "DMS(128)": dms_only(128),
        }
        results = runner.run_matrix(["SCP", "LPS"], schemes)
        assert set(results) == {
            ("SCP", "Baseline"),
            ("SCP", "DMS(128)"),
            ("LPS", "Baseline"),
            ("LPS", "DMS(128)"),
        }


class TestExperimentsSmoke:
    """Each experiment runs end to end on a tiny configuration."""

    @pytest.fixture(scope="class")
    def runner(self) -> Runner:
        return Runner(scale=0.15, verbose=False)

    def test_fig05_smoke(self, runner) -> None:
        result = EXPERIMENTS["fig05"](runner, apps=("SCP",))
        assert "SCP" in result.text
        shares = result.data["shares"]["SCP"]
        for dist in shares.values():
            assert sum(dist) == pytest.approx(1.0, abs=1e-6)

    def test_fig07_smoke(self, runner) -> None:
        result = EXPERIMENTS["fig07"](runner)
        assert ("SCP", "AMS(8)") in result.data["rows"]

    def test_fig11_smoke(self, runner) -> None:
        result = EXPERIMENTS["fig11"](runner, app="SCP")
        assert set(result.data["acts"]) == set(range(1, 9))

    def test_fig14_smoke(self, runner) -> None:
        result = EXPERIMENTS["fig14"](runner)
        assert result.data["exact"].shape == result.data["approx"].shape

    def test_hbm_smoke(self, runner) -> None:
        result = EXPERIMENTS["hbm"](runner, apps=("SCP",))
        (h1,) = result.data["hbm1"]
        (h2,) = result.data["hbm2"]
        assert 0 < h1 <= 1.001
        assert h1 <= h2 + 1e-9  # HBM1 saves at least as much as HBM2


class TestCLI:
    def test_cli_runs_one_experiment(self, capsys) -> None:
        from repro.harness.cli import main

        rc = main(["fig11", "--scale", "0.15", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 11" in out

    def test_cli_rejects_unknown_experiment(self) -> None:
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["fig99"])
