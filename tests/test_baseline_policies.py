"""Tests for the baseline-policy ablations (FCFS, close-row) and the
reuse-aware error model."""

import numpy as np
import pytest

from repro.approx import (
    measure_application_error,
    measure_application_error_with_reuse,
)
from repro.config import SchedulerConfig
from repro.errors import ConfigError
from repro.vp.predictor import DropRecord
from repro.workloads import get_workload
from tests.test_controller import Harness


class TestConfigValidation:
    def test_valid_variants(self) -> None:
        SchedulerConfig(arbiter="fcfs").validate()
        SchedulerConfig(row_policy="close").validate()

    def test_invalid_variants(self) -> None:
        with pytest.raises(ConfigError):
            SchedulerConfig(arbiter="random").validate()
        with pytest.raises(ConfigError):
            SchedulerConfig(row_policy="adaptive").validate()


class TestFCFSArbiter:
    def test_fcfs_serves_in_strict_age_order(self) -> None:
        # Open row 1; a row-2 miss arrives before a row-1 hit. FR-FCFS
        # serves the younger hit first; FCFS must switch to row 2 first,
        # then reopen row 1 (3 activations total instead of 2).
        def run(arbiter: str) -> int:
            h = Harness(SchedulerConfig(arbiter=arbiter))
            h.inject(0, bank=0, row=1, col=0)
            h.inject(5, bank=0, row=2, col=0)
            h.inject(6, bank=0, row=1, col=1)
            h.run()
            return h.channel.stats.activations

        assert run("frfcfs") == 2
        assert run("fcfs") == 3

    def test_fcfs_loses_row_locality_on_interleaved_traffic(self) -> None:
        def run(arbiter: str) -> float:
            h = Harness(SchedulerConfig(arbiter=arbiter))
            # Two interleaved row streams: hits exist but arrive out of
            # age order.
            for i in range(12):
                h.inject(2.0 * i, bank=0, row=1 + i % 2, col=i // 2)
            h.run()
            return h.channel.stats.avg_rbl

        assert run("frfcfs") >= run("fcfs")


class TestCloseRowPolicy:
    def test_idle_banks_are_precharged(self) -> None:
        h = Harness(SchedulerConfig(row_policy="close"))
        h.inject(0, bank=0, row=1, col=0)
        h.run()
        assert not h.channel.banks[0].is_open
        assert h.channel.stats.precharges >= 1

    def test_open_policy_keeps_row_open(self) -> None:
        h = Harness(SchedulerConfig())
        h.inject(0, bank=0, row=1, col=0)
        h.run()
        assert h.channel.banks[0].is_open

    def test_close_row_hurts_late_hits(self) -> None:
        # A second same-row request arriving later re-activates under
        # close-row but hits the still-open row under open-row.
        def run(policy: str) -> int:
            h = Harness(SchedulerConfig(row_policy=policy))
            h.inject(0, bank=0, row=1, col=0)
            h.inject(300, bank=0, row=1, col=1)
            h.run()
            return h.channel.stats.activations

        assert run("open") == 1
        assert run("close") == 2


class TestReuseAwareErrorModel:
    def _drops(self, wl, chain: bool) -> list[DropRecord]:
        spec = wl.space.spec("img")
        drops = [
            DropRecord(rid=0, addr=spec.base, tag=None,
                       donor_line_addr=(spec.base + 128) // 128,
                       time=0.0, channel=0)
        ]
        if chain:
            # Second drop's donor is the line approximated first.
            drops.append(
                DropRecord(rid=1, addr=spec.base + 256, tag=None,
                           donor_line_addr=spec.base // 128,
                           time=1.0, channel=0)
            )
        return drops

    def test_no_drops_zero_error(self) -> None:
        wl = get_workload("meanfilter", scale=0.12)
        assert measure_application_error_with_reuse(wl, []) == 0.0

    def test_chained_donor_propagates(self) -> None:
        wl = get_workload("meanfilter", scale=0.12)
        drops = self._drops(wl, chain=True)
        from repro.approx import (
            build_perturbed_inputs,
            build_perturbed_inputs_with_reuse,
        )

        simple = build_perturbed_inputs(wl.space, wl.arrays, drops)
        reuse = build_perturbed_inputs_with_reuse(
            wl.space, wl.arrays, drops
        )
        # Under reuse, drop 2 copies drop 1's *approximated* values
        # (which equal the original line at base+128).
        np.testing.assert_array_equal(
            reuse["img"].ravel()[64:96], wl.arrays["img"].ravel()[32:64]
        )
        # The simple model copies the pristine line at base instead.
        np.testing.assert_array_equal(
            simple["img"].ravel()[64:96], wl.arrays["img"].ravel()[0:32]
        )

    def test_models_agree_on_smooth_data(self) -> None:
        # Paper footnote 2: the two models give similar application
        # errors in practice.
        wl = get_workload("meanfilter", scale=0.12)
        spec = wl.space.spec("img")
        drops = [
            DropRecord(rid=i, addr=spec.base + i * 128, tag=None,
                       donor_line_addr=(spec.base + (i + 1) * 128) // 128,
                       time=float(i), channel=0)
            for i in range(10)
        ]
        simple = measure_application_error(wl, drops)
        reuse = measure_application_error_with_reuse(wl, drops)
        assert simple > 0 and reuse > 0
        assert abs(simple - reuse) < 0.05
