"""Unit tests for SimReport metrics and normalization helpers."""

from collections import Counter

import pytest

from repro.config import gddr5_energy
from repro.dram.energy import EnergyBreakdown
from repro.dram.stats import ChannelStats
from repro.sim.report import L2Summary, SimReport


def make_report(
    *,
    acts: int = 10,
    reads: int = 40,
    writes: int = 10,
    dropped: int = 5,
    arrived_reads: int = 45,
    elapsed: float = 1000.0,
    instructions: int = 5000,
) -> SimReport:
    stats = ChannelStats()
    stats.activations = acts
    stats.reads_served = reads
    stats.writes_served = writes
    stats.requests_dropped = dropped
    stats.reads_arrived = arrived_reads
    stats.rbl_histogram = Counter({5: acts})
    stats.bus.add(0, 100)
    return SimReport(
        workload="T",
        scheme="S",
        elapsed_mem_cycles=elapsed,
        elapsed_core_cycles=elapsed * 1.515,
        total_instructions=instructions,
        channel_stats=[stats],
        drops=[],
        l2=L2Summary(hits=30, misses=70),
        energy=EnergyBreakdown(
            row_nj=acts * gddr5_energy().e_act_nj,
            access_nj=10.0,
            background_nj=5.0,
        ),
        energy_params=gddr5_energy(),
    )


class TestDerivedMetrics:
    def test_ipc(self) -> None:
        r = make_report()
        assert r.ipc == pytest.approx(5000 / 1515)

    def test_counters(self) -> None:
        r = make_report()
        assert r.activations == 10
        assert r.requests_served == 50
        assert r.requests_dropped == 5
        assert r.reads_arrived == 45
        assert r.avg_rbl == pytest.approx(5.0)
        assert r.coverage == pytest.approx(5 / 45)

    def test_bwutil(self) -> None:
        r = make_report()
        assert r.bwutil == pytest.approx(0.1)

    def test_l2_hit_rate(self) -> None:
        assert make_report().l2.hit_rate == pytest.approx(0.3)
        assert L2Summary().hit_rate == 0.0

    def test_zero_guards(self) -> None:
        r = make_report(acts=0, reads=0, writes=0, dropped=0,
                        arrived_reads=0, elapsed=0.0, instructions=0)
        assert r.ipc == 0.0
        assert r.avg_rbl == 0.0
        assert r.coverage == 0.0
        assert r.bwutil == 0.0


class TestNormalization:
    def test_relative_metrics(self) -> None:
        base = make_report(acts=20)
        run = make_report(acts=10)
        assert run.normalized_activations(base) == pytest.approx(0.5)
        assert run.normalized_row_energy(base) == pytest.approx(0.5)
        assert run.normalized_ipc(base) == pytest.approx(1.0)

    def test_degenerate_baseline(self) -> None:
        base = make_report(acts=0, instructions=0)
        run = make_report()
        assert run.normalized_row_energy(base) == 1.0
        assert run.normalized_ipc(base) == 1.0
        assert run.normalized_activations(base) == 1.0


class TestSummary:
    def test_summary_contains_key_metrics(self) -> None:
        r = make_report()
        text = r.summary()
        assert "workload=T scheme=S" in text
        assert "IPC" in text and "activations" in text
        assert "app error" not in text
        r.application_error = 0.07
        assert "app error" in r.summary()
