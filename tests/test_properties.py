"""End-to-end property tests: invariants of full simulations.

These drive the whole system (frontend -> L2 -> controller -> DRAM)
with randomized small workload shapes and check conservation laws, the
coverage bound, determinism, and — via the independent TimingChecker —
that every DRAM command stream the scheduler emits is protocol-legal.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    AMSConfig,
    AMSMode,
    DMSConfig,
    DMSMode,
    GPUConfig,
    SchedulerConfig,
)
from repro.dram import TimingChecker
from repro.sim.system import GPUSystem
from repro.telemetry import MetricsHub
from repro.workloads.layout import AddressSpace
from repro.workloads.traces import row_visit_streams


def build_streams(
    *,
    n_warps: int,
    lines_per_visit: int,
    visits: int,
    skew: float,
    approximable: bool,
    write_component: bool,
    seed: int,
    config: GPUConfig,
):
    space = AddressSpace()
    data = np.zeros(98304, dtype=np.float32)  # 384 KB
    space.add("X", data, approximable=approximable)
    streams = row_visit_streams(
        space, "X", config.mapping,
        n_warps=n_warps,
        lines_per_visit=lines_per_visit,
        visits_per_row=visits,
        skew_cycles=skew if visits > 1 else 0.0,
        compute=30.0,
        shuffle_seed=seed,
    )
    if write_component:
        streams += row_visit_streams(
            space, "X", config.mapping,
            n_warps=2, lines_per_visit=1, visits_per_row=1,
            line_offset=8, compute=30.0, write=True,
        )
    return streams


scheduler_strategy = st.sampled_from(
    [
        SchedulerConfig(),
        SchedulerConfig(
            dms=DMSConfig(mode=DMSMode.STATIC, static_delay=256)
        ),
        SchedulerConfig(
            dms=DMSConfig(mode=DMSMode.DYNAMIC, window_cycles=512,
                          windows_per_phase=8)
        ),
        SchedulerConfig(
            ams=AMSConfig(mode=AMSMode.STATIC, static_th_rbl=8,
                          coverage_limit=0.10, warmup_fills=16)
        ),
        SchedulerConfig(
            dms=DMSConfig(mode=DMSMode.STATIC, static_delay=128),
            ams=AMSConfig(mode=AMSMode.DYNAMIC, coverage_limit=0.10,
                          window_cycles=512, warmup_fills=16),
        ),
    ]
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheduler=scheduler_strategy,
    n_warps=st.sampled_from([4, 10, 24]),
    lines_per_visit=st.integers(min_value=1, max_value=4),
    visits=st.integers(min_value=1, max_value=2),
    skew=st.sampled_from([200.0, 900.0]),
    approximable=st.booleans(),
    write_component=st.booleans(),
    seed=st.integers(min_value=0, max_value=3),
)
def test_full_system_invariants(
    scheduler, n_warps, lines_per_visit, visits, skew, approximable,
    write_component, seed,
) -> None:
    system = GPUSystem(scheduler=scheduler, log_commands=True)
    streams = build_streams(
        n_warps=n_warps,
        lines_per_visit=lines_per_visit,
        visits=visits,
        skew=skew,
        approximable=approximable,
        write_component=write_component,
        seed=seed,
        config=system.config,
    )
    report = system.run(streams, workload_name="prop")

    # Conservation: every arriving request is served or dropped.
    arrived = sum(
        s.reads_arrived + s.writes_arrived for s in report.channel_stats
    )
    assert report.requests_served + report.requests_dropped == arrived

    # RBL accounting: the histogram partitions all served requests.
    hist = report.rbl_histogram
    assert sum(r * c for r, c in hist.items()) == report.requests_served
    assert sum(hist.values()) == report.activations + sum(
        1 for s in report.channel_stats for _ in ()
    )

    # Coverage never exceeds the configured bound.
    if scheduler.ams.mode is not AMSMode.OFF:
        assert report.coverage <= scheduler.ams.coverage_limit + 1e-9
    else:
        assert report.requests_dropped == 0

    # Drops only ever happen on annotated (approximable) data.
    if not approximable:
        assert report.requests_dropped == 0

    # Every emitted DRAM command stream is protocol-legal.
    for channel in system.channels:
        checker = TimingChecker(channel.timings)
        checker.check_stream(channel.command_log)

    # Energy accounting is consistent with the counters.
    expected_row = report.activations * system.config.energy.e_act_nj
    assert report.row_energy_nj == pytest.approx(expected_row)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheduler=scheduler_strategy,
    n_warps=st.sampled_from([4, 16]),
    lines_per_visit=st.integers(min_value=1, max_value=4),
    window_cycles=st.sampled_from([256, 512, 1024]),
    seed=st.integers(min_value=0, max_value=3),
)
def test_telemetry_window_invariants(
    scheduler, n_warps, lines_per_visit, window_cycles, seed,
) -> None:
    """Per-window telemetry is consistent with the aggregate report.

    The windowed series must tile the run (contiguous, ordered windows),
    its busy cycles must sum *exactly* to the channels' aggregate bus
    occupancy, and every recorded mechanism trajectory must stay inside
    the paper's bounds: Dyn-DMS X in [0, 2048] in multiples of 128,
    Dyn-AMS Th_RBL in [1, 8], cumulative coverage within the 10% cap.
    """
    hub = MetricsHub(window_cycles=window_cycles)
    system = GPUSystem(scheduler=scheduler, telemetry=hub)
    streams = build_streams(
        n_warps=n_warps,
        lines_per_visit=lines_per_visit,
        visits=1,
        skew=0.0,
        approximable=True,
        write_component=False,
        seed=seed,
        config=system.config,
    )
    report = system.run(streams, workload_name="prop-telemetry")
    timeline = report.timeline
    assert timeline is not None and len(timeline) > 0
    n_channels = len(system.channels)

    # Windows tile the run: ordered indices, contiguous spans, and the
    # last window covers the end of the simulation.
    prev_end = 0.0
    for i, sample in enumerate(timeline):
        assert sample.index == i
        assert sample.start == prev_end
        assert sample.end > sample.start
        prev_end = sample.end
    assert prev_end >= report.elapsed_mem_cycles

    # Busy-cycle conservation: per-window busy sums to the aggregate
    # bus occupancy (windowing only re-associates the float additions,
    # so the tolerance covers rounding alone), and hence to
    # report.bwutil scaled back up.
    total_busy = sum(ch.stats.bus.total_busy for ch in system.channels)
    assert sum(s.busy_cycles for s in timeline) == pytest.approx(
        total_busy, abs=1e-6
    )
    assert report.bwutil == pytest.approx(
        total_busy / (report.elapsed_mem_cycles * n_channels)
    )

    # Windowed counter deltas sum back to the aggregate counters.
    assert sum(s.activations for s in timeline) == report.activations
    assert sum(s.drops for s in timeline) == report.requests_dropped
    assert (
        sum(s.requests_served for s in timeline) == report.requests_served
    )

    for sample in timeline:
        assert len(sample.dms_x) == n_channels
        assert len(sample.th_rbl) == n_channels
        for x in sample.dms_x:
            assert 0 <= x <= 2048
            assert x % 128 == 0
        for th in sample.th_rbl:
            assert 1 <= th <= 8
        assert 0.0 <= sample.bwutil <= 1.0 + 1e-9
        if scheduler.ams.mode is not AMSMode.OFF:
            assert (
                sample.coverage <= scheduler.ams.coverage_limit + 1e-9
            )
        else:
            assert sample.coverage == 0.0

    # Final-window trajectory values match the report's final state.
    assert timeline.samples[-1].dms_x == list(report.final_dms_delays)
    assert timeline.samples[-1].th_rbl == list(report.final_th_rbls)


def test_determinism_across_identical_runs() -> None:
    def once() -> tuple:
        system = GPUSystem(
            scheduler=SchedulerConfig(
                dms=DMSConfig(mode=DMSMode.DYNAMIC, window_cycles=512,
                              windows_per_phase=8),
                ams=AMSConfig(mode=AMSMode.DYNAMIC, coverage_limit=0.10,
                              window_cycles=512, warmup_fills=16),
            )
        )
        streams = build_streams(
            n_warps=16, lines_per_visit=2, visits=2, skew=400.0,
            approximable=True, write_component=True, seed=1,
            config=system.config,
        )
        r = system.run(streams, workload_name="det")
        return (
            r.elapsed_mem_cycles,
            r.activations,
            r.requests_served,
            r.requests_dropped,
            # rids come from a process-global counter; compare the
            # physically meaningful identity of each drop instead.
            tuple(sorted((d.addr, d.time, d.donor_line_addr or -1)
                         for d in r.drops)),
        )

    assert once() == once()
