"""DRAM device-model registry, invariant, and end-to-end tests.

The validation invariants (tRC >= tRAS + tRP, positive per-operation
energies, positive clock) are checked two ways: directly on every
registered preset, and property-based via Hypothesis on synthesized
models, so :meth:`DeviceModel.validate` provably *enforces* them rather
than merely happening to hold for the shipped presets.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.energy import DRAMEnergyParams
from repro.config.gpu import GPUConfig
from repro.config.timing import DRAMTimings
from repro.dram.devices import (
    DeviceModel,
    device_names,
    get_device,
    gddr5_device,
    register_device,
)
from repro.errors import ConfigError

PRESETS = device_names()


class TestPresets:
    def test_expected_presets_registered(self) -> None:
        assert {"gddr5", "gddr5x", "hbm", "lpddr4"} <= set(PRESETS)

    @pytest.mark.parametrize("name", PRESETS)
    def test_every_preset_validates(self, name: str) -> None:
        get_device(name).validate()

    @pytest.mark.parametrize("name", PRESETS)
    def test_timing_invariants(self, name: str) -> None:
        tm = get_device(name).timings
        assert tm.tRC >= tm.tRAS + tm.tRP
        assert tm.tRAS >= tm.tRCD
        assert tm.tREFI > tm.tRFC

    @pytest.mark.parametrize("name", PRESETS)
    def test_energy_and_clock_invariants(self, name: str) -> None:
        device = get_device(name)
        e = device.energy
        assert e.e_act_nj > 0 and e.e_rd_nj > 0 and e.e_wr_nj > 0
        assert e.background_mw >= 0
        assert 0.0 < e.baseline_row_energy_fraction < 1.0
        assert device.mem_clock_mhz > 0
        assert device.row_cycle_ns > 0
        assert device.activation_energy_nj == e.e_act_nj

    def test_gddr5_matches_package_defaults(self) -> None:
        """The baseline preset must be the Table I defaults bit for bit —
        the differential tests lean on this."""
        device = get_device("gddr5")
        assert device.timings == DRAMTimings()
        assert device.energy == DRAMEnergyParams()
        assert device.mem_clock_mhz == GPUConfig().mem_clock_mhz
        assert device.apply(GPUConfig()) == GPUConfig()

    def test_apply_preserves_non_device_fields(self) -> None:
        base = dataclasses.replace(
            GPUConfig(), num_sms=4, pending_queue_size=32
        )
        applied = get_device("hbm").apply(base)
        assert applied.num_sms == 4
        assert applied.pending_queue_size == 32
        assert applied.timings == get_device("hbm").timings
        assert applied.energy == get_device("hbm").energy
        assert applied.mem_clock_mhz == get_device("hbm").mem_clock_mhz

    def test_apply_without_config_uses_defaults(self) -> None:
        applied = get_device("lpddr4").apply()
        assert applied.num_sms == GPUConfig().num_sms
        assert applied.timings == get_device("lpddr4").timings


class TestRegistry:
    def test_unknown_device_raises_and_lists_names(self) -> None:
        with pytest.raises(ConfigError, match="gddr5"):
            get_device("ddr3")

    def test_register_rejects_invalid_model(self) -> None:
        bad = DeviceModel(
            name="broken",
            timings=DRAMTimings(tRC=10),  # < tRAS + tRP
            energy=DRAMEnergyParams(),
            mem_clock_mhz=1000.0,
        )
        with pytest.raises(ConfigError):
            register_device(bad)
        assert "broken" not in device_names()

    def test_register_rejects_nonpositive_clock(self) -> None:
        bad = dataclasses.replace(gddr5_device(), name="x", mem_clock_mhz=0.0)
        with pytest.raises(ConfigError, match="mem_clock_mhz"):
            register_device(bad)

    def test_register_and_lookup_roundtrip(self) -> None:
        from repro.dram import devices as devices_mod

        custom = dataclasses.replace(gddr5_device(), name="test-custom")
        try:
            assert register_device(custom) is custom
            assert get_device("test-custom") is custom
            assert "test-custom" in device_names()
        finally:
            devices_mod._DEVICES.pop("test-custom", None)


class TestValidateEnforcesInvariants:
    @settings(max_examples=80, deadline=None)
    @given(
        tras=st.integers(min_value=1, max_value=64),
        trp=st.integers(min_value=1, max_value=64),
        trc=st.integers(min_value=1, max_value=160),
    )
    def test_row_cycle_inequality(self, tras: int, trp: int, trc: int) -> None:
        timings = DRAMTimings(tRCD=1, tRP=trp, tRC=trc, tRAS=tras)
        device = DeviceModel(
            name="hyp", timings=timings, energy=DRAMEnergyParams(),
            mem_clock_mhz=924.0,
        )
        if trc >= tras + trp:
            device.validate()
        else:
            with pytest.raises(ConfigError):
                device.validate()

    @settings(max_examples=80, deadline=None)
    @given(
        e_act=st.floats(
            min_value=-2.0, max_value=5.0,
            allow_nan=False, allow_infinity=False,
        ),
        clock=st.floats(
            min_value=-100.0, max_value=2000.0,
            allow_nan=False, allow_infinity=False,
        ),
    )
    def test_positive_energy_and_clock(self, e_act: float,
                                       clock: float) -> None:
        device = DeviceModel(
            name="hyp",
            timings=DRAMTimings(),
            energy=dataclasses.replace(DRAMEnergyParams(), e_act_nj=e_act),
            mem_clock_mhz=clock,
        )
        if e_act > 0 and clock > 0:
            device.validate()
        else:
            with pytest.raises(ConfigError):
                device.validate()


@pytest.mark.parametrize("name", PRESETS)
def test_preset_simulates_end_to_end(name: str) -> None:
    """Every preset must carry a tiny simulation to completion with a
    sane report — the local twin of the CI device smoke matrix."""
    from repro.dram.request import reset_request_ids
    from repro.sim.spec import SimSpec
    from repro.sim.system import simulate_spec
    from repro.workloads.registry import get_workload

    reset_request_ids()
    workload = get_workload("synthetic", scale=0.125, seed=3)
    report = simulate_spec(workload, SimSpec(device=name))
    assert report.activations > 0
    assert report.ipc > 0
    assert report.row_energy_nj > 0
