"""Chaos-mode end-to-end tests of the resilient service tier.

Every recovery path of the daemon is exercised against a *real*
in-process daemon with a *real* process-based worker tier, using the
deterministic FaultPlan grammar (``kind@cell[/stride][:seconds][xN]``)
threaded into the tier's worker processes:

1. **Kill a worker mid-job** — the job retries on a fresh worker and
   its report is byte-identical to an undisturbed run; neighbouring
   jobs and the daemon itself never notice.
2. **Chaos load test** — with ``exit@0/5`` (every 5th dispatch kills
   its worker) a stream of jobs completes 100%, with one respawn per
   injected kill and zero daemon restarts.
3. **Circuit breaker** — a poison spec (kills its worker on every
   dispatch) trips the breaker within ``threshold`` submissions; the
   next submission is a structured 422 that never reaches the tier.
4. **Crash-safe SSE** — a reconnect with ``Last-Event-ID`` replays
   exactly the missed events, and a reconnect past the bounded ring's
   tail gets an explicit ``gap`` event.
5. **Graceful degradation** — with the tier down, exact cache hits
   serve normally, a family-mate serves its last completed report
   labeled ``degraded``, and cold specs get an honest 503.
6. **Load shedding** — with every worker busy and the queue past its
   watermark, submissions shed with 429 + Retry-After.
"""

from __future__ import annotations

import concurrent.futures
import json
import time

import pytest

from repro.errors import CircuitOpenError, ServiceBusyError
from repro.harness.cache import ResultCache
from repro.harness.faults import FaultPlan
from repro.harness.schemes import scheme_def
from repro.service.client import ServiceClient
from repro.service.server import ServiceDaemon
from repro.sim.spec import SimSpec
from repro.telemetry.hub import (
    SERVICE_SHED,
    SERVICE_STALE_SERVED,
    SERVICE_TIER_RESPAWNS,
)

SCALE = 0.05
WAIT = 180.0


def _daemon(tmp_path, **kwargs) -> ServiceDaemon:
    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault(
        "cache", ResultCache(tmp_path / "cache", enabled=True)
    )
    kwargs.setdefault("journal_path", tmp_path / "journal.jsonl")
    kwargs.setdefault("retry_backoff", 0.01)
    kwargs.setdefault("verbose", False)
    return ServiceDaemon(**kwargs)


def _spec(scheme: str = "dyn-dms", **kwargs) -> SimSpec:
    return SimSpec(scheduler=scheme_def(scheme).build(), **kwargs)


# ----------------------------------------------------------------------
# 1 + 2: worker kills, retries, and the chaos load test
# ----------------------------------------------------------------------
def test_killed_worker_fails_only_its_own_job(tmp_path):
    """Chaos kills the worker of dispatch 0 mid-job; that job retries
    on a fresh worker and completes byte-identically, the concurrent
    neighbour job and its SSE watcher never notice, and the daemon
    serves throughout."""
    reference = _daemon(
        tmp_path / "ref", cache=ResultCache(tmp_path / "ref" / "cache")
    )
    reference.start_in_thread()
    try:
        ref_client = ServiceClient(port=reference.port)
        job = ref_client.submit("synthetic", spec=_spec(), scale=SCALE)
        undisturbed = json.dumps(
            ref_client.wait(job["id"], timeout=WAIT)["result"],
            sort_keys=True,
        )
    finally:
        reference.stop()

    daemon = _daemon(tmp_path, chaos=FaultPlan.parse("exit@0"))
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        victim = client.submit("synthetic", spec=_spec(), scale=SCALE)
        neighbour = client.submit(
            "synthetic", spec=_spec("frfcfs"), scale=SCALE
        )
        watched = list(client.events(neighbour["id"], timeout=WAIT))

        victim_doc = client.wait(victim["id"], timeout=WAIT)
        neighbour_doc = client.wait(neighbour["id"], timeout=WAIT)

        assert victim_doc["state"] == "done", victim_doc.get("error")
        assert victim_doc["attempts"] == 2  # one kill, one clean retry
        assert json.dumps(
            victim_doc["result"], sort_keys=True
        ) == undisturbed
        assert neighbour_doc["state"] == "done"
        assert neighbour_doc["attempts"] == 1  # never disturbed
        assert watched[-1][0] == "done"

        counters = daemon.hub.snapshot()["counters"]
        assert counters.get(SERVICE_TIER_RESPAWNS, 0) == 1
        health = client.healthz()
        assert health["ok"] is True
        assert health["tier"]["state"] == "ok"
        assert health["tier"]["respawns"] == 1
        assert all(w["alive"] for w in health["tier"]["workers"])
    finally:
        daemon.stop()


def test_chaos_load_every_5th_dispatch_killed(tmp_path):
    """15 concurrent jobs under ``exit@0/5`` (dispatches 0, 5, 10 kill
    their workers): 100% completion, one respawn per kill, the daemon
    never restarts, and every report matches a clean re-run from the
    shared cache."""
    daemon = _daemon(
        tmp_path, workers=4, chaos=FaultPlan.parse("exit@0/5"),
        retries=1, queue_size=64,
    )
    daemon.start_in_thread()
    started_at = daemon._started_at
    try:
        def submit_and_wait(seed):
            client = ServiceClient(port=daemon.port)
            job = client.submit(
                "synthetic", spec=_spec(), scale=SCALE, seed=seed,
                retry_busy=5,
            )
            doc = client.wait(job["id"], timeout=WAIT)
            return seed, doc

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = dict(pool.map(submit_and_wait, range(15)))

        done = [doc for doc in results.values()
                if doc["state"] == "done"]
        assert len(done) == 15  # >= 99% acceptance: here, all of them
        assert daemon._started_at == started_at  # no daemon restart
        counters = daemon.hub.snapshot()["counters"]
        assert counters.get(SERVICE_TIER_RESPAWNS, 0) == 3

        # Every report is byte-identical to an undisturbed run: the
        # cache now holds the chaos run's reports, so a clean daemon
        # re-serving them must agree with a fresh simulation.
        clean = _daemon(
            tmp_path / "clean",
            cache=ResultCache(tmp_path / "clean" / "cache"),
            workers=4,
        )
        clean.start_in_thread()
        try:
            client = ServiceClient(port=clean.port)

            def rerun(seed):
                job = client.submit(
                    "synthetic", spec=_spec(), scale=SCALE, seed=seed,
                    retry_busy=5,
                )
                return seed, client.wait(job["id"], timeout=WAIT)

            with concurrent.futures.ThreadPoolExecutor(4) as pool:
                fresh = dict(pool.map(rerun, range(15)))
            for seed in range(15):
                assert json.dumps(
                    results[seed]["result"], sort_keys=True
                ) == json.dumps(
                    fresh[seed]["result"], sort_keys=True
                ), f"seed {seed} diverged after chaos retry"
        finally:
            clean.stop()
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# 3: circuit breaker end to end
# ----------------------------------------------------------------------
def test_breaker_quarantines_poison_spec_within_three_failures(tmp_path):
    daemon = _daemon(
        tmp_path, workers=1,
        chaos=FaultPlan.parse("exit@0/1x99"),  # every dispatch dies
        retries=0, breaker_threshold=3, breaker_cooldown=300.0,
    )
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        for _ in range(3):
            job = client.submit("synthetic", spec=_spec(), scale=SCALE)
            doc = client.wait(job["id"], timeout=WAIT)
            assert doc["state"] == "failed"
            assert doc["error"]["error_type"] == "WorkerCrashError"

        with pytest.raises(CircuitOpenError) as exc_info:
            client.submit("synthetic", spec=_spec(), scale=SCALE)
        assert exc_info.value.retry_after > 0
        assert exc_info.value.last_error["error_type"] == \
            "WorkerCrashError"

        health = client.healthz()
        assert health["breaker_open_keys"] == 1
        stats = client.stats()
        assert stats["breaker"]["opened_total"] == 1
        assert stats["breaker"]["rejected_total"] == 1
        # A *different* spec still executes: the quarantine is per key.
        other = client.submit(
            "synthetic", spec=_spec("frfcfs"), scale=SCALE
        )
        # (dispatch ordinal 3 is also chaos-killed, retries=0 -> failed;
        # what matters is that it was admitted, not 422-rejected.)
        assert client.wait(other["id"], timeout=WAIT)["state"] in (
            "done", "failed"
        )
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# 4: crash-safe SSE reconnect
# ----------------------------------------------------------------------
def test_sse_reconnect_with_last_event_id_replays_the_tail(tmp_path):
    daemon = _daemon(tmp_path)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        job = client.submit(
            "synthetic", spec=_spec(telemetry=True), scale=SCALE
        )
        client.wait(job["id"], timeout=WAIT)

        # First watcher drains the whole ring (windows + states +
        # terminal), establishing what a complete stream looks like.
        full = list(client.events(job["id"], timeout=WAIT))
        ids = [data["event_id"] for _, data in full
               if isinstance(data, dict)]
        assert ids == sorted(ids)  # monotonically increasing
        assert len(ids) == len(set(ids))  # no duplicates
        assert full[-1][0] == "done"
        assert len(full) >= 3  # at least one window + states + done

        # A "dropped" watcher that saw the first two events reconnects
        # with Last-Event-ID and receives exactly the rest.
        resume_from = ids[1]
        tail = list(client.events(
            job["id"], timeout=WAIT, last_event_id=resume_from
        ))
        tail_ids = [data["event_id"] for _, data in tail
                    if isinstance(data, dict)]
        assert tail_ids == [i for i in ids if i > resume_from]

        # A reconnect that saw everything gets an empty, clean close.
        nothing = list(client.events(
            job["id"], timeout=WAIT, last_event_id=ids[-1]
        ))
        assert nothing == []
    finally:
        daemon.stop()


def test_sse_reconnect_past_the_ring_tail_reports_a_gap(tmp_path):
    daemon = _daemon(tmp_path, sse_ring_events=4)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        job = client.submit(
            "synthetic", spec=_spec(telemetry=True), scale=SCALE
        )
        client.wait(job["id"], timeout=WAIT)
        full = list(client.events(job["id"], timeout=WAIT))
        last_id = max(
            data["event_id"] for _, data in full
            if isinstance(data, dict)
        )
        assert last_id > 4  # the run outgrew the 4-slot ring
        replay = list(client.events(
            job["id"], timeout=WAIT, last_event_id=1
        ))
        assert replay[0][0] == "gap"
        assert replay[0][1]["missed"] > 0
        assert replay[-1][0] == "done"
    finally:
        daemon.stop()


def test_one_running_job_fans_out_to_many_watchers(tmp_path):
    daemon = _daemon(tmp_path)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        job = client.submit(
            "synthetic", spec=_spec(telemetry=True), scale=SCALE
        )

        def watch(_):
            watcher = ServiceClient(port=daemon.port)
            return [
                (event, data.get("event_id"))
                for event, data in watcher.events(
                    job["id"], timeout=WAIT
                )
                if isinstance(data, dict)
            ]

        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            streams = list(pool.map(watch, range(4)))
        # Every watcher read the same ring: same ids, same order, one
        # terminal frame each — N watchers, one event history.
        assert all(s == streams[0] for s in streams[1:])
        assert streams[0][-1][0] == "done"
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# 5: graceful degradation
# ----------------------------------------------------------------------
def test_degraded_mode_serves_stale_with_label(tmp_path):
    daemon = _daemon(tmp_path)
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        spec = _spec()
        job = client.submit("synthetic", spec=spec, scale=SCALE)
        client.wait(job["id"], timeout=WAIT)

        daemon.tier.pause()  # the execution tier goes down

        # Exact same spec: a clean cache hit, not degraded.
        exact = client.submit("synthetic", spec=spec, scale=SCALE)
        assert exact["state"] == "done"
        assert exact["degraded"] is False

        # A family-mate (same experiment, one knob differs) gets the
        # last completed relative's report, labeled stale.
        mate = _spec(record_activations=False)
        stale = client.submit("synthetic", spec=mate, scale=SCALE)
        assert stale["state"] == "done"
        assert stale["degraded"] is True
        assert stale["outcome"] == "degraded"
        assert stale["result"] == client.job(job["id"])["result"]

        # A spec with no cached relative is an honest 503.
        with pytest.raises(ServiceBusyError):
            client.submit("synthetic", spec=spec, scale=SCALE, seed=99)

        counters = daemon.hub.snapshot()["counters"]
        assert counters.get(SERVICE_STALE_SERVED, 0) == 1
        assert client.healthz()["tier"]["state"] == "down"

        daemon.tier.resume()  # tier back: cold specs execute again
        cold = client.submit(
            "synthetic", spec=spec, scale=SCALE, seed=99
        )
        assert client.wait(cold["id"], timeout=WAIT)["state"] == "done"
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# 6: load shedding
# ----------------------------------------------------------------------
def test_saturated_tier_sheds_with_retry_after(tmp_path):
    daemon = _daemon(
        tmp_path, workers=1, queue_size=4, shed_watermark=0.5,
        chaos=FaultPlan.parse("hang@0:3"),  # dispatch 0 occupies the
        retries=0,                          # lone worker for 3 s
    )
    daemon.start_in_thread()
    try:
        client = ServiceClient(port=daemon.port)
        hung = client.submit("synthetic", spec=_spec(), scale=SCALE)
        # Wait until the hung job actually occupies the worker.
        for _ in range(200):
            if client.job(hung["id"])["state"] == "running":
                break
            time.sleep(0.02)
        # Fill the queue past the watermark (0.5 * 4 = 2 entries).
        queued = [
            client.submit(
                "synthetic", spec=_spec(), scale=SCALE, seed=100 + i
            )
            for i in range(2)
        ]
        with pytest.raises(ServiceBusyError) as exc_info:
            client.submit(
                "synthetic", spec=_spec(), scale=SCALE, seed=999
            )
        assert exc_info.value.retry_after >= 1.0
        counters = daemon.hub.snapshot()["counters"]
        assert counters.get(SERVICE_SHED, 0) >= 1
        # The shed was advisory, not fatal: everything queued finishes.
        for job in (hung, *queued):
            assert client.wait(job["id"], timeout=WAIT)["state"] == \
                "done"
    finally:
        daemon.stop()
