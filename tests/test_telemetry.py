"""Telemetry subsystem tests.

The headline guarantee is *differential*: running the same cell with
telemetry on and off produces field-identical ``SimReport``s apart from
the opt-in ``timeline`` — observability never perturbs simulation.
The rest covers the hub contract, the timeline round-trip through the
persistent result cache, and both exporters.
"""

import json

import pytest

from repro.config.scheduler import (
    AMSConfig,
    AMSMode,
    DMSConfig,
    DMSMode,
    SchedulerConfig,
)
from repro.dram.request import reset_request_ids
from repro.harness.cache import ResultCache, cache_key
from repro.harness.cli import main as cli_main
from repro.sim.report import SimReport
from repro.sim.system import GPUSystem, simulate
from repro.telemetry import (
    NULL_HUB,
    MetricsHub,
    Timeline,
    system_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads.registry import get_workload

DYN_COMBO = SchedulerConfig(
    dms=DMSConfig(mode=DMSMode.DYNAMIC, window_cycles=512,
                  windows_per_phase=8),
    ams=AMSConfig(mode=AMSMode.DYNAMIC, coverage_limit=0.10,
                  window_cycles=512, warmup_fills=16),
)


def traced_run(
    scheduler: SchedulerConfig,
    *,
    telemetry: bool,
    log_commands: bool = False,
    app: str = "synthetic",
    scale: float = 0.2,
    seed: int = 5,
):
    """One deterministic cell, optionally observed."""
    reset_request_ids()
    workload = get_workload(app, scale=scale, seed=seed)
    hub = MetricsHub(window_cycles=512) if telemetry else None
    system = GPUSystem(
        scheduler=scheduler, telemetry=hub, log_commands=log_commands
    )
    report = system.run(
        workload.warp_streams(system.config), workload_name=workload.name
    )
    return report, system, hub


class TestDifferential:
    """Observability must never change what is observed."""

    @pytest.mark.parametrize(
        "scheduler",
        [SchedulerConfig(), DYN_COMBO],
        ids=["baseline", "dyn-combo"],
    )
    def test_reports_field_identical(self, scheduler) -> None:
        on, _, _ = traced_run(scheduler, telemetry=True)
        off, _, _ = traced_run(scheduler, telemetry=False)
        assert on.timeline is not None and len(on.timeline) > 0
        assert off.timeline is None
        d_on, d_off = on.to_dict(), off.to_dict()
        assert d_on.pop("timeline") is not None
        assert d_off.pop("timeline") is None
        assert d_on == d_off

    def test_command_log_identical_under_telemetry(self) -> None:
        on, sys_on, _ = traced_run(
            DYN_COMBO, telemetry=True, log_commands=True
        )
        off, sys_off, _ = traced_run(
            DYN_COMBO, telemetry=False, log_commands=True
        )
        for ch_on, ch_off in zip(sys_on.channels, sys_off.channels):
            assert ch_on.command_log == ch_off.command_log


class TestHub:
    def test_counters_and_gauges(self) -> None:
        hub = MetricsHub(window_cycles=64)
        hub.inc("a")
        hub.inc("a", 2.5)
        hub.gauge("g", 1.0)
        hub.gauge("g", 3.0)
        assert hub.counter("a") == pytest.approx(3.5)
        assert hub.counter("missing") == 0.0
        assert hub.snapshot() == {
            "counters": {"a": 3.5},
            "gauges": {"g": 3.0},
        }

    def test_invalid_window_rejected(self) -> None:
        with pytest.raises(ValueError):
            MetricsHub(window_cycles=0)

    def test_null_hub_is_inert(self) -> None:
        NULL_HUB.inc("x", 5)
        NULL_HUB.gauge("y", 1.0)
        assert not NULL_HUB.enabled
        assert NULL_HUB.counter("x") == 0.0
        assert NULL_HUB.snapshot() == {"counters": {}, "gauges": {}}

    def test_run_populates_hub(self) -> None:
        report, _, hub = traced_run(DYN_COMBO, telemetry=True)
        assert hub.timeline is report.timeline
        assert hub.counter("window.samples") == len(report.timeline)
        drops = sum(
            v for k, v in hub.counters.items() if k.endswith("ams.drops")
        )
        assert drops == report.requests_dropped


class TestTimelineRoundTrip:
    def test_report_round_trip_with_timeline(self) -> None:
        report, _, _ = traced_run(DYN_COMBO, telemetry=True)
        clone = SimReport.from_dict(report.to_dict())
        assert clone == report
        assert clone.timeline == report.timeline

    def test_timeline_none_round_trip(self) -> None:
        assert Timeline.from_dict(None) is None
        report, _, _ = traced_run(DYN_COMBO, telemetry=False)
        assert SimReport.from_dict(report.to_dict()).timeline is None

    def test_result_cache_preserves_timeline(self, tmp_path) -> None:
        report, _, _ = traced_run(DYN_COMBO, telemetry=True)
        cache = ResultCache(tmp_path, enabled=True)
        key = cache_key(
            app="synthetic", scale=0.2, seed=5, scheduler=DYN_COMBO
        )
        cache.store(key, report)
        loaded = cache.load(key)
        assert loaded == report
        assert loaded.timeline == report.timeline

    def test_timeline_trajectory_accessors(self) -> None:
        report, _, _ = traced_run(DYN_COMBO, telemetry=True)
        timeline = report.timeline
        xs = timeline.dms_x_trajectory(0)
        assert [idx for idx, _ in xs] == list(range(len(timeline)))
        assert timeline.series("bwutil") == [
            s.bwutil for s in timeline.samples
        ]


class TestExporters:
    def test_jsonl_export(self, tmp_path) -> None:
        report, _, _ = traced_run(DYN_COMBO, telemetry=True)
        path = tmp_path / "series.jsonl"
        count = write_jsonl(report.timeline, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert count == len(lines) == len(report.timeline)
        parsed = [json.loads(line) for line in lines]
        assert parsed == [s.to_dict() for s in report.timeline]

    def test_chrome_trace_export(self, tmp_path) -> None:
        report, system, _ = traced_run(
            DYN_COMBO, telemetry=True, log_commands=True
        )
        document = system_chrome_trace(
            system, drops=report.drops, timeline=report.timeline
        )
        path = tmp_path / "trace.json"
        n_events = write_chrome_trace(document, path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        events = loaded["traceEvents"]
        assert len(events) == n_events
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "i", "C", "M"}
        spans = [e for e in events if e["ph"] == "X"]
        total_commands = sum(
            len(ch.command_log) for ch in system.channels
        )
        assert len(spans) == total_commands
        for event in spans:
            assert event["ts"] >= 0 and event["dur"] > 0
            assert 0 <= event["pid"] < len(system.channels)
        drops = [e for e in events if e["ph"] == "i"]
        assert len(drops) == len(report.drops)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "timeline counter tracks missing"

    def test_chrome_trace_without_command_log(self) -> None:
        report, system, _ = traced_run(
            DYN_COMBO, telemetry=True, log_commands=False
        )
        document = system_chrome_trace(system, timeline=report.timeline)
        assert all(
            e["ph"] in ("M", "C") for e in document["traceEvents"]
        )


class TestTraceCLI:
    def test_trace_subcommand_writes_both_exports(
        self, tmp_path, capsys
    ) -> None:
        rc = cli_main(
            [
                "trace", "Dyn-DMS+Dyn-AMS", "synthetic",
                "--scale", "0.15", "--seed", "5",
                "--window", "512",
                "--out-dir", str(tmp_path),
                "--quiet",
            ]
        )
        assert rc == 0
        jsonl = list(tmp_path.glob("*.telemetry.jsonl"))
        trace = list(tmp_path.glob("*.trace.json"))
        assert len(jsonl) == 1 and len(trace) == 1
        document = json.loads(trace[0].read_text(encoding="utf-8"))
        assert document["traceEvents"]
        for line in jsonl[0].read_text(encoding="utf-8").splitlines():
            json.loads(line)
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_trace_subcommand_jsonl_only(self, tmp_path) -> None:
        rc = cli_main(
            [
                "trace", "Baseline", "synthetic",
                "--scale", "0.15", "--seed", "5",
                "--window", "512",
                "--out-dir", str(tmp_path),
                "--no-chrome", "--quiet",
            ]
        )
        assert rc == 0
        assert list(tmp_path.glob("*.telemetry.jsonl"))
        assert not list(tmp_path.glob("*.trace.json"))


def test_simulate_accepts_telemetry() -> None:
    """`simulate()` plumbs the hub through to the report timeline."""
    hub = MetricsHub(window_cycles=512)
    workload = get_workload("synthetic", scale=0.15, seed=5)
    reset_request_ids()
    report = simulate(workload, scheduler=DYN_COMBO, telemetry=hub)
    assert report.timeline is hub.timeline
    assert len(report.timeline) > 0
