"""Multi-tenant simulation tests: fairness math properties, arbiter
registry, drop-contract enforcement, determinism, and the single-tenant
equivalence guarantee.

The acceptance invariants pinned here:

* a 3-tenant mix is deterministic — serial and ``jobs=2`` runs produce
  byte-identical reports;
* AMS drops only ever land in an ``approx-batch`` tenant's stream;
* a single-tenant ``TenantMix`` report is field-identical to the plain
  run of the same workload (full passthrough at N=1);
* per-tenant slowdowns against class-scoped solo baselines are >= 1
  under contention, and the Jain index obeys its mathematical bounds.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.tenants import (
    TENANT_CLASSES,
    TenantMixSpec,
    TenantSpec,
    tenant_class_for_priority,
)
from repro.dram.request import MemoryRequest, reset_request_ids
from repro.errors import ConfigError, SimulationError
from repro.harness.fairness import jain_index, slowdown
from repro.harness.runner import Runner
from repro.harness.schemes import scheme_by_id
from repro.harness.tenants import (
    attach_slowdowns,
    fairness_table,
    scheme_for_tenant,
)
from repro.sched.policies import arbiter_names, make_arbiter
from repro.sched.tenants import TenantTracker
from repro.sim.report import SimReport
from repro.sim.spec import SimSpec
from repro.sim.system import simulate_spec
from repro.workloads.registry import get_workload
from repro.workloads.tenant_mix import TenantMix

#: Small enough that the full-mix simulations stay sub-second.
SCALE = 0.05


def three_tenant_mix(arbiter: str = "shared-frfcfs") -> TenantMixSpec:
    return TenantMixSpec(
        tenants=(
            TenantSpec(name="lat", workload="MVT",
                       tenant_class="latency", scale=SCALE),
            TenantSpec(name="bw", workload="ATAX",
                       tenant_class="bandwidth", scale=SCALE),
            TenantSpec(name="ax", workload="blackscholes",
                       tenant_class="approx-batch", scale=SCALE),
        ),
        arbiter=arbiter,
    )


def run_mix(mix: TenantMixSpec, scheme_id: str = "static-dms+static-ams"):
    reset_request_ids()
    scheme = scheme_by_id(scheme_id)
    workload = TenantMix(mix, scale=1.0, seed=7)
    return simulate_spec(workload, SimSpec(scheduler=scheme, tenants=mix))


# ----------------------------------------------------------------------
# Fairness math (pure, Hypothesis-driven)
# ----------------------------------------------------------------------
class TestFairnessMath:
    positive_lists = st.lists(
        st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=16
    )

    @settings(max_examples=200, deadline=None)
    @given(values=positive_lists)
    def test_jain_bounds(self, values) -> None:
        jain = jain_index(values)
        n = len(values)
        assert 1.0 / n - 1e-9 <= jain <= 1.0 + 1e-9

    @settings(max_examples=200, deadline=None)
    @given(values=positive_lists, seed=st.randoms())
    def test_jain_relabel_invariance(self, values, seed) -> None:
        shuffled = list(values)
        seed.shuffle(shuffled)
        assert jain_index(shuffled) == pytest.approx(jain_index(values))

    @settings(max_examples=100, deadline=None)
    @given(values=positive_lists,
           factor=st.floats(min_value=1e-3, max_value=1e3))
    def test_jain_scale_invariance(self, values, factor) -> None:
        scaled = [v * factor for v in values]
        assert jain_index(scaled) == pytest.approx(
            jain_index(values), rel=1e-6
        )

    @settings(max_examples=100, deadline=None)
    @given(value=st.floats(min_value=1e-3, max_value=1e6),
           n=st.integers(min_value=1, max_value=16))
    def test_jain_equal_shares_is_one(self, value, n) -> None:
        assert jain_index([value] * n) == pytest.approx(1.0)

    def test_jain_degenerate_inputs(self) -> None:
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    def test_slowdown_basics(self) -> None:
        assert slowdown(200.0, 100.0) == pytest.approx(2.0)
        assert slowdown(100.0, 100.0) == pytest.approx(1.0)
        assert slowdown(50.0, 0.0) == 1.0


# ----------------------------------------------------------------------
# Spec validation, registry, and priority mapping
# ----------------------------------------------------------------------
class TestTenantSpec:
    def test_classes_are_closed(self) -> None:
        assert TENANT_CLASSES == ("latency", "bandwidth", "approx-batch")

    def test_priority_mapping(self) -> None:
        assert tenant_class_for_priority(5) == "latency"
        assert tenant_class_for_priority(2) == "latency"
        assert tenant_class_for_priority(1) == "bandwidth"
        assert tenant_class_for_priority(0) == "approx-batch"
        assert tenant_class_for_priority(-3) == "approx-batch"

    def test_validate_rejects_unknown_class(self) -> None:
        with pytest.raises(ConfigError, match="foreground"):
            TenantSpec(name="a", workload="MVT",
                       tenant_class="foreground").validate()

    def test_validate_rejects_duplicate_names(self) -> None:
        mix = TenantMixSpec(tenants=(
            TenantSpec(name="a", workload="MVT"),
            TenantSpec(name="a", workload="ATAX"),
        ))
        with pytest.raises(ConfigError):
            mix.validate()

    def test_validate_rejects_unknown_arbiter(self) -> None:
        mix = TenantMixSpec(
            tenants=(TenantSpec(name="a", workload="MVT"),),
            arbiter="round-robin",
        )
        with pytest.raises(ConfigError, match="round-robin"):
            mix.validate()

    def test_arbiter_registry_names(self) -> None:
        assert set(arbiter_names()) >= {
            "shared-frfcfs", "tenant-priority", "batch-fair"
        }

    def test_make_arbiter_rejects_unknown(self) -> None:
        from repro.config.scheduler import SchedulerConfig

        with pytest.raises(ConfigError, match="bogus"):
            make_arbiter("bogus", SchedulerConfig(), three_tenant_mix())

    def test_mix_round_trips_through_spec(self) -> None:
        spec = SimSpec(tenants=three_tenant_mix("batch-fair"))
        rebuilt = SimSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_scheme_for_tenant_scopes_policies(self) -> None:
        scheme = scheme_by_id("static-dms+static-ams")
        lat = scheme_for_tenant(
            scheme, TenantSpec(name="a", workload="MVT",
                               tenant_class="latency"))
        assert lat.dms.mode.value == "off"
        assert lat.ams.mode.value == "off"
        bw = scheme_for_tenant(
            scheme, TenantSpec(name="a", workload="MVT",
                               tenant_class="bandwidth"))
        assert bw.dms.mode.value != "off"
        assert bw.ams.mode.value == "off"
        ax = scheme_for_tenant(
            scheme, TenantSpec(name="a", workload="MVT",
                               tenant_class="approx-batch"))
        assert ax is scheme


# ----------------------------------------------------------------------
# Drop-contract enforcement
# ----------------------------------------------------------------------
class TestDropContract:
    def test_tracker_raises_on_forbidden_drop(self) -> None:
        tracker = TenantTracker(three_tenant_mix())
        victim = MemoryRequest(
            addr=0, is_write=False, channel=0, bank=0, bank_group=0,
            row=0, column=0, tenant_id=0,  # tenant 0 is the latency one
        )
        with pytest.raises(SimulationError, match="lat"):
            tracker.on_drops([victim])

    def test_tracker_counts_permitted_drops(self) -> None:
        tracker = TenantTracker(three_tenant_mix())
        victim = MemoryRequest(
            addr=0, is_write=False, channel=0, bank=0, bank_group=0,
            row=0, column=0, tenant_id=2,
        )
        tracker.on_drops([victim])
        assert tracker.requests_dropped == [0, 0, 1]

    def test_drops_only_in_approx_batch_stream(self) -> None:
        report = run_mix(three_tenant_mix())
        assert report.tenants is not None
        drops = [t.requests_dropped for t in report.tenants.tenants]
        assert drops[0] == 0 and drops[1] == 0
        assert drops[2] > 0  # the mix genuinely exercised AMS
        assert drops[2] == report.requests_dropped

    def test_composer_strips_approximable_from_protected_tenants(
        self,
    ) -> None:
        mix = three_tenant_mix()
        workload = TenantMix(mix, scale=1.0, seed=7)
        config = None
        from repro.config.gpu import GPUConfig

        config = GPUConfig()
        streams = workload.warp_streams(config)
        assert workload.stream_tenants is not None
        for warps, tid in zip(streams, workload.stream_tenants):
            for warp in warps:
                for access in warp.accesses:
                    if tid != 2:
                        assert not access.approximable


# ----------------------------------------------------------------------
# Determinism and arbiter behaviour
# ----------------------------------------------------------------------
class TestMixSimulation:
    def test_three_tenant_mix_is_deterministic(self) -> None:
        first = run_mix(three_tenant_mix())
        second = run_mix(three_tenant_mix())
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_serial_and_parallel_runner_agree(self) -> None:
        mix = three_tenant_mix()
        scheme = scheme_by_id("static-dms+static-ams")
        serial = Runner(tenants=mix, cache=None, verbose=False)
        parallel = Runner(tenants=mix, cache=None, verbose=False, jobs=2)
        try:
            a = serial.run("mix", scheme)
            b = parallel.run_matrix(["mix"], {"s": scheme})[("mix", "s")]
        finally:
            parallel.close()
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    @pytest.mark.parametrize("arbiter", [
        "shared-frfcfs", "tenant-priority", "batch-fair",
    ])
    def test_every_arbiter_runs_and_reports(self, arbiter) -> None:
        report = run_mix(three_tenant_mix(arbiter))
        assert report.tenants is not None
        assert report.tenants.arbiter == arbiter
        assert [t.name for t in report.tenants.tenants] == [
            "lat", "bw", "ax"
        ]
        # Conservation: per-tenant served adds up to the global counter.
        assert sum(
            t.requests_served for t in report.tenants.tenants
        ) == report.requests_served
        assert all(
            t.finish_mem_cycles > 0 for t in report.tenants.tenants
        )

    def test_report_round_trips_with_tenant_section(self) -> None:
        report = run_mix(three_tenant_mix())
        rebuilt = SimReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert rebuilt == report

    def test_single_tenant_mix_equals_plain_run(self) -> None:
        solo = TenantMixSpec(tenants=(
            TenantSpec(name="only", workload="MVT", scale=SCALE),
        ))
        scheme = scheme_by_id("static-dms+static-ams")
        reset_request_ids()
        mixed = simulate_spec(
            TenantMix(solo, scale=1.0, seed=7),
            SimSpec(scheduler=scheme, tenants=solo),
        )
        reset_request_ids()
        plain = simulate_spec(
            get_workload("MVT", scale=SCALE, seed=7),
            SimSpec(scheduler=scheme),
        )
        assert mixed.to_dict() == plain.to_dict()


# ----------------------------------------------------------------------
# Slowdown attribution and the fairness table
# ----------------------------------------------------------------------
class TestSlowdowns:
    def test_contended_slowdowns_at_least_one(self) -> None:
        mix = three_tenant_mix()
        scheme = scheme_by_id("static-dms+static-ams")
        runner = Runner(tenants=mix, cache=None, verbose=False)
        report = runner.run("mix", scheme)
        attach_slowdowns(report, runner, mix, scheme)
        slows = [t.slowdown for t in report.tenants.tenants]
        # Work-conserving FR-FCFS: neighbours can only delay a tenant
        # relative to its class-scoped solo baseline (tiny tolerance
        # for float accumulation in the cycle clock).
        assert all(s is not None and s >= 0.999 for s in slows)
        assert all(
            t.solo_mem_cycles and t.solo_mem_cycles > 0
            for t in report.tenants.tenants
        )
        jain = report.tenants.jain_fairness
        assert jain is not None and 1.0 / 3 <= jain <= 1.0 + 1e-9

    def test_slowdowns_are_presentation_data(self) -> None:
        # The cached serialized form never embeds baseline-dependent
        # numbers: a fresh simulation of the same mix has them unset.
        report = run_mix(three_tenant_mix())
        assert all(
            t.solo_mem_cycles is None and t.slowdown is None
            for t in report.tenants.tenants
        )
        assert report.tenants.jain_fairness is None

    def test_fairness_table_renders(self) -> None:
        mix = three_tenant_mix()
        scheme = scheme_by_id("static-dms+static-ams")
        runner = Runner(tenants=mix, cache=None, verbose=False)
        report = runner.run("mix", scheme)
        attach_slowdowns(report, runner, mix, scheme)
        text = fairness_table(report.tenants)
        for name in ("lat", "bw", "ax", "Jain fairness", "shared-frfcfs"):
            assert name in text


# ----------------------------------------------------------------------
# Telemetry: per-tenant window series
# ----------------------------------------------------------------------
class TestTenantTelemetry:
    def test_per_tenant_series_recorded(self) -> None:
        mix = three_tenant_mix()
        runner = Runner(tenants=mix, cache=None, verbose=False)
        report, system, hub = runner.run_traced(
            "mix", scheme_by_id("static-dms+static-ams"),
            window_cycles=1024, log_commands=False,
        )
        for name in ("lat", "bw", "ax"):
            assert f"tenant.{name}.served" in hub.series
            assert f"tenant.{name}.drops" in hub.series
        windows = len(report.timeline or [])
        for values in hub.series.values():
            assert len(values) == windows
        # The series deltas sum back to the per-tenant totals.
        for tid, name in enumerate(("lat", "bw", "ax")):
            assert sum(hub.series[f"tenant.{name}.served"]) == (
                report.tenants.tenants[tid].requests_served
            )
            assert sum(hub.series[f"tenant.{name}.drops"]) == (
                report.tenants.tenants[tid].requests_dropped
            )
