"""Codec error paths: every rejection names the offending key path.

A service client submitting a malformed nested SimSpec payload gets one
shot at fixing it; these tests pin that the :class:`ConfigError` message
carries the full dotted path (``scheduler.dms.mode``), not just the name
of the dataclass that choked. Also covers the legacy ``simulate()``
shim's deprecation contract: it must warn, and it must keep producing
results identical to the :func:`simulate_spec` path it wraps.
"""

from __future__ import annotations

import pytest

from repro.config.codec import decode
from repro.config.scheduler import DMSConfig, SchedulerConfig
from repro.errors import ConfigError
from repro.harness.schemes import scheme_def
from repro.sim.spec import SimSpec
from repro.sim.system import simulate, simulate_spec
from repro.workloads.registry import get_workload

# ----------------------------------------------------------------------
# Unknown fields.


def test_unknown_top_level_field_names_the_key():
    with pytest.raises(ConfigError, match=r"\bbogus\b"):
        decode(SchedulerConfig, {"bogus": 1})


def test_unknown_nested_field_names_the_full_path():
    payload = {"dms": {"bogus": 1}}
    with pytest.raises(ConfigError, match=r"dms\.bogus"):
        decode(SchedulerConfig, payload)


def test_unknown_simspec_field_rejected():
    with pytest.raises(ConfigError, match="unknown SimSpec field"):
        SimSpec.from_dict({"xyz": True})


def test_simspec_nested_error_carries_scheduler_prefix():
    with pytest.raises(ConfigError, match=r"scheduler\.dms\.bogus"):
        SimSpec.from_dict({"scheduler": {"dms": {"bogus": 1}}})


def test_simspec_config_error_carries_config_prefix():
    with pytest.raises(ConfigError, match=r"config\."):
        SimSpec.from_dict({"config": {"not_a_gpu_field": 1}})


# ----------------------------------------------------------------------
# Wrong types and enum mismatches.


def test_wrong_primitive_type_names_path_and_types():
    with pytest.raises(
        ConfigError,
        match=r"dms\.bwutil_threshold.*expected float.*got str",
    ):
        decode(SchedulerConfig, {"dms": {"bwutil_threshold": "fast"}})


def test_invalid_enum_value_lists_valid_members():
    with pytest.raises(ConfigError) as excinfo:
        decode(SchedulerConfig, {"dms": {"mode": "turbo"}})
    message = str(excinfo.value)
    assert "dms.mode" in message
    assert "'turbo'" in message
    assert "'dynamic'" in message  # valid members are listed


def test_non_dict_subtree_names_the_path():
    with pytest.raises(ConfigError, match=r"\bdms\b"):
        decode(SchedulerConfig, {"dms": [1, 2, 3]})


def test_error_free_decode_still_round_trips():
    spec = SimSpec(scheduler=scheme_def("dyn-dms").build())
    assert SimSpec.from_dict(spec.to_dict()) == spec
    widened = decode(DMSConfig, {"bwutil_threshold": 1})
    assert isinstance(widened.bwutil_threshold, float)
    # int -> float widening stays allowed (JSON has no float literal
    # for whole numbers).


# ----------------------------------------------------------------------
# Legacy simulate() shim.


def test_legacy_simulate_warns_and_matches_simulate_spec():
    workload = get_workload("synthetic", scale=0.05, seed=9)
    scheduler = scheme_def("frfcfs").build()
    from repro.dram.request import reset_request_ids

    reset_request_ids()
    with pytest.warns(DeprecationWarning, match="simulate_spec"):
        legacy = simulate(workload, scheduler=scheduler)
    workload = get_workload("synthetic", scale=0.05, seed=9)
    reset_request_ids()
    modern = simulate_spec(workload, SimSpec(scheduler=scheduler))
    assert legacy.to_dict() == modern.to_dict()
