"""Closed-loop system tests with hand-built warp streams."""

import pytest

from repro.config import (
    AMSConfig,
    AMSMode,
    GPUConfig,
    SchedulerConfig,
    baseline_scheduler,
    static_dms,
)
from repro.gpu.warp import Access, WarpOp
from repro.sim.system import GPUSystem


def quick_ams(th_rbl: int, coverage: float) -> SchedulerConfig:
    """Static-AMS with no warm-up gate (tests use tiny traces)."""
    return SchedulerConfig(
        ams=AMSConfig(
            mode=AMSMode.STATIC,
            static_th_rbl=th_rbl,
            coverage_limit=coverage,
            warmup_fills=0,
        )
    )


def streaming_warp(
    base_addr: int,
    n_ops: int,
    *,
    stride: int = 128,
    compute: float = 40.0,
    approximable: bool = False,
    write: bool = False,
) -> list[WarpOp]:
    """A warp scanning memory linearly, one access per op."""
    ops = []
    for i in range(n_ops):
        ops.append(
            WarpOp(
                compute_cycles=compute,
                instructions=8,
                accesses=(
                    Access(
                        addr=base_addr + i * stride,
                        is_write=write,
                        approximable=approximable,
                    ),
                ),
            )
        )
    return ops


class TestBasicExecution:
    def test_single_warp_completes(self) -> None:
        system = GPUSystem()
        report = system.run([streaming_warp(0, 10)], workload_name="t")
        assert report.total_instructions == 80
        assert report.ipc > 0
        assert report.elapsed_mem_cycles > 0
        # 10 sequential 128-B reads: lines are distinct -> 10 L2 misses.
        assert report.l2.misses == 10
        assert report.requests_served == 10

    def test_streaming_reads_have_high_rbl(self) -> None:
        # A 2 KB row holds 16 lines, but channel interleaving splits each
        # row's 2048 local bytes into 256-byte chunks: a linear global
        # scan touches each (channel, row) with 2 consecutive lines per
        # chunk visit and returns 8 times. With a single slow warp the
        # row is reopened per visit; RBL ~= 2.
        system = GPUSystem()
        report = system.run([streaming_warp(0, 96)], workload_name="t")
        assert report.activations < 96
        assert report.avg_rbl >= 2.0

    def test_compute_bound_warp_time_scales_with_compute(self) -> None:
        fast = GPUSystem().run(
            [streaming_warp(0, 10, compute=10.0)], workload_name="t"
        )
        slow = GPUSystem().run(
            [streaming_warp(0, 10, compute=2000.0)], workload_name="t"
        )
        assert slow.elapsed_core_cycles > fast.elapsed_core_cycles
        assert slow.ipc < fast.ipc

    def test_l2_hits_do_not_reach_dram(self) -> None:
        # Two warps reading the same lines: the second wave hits in L2.
        w1 = streaming_warp(0, 10, compute=10.0)
        w2 = streaming_warp(0, 10, compute=3000.0)  # arrives much later
        report = GPUSystem().run([w1, w2], workload_name="t")
        assert report.l2.hits > 0
        assert report.requests_served < 20

    def test_writes_produce_writebacks_not_reads(self) -> None:
        system = GPUSystem()
        # Write far more lines than L2 capacity (1024 lines/slice) so
        # dirty evictions must reach DRAM as writes.
        warps = [
            streaming_warp(sm * 1_000_000, 400, write=True, compute=5.0)
            for sm in range(8)
        ]
        report = system.run(warps, workload_name="t")
        writes = sum(s.writes_served for s in report.channel_stats)
        reads = sum(s.reads_served for s in report.channel_stats)
        assert writes > 0
        assert reads == 0  # full-line stores never fetch

    def test_deterministic_repeat(self) -> None:
        def once() -> tuple:
            warps = [
                streaming_warp(sm * 4096, 50, compute=30.0)
                for sm in range(16)
            ]
            r = GPUSystem().run(warps, workload_name="t")
            return (
                r.elapsed_mem_cycles,
                r.activations,
                r.total_instructions,
                r.requests_served,
            )

        assert once() == once()


class TestClosedLoopDMS:
    def make_warps(self, n_warps: int, compute: float) -> list:
        # Pairs of warps share rows with a temporal skew, the Fig. 3
        # pattern that DMS merges.
        warps = []
        for w in range(n_warps):
            base = (w // 2) * 200_000
            lead = 10.0 if w % 2 == 0 else 3000.0
            ops = [WarpOp(compute_cycles=lead, instructions=1)]
            ops += streaming_warp(base, 60, compute=compute)
            warps.append(ops)
        return warps

    def test_dms_reduces_activations(self) -> None:
        warps = self.make_warps(8, compute=200.0)
        base = GPUSystem(scheduler=baseline_scheduler()).run(
            warps, workload_name="t"
        )
        dms = GPUSystem(scheduler=static_dms(2048)).run(
            self.make_warps(8, compute=200.0), workload_name="t"
        )
        assert dms.activations < base.activations

    def test_dms_costs_more_time_for_thin_parallelism(self) -> None:
        warps = [streaming_warp(0, 40, compute=20.0)]
        base = GPUSystem(scheduler=baseline_scheduler()).run(
            warps, workload_name="t"
        )
        dms = GPUSystem(scheduler=static_dms(1024)).run(
            [streaming_warp(0, 40, compute=20.0)], workload_name="t"
        )
        assert dms.elapsed_core_cycles > base.elapsed_core_cycles
        assert dms.normalized_ipc(base) < 0.95


class TestClosedLoopAMS:
    def test_ams_drops_reduce_activations_and_serve_warps(self) -> None:
        # Isolated single-line rows: each access opens its own row
        # (RBL 1) -> prime AMS victims.
        def warps():
            return [
                streaming_warp(
                    sm * 1_000_000,
                    40,
                    stride=6 * 2048,  # one line per (channel, row)
                    compute=50.0,
                    approximable=True,
                )
                for sm in range(6)
            ]

        base = GPUSystem(scheduler=baseline_scheduler()).run(
            warps(), workload_name="t"
        )
        ams = GPUSystem(
            scheduler=quick_ams(th_rbl=8, coverage=0.5)
        ).run(warps(), workload_name="t")
        assert ams.requests_dropped > 0
        assert ams.activations < base.activations
        assert 0 < ams.coverage <= 0.5 + 1e-9
        assert ams.total_instructions == base.total_instructions

    def test_ams_respects_coverage_limit(self) -> None:
        warps = [
            streaming_warp(
                sm * 1_000_000,
                60,
                stride=6 * 2048,
                compute=50.0,
                approximable=True,
            )
            for sm in range(6)
        ]
        report = GPUSystem(
            scheduler=quick_ams(th_rbl=8, coverage=0.10)
        ).run(warps, workload_name="t")
        assert report.coverage <= 0.10 + 1e-9

    def test_drop_records_carry_donors(self) -> None:
        warps = [
            streaming_warp(
                sm * 100_000,
                50,
                stride=6 * 2048,
                compute=50.0,
                approximable=True,
            )
            for sm in range(4)
        ]
        report = GPUSystem(
            scheduler=quick_ams(th_rbl=8, coverage=0.5)
        ).run(warps, workload_name="t")
        assert report.drops
        with_donor = [d for d in report.drops if d.donor_line_addr is not None]
        # After warm-up, nearby lines are resident, so most drops find one.
        assert len(with_donor) >= len(report.drops) // 2
