"""Policy-registry and candidate-selector behaviour tests.

The registry API tests pin the plugin surface (names, error messages,
virtual-subclass adoption of the verified DMS/AMS units). The behaviour
tests drive the controller through scripted traces — the same harness
as ``test_controller.py`` — to prove the three selectors actually
implement different arbitration:

* ``fcfs`` serves strictly in age order (no row-hit bypass);
* ``frfcfs`` lets younger row hits bypass older misses (pinned in
  ``test_controller.py``);
* ``frfcfs-cap`` is FR-FCFS until a bank's hit streak reaches the cap
  while an older miss starves, then forces the row switch.
"""

import pytest

from repro.config import (
    AMSConfig,
    DMSConfig,
    GPUConfig,
    SchedulerConfig,
    baseline_scheduler,
)
from repro.dram.request import reset_request_ids
from repro.errors import ConfigError
from repro.sched import AMSUnit, DMSUnit
from repro.sched.policies import (
    ActivationGate,
    CandidateSelector,
    DropPolicy,
    FCFSSelector,
    FRFCFSCapSelector,
    FRFCFSSelector,
    NullDropPolicy,
    NullGate,
    drop_policy_names,
    gate_names,
    make_drop_policy,
    make_gate,
    make_selector,
    selector_names,
)

from tests.test_controller import Harness


class TestRegistries:
    def test_builtin_names_registered(self) -> None:
        assert {"fcfs", "frfcfs", "frfcfs-cap"} <= set(selector_names())
        assert {"dms", "none"} <= set(gate_names())
        assert {"ams", "none"} <= set(drop_policy_names())

    def test_make_selector_builds_registered_classes(self) -> None:
        cfg = SchedulerConfig()
        assert isinstance(make_selector("frfcfs", cfg), FRFCFSSelector)
        assert isinstance(make_selector("fcfs", cfg), FCFSSelector)
        assert isinstance(make_selector("frfcfs-cap", cfg), FRFCFSCapSelector)

    def test_unknown_names_raise_and_list_registered(self) -> None:
        with pytest.raises(ConfigError, match="frfcfs"):
            make_selector("lifo", SchedulerConfig())
        with pytest.raises(ConfigError, match="dms"):
            make_gate("never", DMSConfig())
        with pytest.raises(ConfigError, match="ams"):
            make_drop_policy("always", AMSConfig())

    def test_verified_units_adopted_as_virtual_subclasses(self) -> None:
        assert issubclass(DMSUnit, ActivationGate)
        assert issubclass(AMSUnit, DropPolicy)
        assert DMSUnit.name == "dms"
        assert AMSUnit.name == "ams"
        assert isinstance(make_gate("dms", DMSConfig()), ActivationGate)
        assert isinstance(make_drop_policy("ams", AMSConfig()), DropPolicy)

    def test_null_gate_is_pass_through(self) -> None:
        gate = make_gate("none", DMSConfig())
        assert isinstance(gate, NullGate)
        assert not gate.enabled
        assert gate.current_delay == 0.0
        assert not gate.wants_ams_halted
        assert gate.earliest_eligible(17.5) == 17.5

    def test_null_drop_policy_never_drops(self) -> None:
        policy = make_drop_policy("none", AMSConfig())
        assert isinstance(policy, NullDropPolicy)
        assert not policy.enabled
        assert policy.coverage == 0.0
        assert not policy.may_drop(None, bank=0, row=1)

    def test_selector_without_name_rejected(self) -> None:
        from repro.sched.policies.base import register_selector

        class Nameless(CandidateSelector):
            def select(self, now):  # pragma: no cover - never runs
                return None

        with pytest.raises(ConfigError, match="no name"):
            register_selector(Nameless)


class TestSchedulerConfigValidation:
    def test_registered_arbiters_accepted(self) -> None:
        for name in selector_names():
            SchedulerConfig(arbiter=name).validate()

    def test_unknown_arbiter_rejected(self) -> None:
        with pytest.raises(ConfigError, match="arbiter"):
            SchedulerConfig(arbiter="lifo").validate()

    def test_nonpositive_streak_cap_rejected(self) -> None:
        with pytest.raises(ConfigError, match="hit_streak_cap"):
            SchedulerConfig(hit_streak_cap=0).validate()


def fcfs_scheduler() -> SchedulerConfig:
    return SchedulerConfig(arbiter="fcfs")


def capped_scheduler(cap: int) -> SchedulerConfig:
    return SchedulerConfig(arbiter="frfcfs-cap", hit_streak_cap=cap)


class TestFCFSBehaviour:
    def test_younger_hit_does_not_bypass_older_miss(self) -> None:
        # The mirror of test_controller's FR-FCFS bypass test: open row 1,
        # a row-2 miss arrives BEFORE another row-1 hit. FCFS must serve
        # in age order — row 1, row 2, row 1 — three activations, every
        # row opening serving exactly one request.
        h = Harness(fcfs_scheduler(), log_commands=True)
        first = h.inject(0, bank=0, row=1, col=0)
        miss = h.inject(5, bank=0, row=2, col=0)
        hit = h.inject(6, bank=0, row=1, col=1)
        h.run()
        assert h.channel.stats.activations == 3
        assert h.channel.stats.rbl_histogram[1] == 3
        served_order = [rid for _, rid, _ in h.replies]
        assert served_order == [first.rid, miss.rid, hit.rid]

    def test_matches_frfcfs_without_contention(self) -> None:
        # One request per bank: arbitration never has a choice to make,
        # so both selectors produce the same service times.
        def run(sched) -> list[tuple[float, int, bool]]:
            reset_request_ids()
            h = Harness(sched)
            h.inject(0, bank=0, row=1)
            h.inject(0, bank=8, row=2)
            h.run()
            return h.replies

        assert run(fcfs_scheduler()) == run(baseline_scheduler())


class TestFRFCFSCapBehaviour:
    def scripted(self, sched: SchedulerConfig) -> Harness:
        """A row-1 hit burst racing one older row-2 miss on bank 0."""
        reset_request_ids()
        h = Harness(sched, log_commands=True)
        h.inject(0, bank=0, row=1, col=0)
        h.inject(1, bank=0, row=2, col=0)  # the starving older miss
        for i in range(1, 6):
            h.inject(2.0 + i, bank=0, row=1, col=i)
        h.run()
        return h

    def test_streak_cap_forces_row_switch(self) -> None:
        h = self.scripted(capped_scheduler(2))
        # Two hits served, streak hits the cap while the row-2 request is
        # the bank's oldest: the switch is forced, then row 1 reopens for
        # the remainder. Three activations instead of FR-FCFS's two.
        assert h.channel.stats.activations == 3
        assert h.channel.stats.reads_served == 7

    def test_uncapped_matches_frfcfs(self) -> None:
        # A cap larger than the longest possible streak never triggers.
        capped = self.scripted(capped_scheduler(64))
        baseline = self.scripted(baseline_scheduler())
        assert (
            capped.channel.stats.activations
            == baseline.channel.stats.activations
            == 2
        )
        assert capped.replies == baseline.replies

    def test_no_suppression_without_older_miss(self) -> None:
        # Hits only: the streak exceeds the cap but the bank's oldest
        # request targets the open row, so nothing is suppressed.
        h = Harness(capped_scheduler(2), log_commands=True)
        for i in range(6):
            h.inject(float(i), bank=0, row=1, col=i)
        h.run()
        assert h.channel.stats.activations == 1
        assert h.channel.stats.rbl_histogram[6] == 1

    def test_cap_composes_with_gates_and_drops(self) -> None:
        # The capped selector rides under DMS+AMS like any other: the
        # composition simulates to completion and still serves all reads.
        from repro.config import AMSMode, DMSMode

        sched = SchedulerConfig(
            arbiter="frfcfs-cap",
            hit_streak_cap=2,
            dms=DMSConfig(mode=DMSMode.STATIC, static_delay=64),
            ams=AMSConfig(mode=AMSMode.STATIC, static_th_rbl=1,
                          warmup_fills=0),
        )
        h = Harness(sched)
        for i in range(4):
            h.inject(float(i), bank=0, row=i, col=0, approximable=True)
        h.run()
        assert len(h.replies) == 4


class TestSelectorStateIsolation:
    def test_streak_state_not_shared_between_controllers(self) -> None:
        # Two harnesses with the same config must not share streak
        # dictionaries (regression guard: selector instances are
        # per-controller, not per-config).
        a = Harness(capped_scheduler(2))
        b = Harness(capped_scheduler(2))
        assert a.mc.selector is not b.mc.selector
        a.inject(0, bank=0, row=1, col=0)
        a.run()
        assert b.mc.selector._streaks == {}

    def test_on_issue_wiring_only_for_stateful_selectors(self) -> None:
        # The controller skips the notification call entirely for
        # selectors that do not override on_issue.
        stateless = Harness(baseline_scheduler())
        stateful = Harness(capped_scheduler(2))
        assert stateless.mc._notify_issue is None
        assert stateful.mc._notify_issue is not None
