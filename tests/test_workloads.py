"""Tests for the workload layer: layout, traces, kernels, registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AddressMapping, GPUConfig
from repro.errors import WorkloadError
from repro.workloads import TABLE_II, get_workload, list_workloads
from repro.workloads.layout import AddressSpace
from repro.workloads.traces import dram_row_groups, row_visit_streams

CONFIG = GPUConfig()


class TestAddressSpace:
    def make(self) -> tuple[AddressSpace, dict[str, np.ndarray]]:
        space = AddressSpace()
        arrays = {
            "A": np.arange(1024, dtype=np.float32),
            "B": np.arange(512, dtype=np.float32) * 2,
        }
        space.add("A", arrays["A"], approximable=True)
        space.add("B", arrays["B"])
        return space, arrays

    def test_bases_are_chunk_aligned(self) -> None:
        space, _ = self.make()
        for spec in space.arrays:
            assert spec.base % 256 == 0

    def test_addr_of_and_bounds(self) -> None:
        space, _ = self.make()
        assert space.addr_of("A", 0) == space.spec("A").base
        assert space.addr_of("A", 10) == space.spec("A").base + 40
        with pytest.raises(WorkloadError):
            space.addr_of("A", 5000)
        with pytest.raises(WorkloadError):
            space.spec("missing")

    def test_duplicate_rejected(self) -> None:
        space, _ = self.make()
        with pytest.raises(WorkloadError):
            space.add("A", np.zeros(4, dtype=np.float32))

    def test_lines_of_range(self) -> None:
        space, _ = self.make()
        lines = space.lines_of_range("A", 0, 64)  # 64 floats = 2 lines
        assert len(lines) == 2
        assert lines[1] - lines[0] == 128
        assert space.lines_of_range("A", 5, 5) == []

    def test_locate_line_roundtrip(self) -> None:
        space, _ = self.make()
        line = space.line_of("B", 100)
        spec, lo, hi = space.locate_line(line)
        assert spec.name == "B"
        assert hi - lo <= 128

    def test_locate_unmapped_line(self) -> None:
        space, _ = self.make()
        beyond = space.footprint_bytes + 10_000
        assert space.locate_line(beyond - beyond % 128) is None

    def test_read_write_line_bytes_roundtrip(self) -> None:
        space, arrays = self.make()
        line = space.line_of("A", 32)
        payload = space.read_line_bytes(arrays, line)
        assert len(payload) == 128
        # Writing the same bytes back is a no-op.
        copies = {k: v.copy() for k, v in arrays.items()}
        assert space.write_line_bytes(copies, line, payload)
        np.testing.assert_array_equal(copies["A"], arrays["A"])

    def test_write_line_substitutes_values(self) -> None:
        space, arrays = self.make()
        target = space.line_of("A", 0)
        donor = space.line_of("A", 64)
        copies = {k: v.copy() for k, v in arrays.items()}
        space.write_line_bytes(
            copies, target, space.read_line_bytes(arrays, donor)
        )
        np.testing.assert_array_equal(copies["A"][:32], arrays["A"][64:96])

    @given(idx=st.integers(min_value=0, max_value=1023))
    @settings(max_examples=50, deadline=None)
    def test_line_alignment_property(self, idx: int) -> None:
        space, _ = self.make()
        line = space.line_of("A", idx)
        assert line % 128 == 0
        assert line <= space.addr_of("A", idx) < line + 128


class TestRowVisitStreams:
    def setup_method(self) -> None:
        self.space = AddressSpace()
        self.data = np.zeros(65536, dtype=np.float32)  # 256 KB = 128 rows
        self.space.add("X", self.data, approximable=True)
        self.mapping = AddressMapping()

    def test_groups_are_complete_rows(self) -> None:
        groups = dram_row_groups(self.space, "X", self.mapping)
        # 256 KB spans ~128 DRAM rows of 16 lines; rows clipped at the
        # array edges may be partial (the 12 KB row-group period does not
        # divide the base address).
        assert 128 <= len(groups) <= 134
        assert sum(len(g) for g in groups) == 2048  # every line grouped
        assert sum(1 for g in groups if len(g) == 16) >= 124
        for g in groups:
            decoded = {
                (self.mapping.decode(a).channel,
                 self.mapping.decode(a).bank,
                 self.mapping.decode(a).row)
                for a in g
            }
            assert len(decoded) == 1

    def test_single_visit_lines_per_visit(self) -> None:
        streams = row_visit_streams(
            self.space, "X", self.mapping,
            n_warps=4, lines_per_visit=3, visits_per_row=1, compute=10.0,
        )
        assert len(streams) == 4
        ops = [op for s in streams for op in s]
        groups = dram_row_groups(self.space, "X", self.mapping)
        assert len(ops) == len(groups)  # one visit per row
        assert all(1 <= len(op.accesses) <= 3 for op in ops)
        assert sum(1 for op in ops if len(op.accesses) == 3) >= 124

    def test_lines_per_op_splits_visits(self) -> None:
        streams = row_visit_streams(
            self.space, "X", self.mapping,
            n_warps=2, lines_per_visit=4, lines_per_op=2,
            visits_per_row=1, compute=10.0,
        )
        ops = [op for s in streams for op in s]
        assert all(1 <= len(op.accesses) <= 2 for op in ops)
        # Each row's 4-line visit splits into two 2-line ops.
        assert sum(len(op.accesses) for op in ops) >= 4 * 124

    def test_paired_visits_are_disjoint_lines(self) -> None:
        streams = row_visit_streams(
            self.space, "X", self.mapping,
            n_warps=2, lines_per_visit=2, visits_per_row=2,
            skew_cycles=100.0, compute=10.0,
        )
        lead, trail = streams
        lead_addrs = {a.addr for op in lead for a in op.accesses}
        trail_addrs = {a.addr for op in trail for a in op.accesses}
        assert not lead_addrs & trail_addrs
        # The trail starts with the idle (skew) op.
        assert trail[0].accesses == ()
        assert trail[0].compute_cycles == 100.0

    def test_repeat_visits_reread_same_lines(self) -> None:
        streams = row_visit_streams(
            self.space, "X", self.mapping,
            n_warps=2, lines_per_visit=2, visits_per_row=2,
            repeat_visits=True, compute=10.0,
        )
        lead, trail = streams
        lead_addrs = [a.addr for op in lead for a in op.accesses]
        trail_addrs = [a.addr for op in trail for a in op.accesses]
        assert lead_addrs == trail_addrs

    def test_row_range_partitions(self) -> None:
        lo = row_visit_streams(
            self.space, "X", self.mapping, n_warps=2,
            lines_per_visit=1, compute=1.0, row_range=(0.0, 0.5),
        )
        hi = row_visit_streams(
            self.space, "X", self.mapping, n_warps=2,
            lines_per_visit=1, compute=1.0, row_range=(0.5, 1.0),
        )
        lo_addrs = {a.addr for s in lo for op in s for a in op.accesses}
        hi_addrs = {a.addr for s in hi for op in s for a in op.accesses}
        assert not lo_addrs & hi_addrs

    def test_skew_tuple_spreads(self) -> None:
        streams = row_visit_streams(
            self.space, "X", self.mapping,
            n_warps=8, lines_per_visit=2, visits_per_row=2,
            skew_cycles=(100.0, 400.0), compute=10.0,
        )
        idles = [s[0].compute_cycles for s in streams[1::2]]
        assert min(idles) == 100.0
        assert max(idles) == 400.0
        assert len(set(idles)) > 1

    def test_approximable_annotation_propagates(self) -> None:
        streams = row_visit_streams(
            self.space, "X", self.mapping,
            n_warps=2, lines_per_visit=1, compute=1.0,
        )
        assert all(
            a.approximable for s in streams for op in s for a in op.accesses
        )

    def test_writes_never_approximable(self) -> None:
        streams = row_visit_streams(
            self.space, "X", self.mapping,
            n_warps=2, lines_per_visit=1, compute=1.0, write=True,
        )
        accesses = [a for s in streams for op in s for a in op.accesses]
        assert all(a.is_write and not a.approximable for a in accesses)


class TestRegistryAndKernels:
    def test_all_twenty_apps_registered(self) -> None:
        names = list_workloads()
        assert len(TABLE_II) == 20
        # The 20 Table II applications plus the dial-a-characteristic
        # synthetic workload (usable from `repro-harness trace`).
        assert set(names) == set(TABLE_II) | {"synthetic"}

    def test_unknown_app_rejected(self) -> None:
        with pytest.raises(WorkloadError):
            get_workload("quake3")

    @pytest.mark.parametrize("name", sorted(TABLE_II))
    def test_traces_map_to_registered_arrays(self, name: str) -> None:
        wl = get_workload(name, scale=0.12)
        streams = wl.warp_streams(CONFIG)
        assert streams, f"{name} produced no warps"
        for stream in streams[:4]:
            for op in stream[:8]:
                for access in op.accesses:
                    located = wl.space.locate_line(
                        access.addr - access.addr % 128
                    )
                    assert located is not None

    @pytest.mark.parametrize("name", sorted(TABLE_II))
    def test_kernels_run_and_are_deterministic(self, name: str) -> None:
        wl = get_workload(name, scale=0.12)
        out1 = wl.run_exact()
        out2 = get_workload(name, scale=0.12).run_exact()
        np.testing.assert_array_equal(out1, out2)
        assert np.isfinite(np.asarray(out1, dtype=np.float64)).all()

    def test_scale_changes_problem_size(self) -> None:
        small = get_workload("GEMM", scale=0.12)
        big = get_workload("GEMM", scale=0.5)
        assert big.space.footprint_bytes > small.space.footprint_bytes

    def test_output_error_zero_for_identical(self) -> None:
        wl = get_workload("SCP", scale=0.12)
        out = wl.run_exact()
        assert wl.output_error(out, out.copy()) == 0.0

    def test_jmein_uses_mismatch_rate(self) -> None:
        wl = get_workload("jmein", scale=0.12)
        exact = np.array([1.0, 0.0, 1.0, 1.0])
        approx = np.array([1.0, 1.0, 1.0, 0.0])
        assert wl.output_error(exact, approx) == pytest.approx(0.5)
