"""Tier-1 test isolation.

The tier-1 suite must exercise the simulator, not replay persisted
results: a stale ``.repro-cache/`` from an older build could otherwise
mask regressions. The persistent result cache is therefore disabled for
every test; cache-specific tests opt back in with
``ResultCache(tmp_path, enabled=True)``.
"""

import os

os.environ["REPRO_NO_CACHE"] = "1"
