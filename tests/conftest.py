"""Tier-1 test isolation and golden-fixture regeneration.

The tier-1 suite must exercise the simulator, not replay persisted
results: a stale ``.repro-cache/`` from an older build could otherwise
mask regressions. The persistent result cache is therefore disabled for
every test; cache-specific tests opt back in with
``ResultCache(tmp_path, enabled=True)``.

Golden fixtures (``tests/golden/``) are regenerated — instead of
asserted — by running::

    PYTHONPATH=src python -m pytest tests/test_golden_trace.py --regen-golden

Inspect the diff of the regenerated JSON before committing it: every
changed value is a deliberate behaviour change you are signing off on.
"""

import os

import pytest

os.environ["REPRO_NO_CACHE"] = "1"


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-trace fixtures from the current "
        "simulator instead of asserting against them",
    )


@pytest.fixture
def regen_golden(request) -> bool:
    """Whether this run should rewrite golden fixtures."""
    return request.config.getoption("--regen-golden")
