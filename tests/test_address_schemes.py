"""Tests for the permuted address-mapping variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AddressMapping
from repro.config.address import DecodedAddress
from repro.errors import ConfigError


class TestPermutedMapping:
    def setup_method(self) -> None:
        self.plain = AddressMapping()
        self.perm = AddressMapping(scheme="permuted")

    def test_validation(self) -> None:
        self.perm.validate()
        with pytest.raises(ConfigError):
            AddressMapping(scheme="holographic").validate()
        with pytest.raises(ConfigError):
            AddressMapping(scheme="permuted",
                           banks_per_channel=12,
                           bank_groups_per_channel=4).validate()

    @settings(max_examples=200, deadline=None)
    @given(addr=st.integers(min_value=0, max_value=2**32))
    def test_roundtrip_property(self, addr: int) -> None:
        aligned = addr - addr % self.perm.access_bytes
        decoded = self.perm.decode(aligned)
        assert self.perm.encode(decoded) == aligned

    @settings(max_examples=100, deadline=None)
    @given(addr=st.integers(min_value=0, max_value=2**30))
    def test_row_and_channel_unchanged_by_permutation(self, addr) -> None:
        aligned = addr - addr % 128
        a = self.plain.decode(aligned)
        b = self.perm.decode(aligned)
        assert a.channel == b.channel
        assert a.row == b.row
        assert a.column == b.column

    def test_permutation_breaks_bank_camping(self) -> None:
        # A row-size x bank-count stride camps on one bank under the
        # plain mapping; the permuted scheme spreads it.
        stride = 2048 * 16 * 6  # one full row of every bank, all channels
        plain_banks = {
            self.plain.decode(i * stride).bank for i in range(16)
        }
        perm_banks = {
            self.perm.decode(i * stride).bank for i in range(16)
        }
        assert len(plain_banks) == 1
        assert len(perm_banks) == 16

    def test_bijectivity_within_channel(self) -> None:
        # All (bank, row) pairs of a small window stay distinct.
        seen = set()
        for i in range(16 * 8):
            d = self.perm.decode(i * 2048 * 6)  # channel-0 row blocks
            key = (d.channel, d.bank, d.row)
            assert key not in seen
            seen.add(key)
