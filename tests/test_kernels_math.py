"""Mathematical correctness of the workload kernels.

The application-error pipeline is only as meaningful as the kernels it
replays, so each kernel is checked against an independent property or
reference implementation.
"""

import numpy as np
import pytest

from repro.workloads import get_workload

SCALE = 0.12


def kernel_output(name: str):
    wl = get_workload(name, scale=SCALE)
    return wl, wl.run_exact()


class TestLinearAlgebraKernels:
    def test_gemm_matches_numpy(self) -> None:
        wl, out = kernel_output("GEMM")
        a = wl.arrays["A"].astype(np.float64)
        b = wl.arrays["B"].astype(np.float64)
        c = wl.arrays["C"].astype(np.float64)
        np.testing.assert_allclose(out, 1.5 * (a @ b) + 1.2 * c)

    def test_atax_is_gram_matrix_product(self) -> None:
        wl, out = kernel_output("ATAX")
        a = wl.arrays["A"].astype(np.float64)
        x = wl.arrays["x"].astype(np.float64)
        np.testing.assert_allclose(out, (a.T @ a) @ x, rtol=1e-10)

    def test_mvt_concatenates_both_products(self) -> None:
        wl, out = kernel_output("MVT")
        n = wl.n
        assert out.shape == (2 * n,)
        a = wl.arrays["A"].astype(np.float64)
        np.testing.assert_allclose(
            out[:n], a @ wl.arrays["y1"].astype(np.float64)
        )

    def test_scp_segment_sums(self) -> None:
        wl, out = kernel_output("SCP")
        a = wl.arrays["A"].astype(np.float64)
        b = wl.arrays["B"].astype(np.float64)
        assert out[0] == pytest.approx(np.dot(a[:128], b[:128]))


class TestTransformKernels:
    def test_walsh_hadamard_involution(self) -> None:
        # WHT(WHT(x)) == n * x for length-n inputs.
        from repro.workloads.kernels.fwt import walsh_hadamard

        rng = np.random.default_rng(3)
        x = rng.standard_normal(1024)
        twice = walsh_hadamard(walsh_hadamard(x))
        np.testing.assert_allclose(twice, 1024 * x, rtol=1e-9)

    def test_sla_prefix_sum_property(self) -> None:
        wl, out = kernel_output("SLA")
        x = wl.arrays["X"].astype(np.float64)
        # Exclusive scan: out[i+1] - out[i] == x[i].
        np.testing.assert_allclose(np.diff(out), x[:-1], rtol=1e-8,
                                   atol=1e-8)
        assert out[0] == 0.0

    def test_cons_convolution_preserves_dc(self) -> None:
        wl, out = kernel_output("CONS")
        # Taps sum to 1.0: a constant signal is a fixed point.
        const = {"X": np.ones_like(wl.arrays["X"])}
        y = wl.run_kernel(const)
        np.testing.assert_allclose(y[5:-5], 1.0, rtol=1e-12)


class TestPhysicsAndGeometryKernels:
    def test_inversek2j_roundtrips_through_forward_kinematics(self) -> None:
        from repro.workloads.kernels.inversek2j import L1, L2

        wl, out = kernel_output("inversek2j")
        t1, t2 = out[0], out[1]
        fx = L1 * np.cos(t1) + L2 * np.cos(t1 + t2)
        fy = L1 * np.sin(t1) + L2 * np.sin(t1 + t2)
        np.testing.assert_allclose(fx, wl.arrays["X"].astype(np.float64),
                                   atol=1e-6)
        np.testing.assert_allclose(fy, wl.arrays["Y"].astype(np.float64),
                                   atol=1e-6)

    def test_newtonraph_finds_roots(self) -> None:
        wl, out = kernel_output("newtonraph")
        a = wl.arrays["A"].astype(np.float64)
        b = wl.arrays["B"].astype(np.float64)
        c = wl.arrays["C"].astype(np.float64)
        residual = a * out**3 + b * out - c
        assert np.median(np.abs(residual)) < 1e-6

    def test_blackscholes_respects_no_arbitrage_bounds(self) -> None:
        wl, out = kernel_output("blackscholes")
        s = wl.arrays["S"].astype(np.float64)
        # 0 <= call price <= spot.
        assert (out >= -1e-9).all()
        assert (out <= s + 1e-9).all()

    def test_ray_shading_is_bounded(self) -> None:
        _, out = kernel_output("RAY")
        assert (out >= 0).all() and (out <= 1.2).all()

    def test_jmein_outputs_are_binary(self) -> None:
        _, out = kernel_output("jmein")
        assert set(np.unique(out)) <= {0.0, 1.0}


class TestStencilKernels:
    def test_lps_preserves_harmonic_interior(self) -> None:
        wl, _ = kernel_output("LPS")
        # A linear field is harmonic: one Jacobi step is the identity
        # on the interior.
        side = wl.side
        z = np.arange(side, dtype=np.float64)
        linear = np.broadcast_to(
            z[:, None, None], (side, side, side)
        ).copy()
        out = wl.run_kernel({"U": linear})
        np.testing.assert_allclose(
            out[1:-1, 1:-1, 1:-1], linear[1:-1, 1:-1, 1:-1], atol=1e-9
        )

    def test_meanfilter_preserves_constants(self) -> None:
        wl, _ = kernel_output("meanfilter")
        const = {"img": np.full_like(wl.arrays["img"], 42.0)}
        np.testing.assert_allclose(wl.run_kernel(const), 42.0)

    def test_laplacian_sharpen_identity_on_flat_image(self) -> None:
        wl, _ = kernel_output("laplacian")
        flat = {"img": np.full_like(wl.arrays["img"], 100.0)}
        np.testing.assert_allclose(wl.run_kernel(flat), 100.0)

    def test_conv3d_weights_sum_to_one(self) -> None:
        wl, _ = kernel_output("3DCONV")
        const = {"V": np.ones_like(wl.arrays["V"])}
        np.testing.assert_allclose(wl.run_kernel(const), 1.0, rtol=1e-12)

    def test_srad_fixed_point_on_constant_image(self) -> None:
        wl, _ = kernel_output("srad")
        const = {"I": np.full_like(wl.arrays["I"], 0.7)}
        np.testing.assert_allclose(wl.run_kernel(const), 0.7, atol=1e-9)
