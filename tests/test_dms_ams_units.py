"""Unit tests for the DMS and AMS policy units."""

import pytest

from repro.config import AMSConfig, AMSMode, DMSConfig, DMSMode
from repro.sched.ams import AMSUnit
from repro.sched.dms import DMSUnit
from tests.test_pending_queue import make_request
from repro.sched import PendingQueue


class TestStaticDMS:
    def test_off_mode_never_delays(self) -> None:
        unit = DMSUnit(DMSConfig(mode=DMSMode.OFF))
        assert not unit.enabled
        assert unit.earliest_eligible(100.0) == 100.0

    def test_static_delay_applied(self) -> None:
        unit = DMSUnit(DMSConfig(mode=DMSMode.STATIC, static_delay=128))
        assert unit.current_delay == 128
        assert unit.earliest_eligible(100.0) == 228.0

    def test_static_ignores_windows(self) -> None:
        unit = DMSUnit(DMSConfig(mode=DMSMode.STATIC, static_delay=128))
        unit.on_window(0.1)
        assert unit.current_delay == 128
        assert not unit.wants_ams_halted


class TestDynDMS:
    def make(self, **kw) -> DMSUnit:
        unit = DMSUnit(DMSConfig(mode=DMSMode.DYNAMIC, **kw))
        unit.on_window(0.0)  # discard the warm-up window
        return unit

    def test_starts_sampling_baseline_with_zero_delay(self) -> None:
        unit = DMSUnit(DMSConfig(mode=DMSMode.DYNAMIC))
        assert unit.current_delay == 0
        assert unit.wants_ams_halted
        unit.on_window(0.5)  # warm-up discard: still sampling baseline
        assert unit.current_delay == 0
        assert unit.wants_ams_halted

    def test_search_up_until_threshold(self) -> None:
        unit = self.make()
        unit.on_window(0.80)  # baseline window: BWUTIL 0.80
        assert unit.current_delay == 128
        assert not unit.wants_ams_halted
        unit.on_window(0.79)  # >= 0.95*0.80 -> step up
        assert unit.current_delay == 256
        unit.on_window(0.78)
        assert unit.current_delay == 384
        unit.on_window(0.70)  # < 0.76 -> settle on last good (256)
        assert unit.current_delay == 256
        # Settled: healthy windows keep the delay...
        unit.on_window(0.79)
        assert unit.current_delay == 256
        # ...but the settled watchdog steps down on a starved window
        # (application phase change before the next restart).
        unit.on_window(0.10)
        assert unit.current_delay == 128

    def test_caps_at_max_delay(self) -> None:
        unit = self.make(max_delay=256)
        unit.on_window(0.5)  # baseline
        unit.on_window(0.5)  # ok at 128 -> 256
        unit.on_window(0.5)  # ok at 256 == max -> settle at 256
        assert unit.current_delay == 256
        unit.on_window(0.5)
        assert unit.current_delay == 256

    def test_phase_restart_seeds_from_recorded_delay(self) -> None:
        unit = self.make(windows_per_phase=6)
        unit.on_window(0.8)  # baseline (window 2 of the phase)
        unit.on_window(0.8)  # ok at 128 -> 256
        unit.on_window(0.5)  # bad at 256 -> settle at 128
        assert unit.current_delay == 128
        unit.on_window(0.8)  # settled window 5
        unit.on_window(0.8)  # window 6: phase restart -> baseline sampling
        assert unit.current_delay == 0
        assert unit.wants_ams_halted
        unit.on_window(0.8)  # new baseline; search restarts at recorded 128
        assert unit.current_delay == 128

    def test_search_down_when_start_too_high(self) -> None:
        # Recorded delay 256 from a previous phase; new phase's app phase
        # cannot tolerate it -> walk down until BWUTIL recovers.
        unit = self.make(windows_per_phase=32)
        unit.on_window(0.8)  # baseline -> start at 128
        unit.on_window(0.5)  # bad at 128 immediately -> search down
        assert unit.current_delay == 0.0
        unit.on_window(0.8)  # ok at 0 -> settle at 0
        assert unit.current_delay == 0.0

    def test_zero_baseline_always_ok(self) -> None:
        unit = self.make()
        unit.on_window(0.0)  # baseline 0: any BWUTIL passes the threshold
        unit.on_window(0.0)
        assert unit.current_delay == 256


class TestAMSUnit:
    def queue_with_row(self, n: int, *, writes: int = 0,
                       approximable: bool = True) -> PendingQueue:
        q = PendingQueue(32, 16)
        for i in range(n):
            q.offer(
                make_request(bank=0, row=5, col=i, approximable=approximable),
                float(i),
            )
        for i in range(writes):
            q.offer(
                make_request(bank=0, row=5, col=n + i, is_write=True), 50.0
            )
        return q

    def make(self, **kw) -> AMSUnit:
        kw.setdefault("mode", AMSMode.STATIC)
        kw.setdefault("warmup_fills", 0)
        return AMSUnit(AMSConfig(**kw))

    def feed_reads(self, unit: AMSUnit, n: int) -> None:
        for _ in range(n):
            unit.on_read_arrival()

    def test_off_mode_never_drops(self) -> None:
        unit = AMSUnit(AMSConfig(mode=AMSMode.OFF))
        q = self.queue_with_row(1)
        assert not unit.may_drop(q, 0, 5)

    def test_drops_low_rbl_row(self) -> None:
        unit = self.make(static_th_rbl=2)
        self.feed_reads(unit, 100)
        assert unit.may_drop(self.queue_with_row(2), 0, 5)

    def test_respects_th_rbl(self) -> None:
        unit = self.make(static_th_rbl=2)
        self.feed_reads(unit, 100)
        assert not unit.may_drop(self.queue_with_row(3), 0, 5)

    def test_rejects_rows_with_writes(self) -> None:
        unit = self.make(static_th_rbl=8)
        self.feed_reads(unit, 100)
        assert not unit.may_drop(self.queue_with_row(2, writes=1), 0, 5)

    def test_rejects_unannotated_reads(self) -> None:
        unit = self.make(static_th_rbl=8)
        self.feed_reads(unit, 100)
        q = self.queue_with_row(2, approximable=False)
        assert not unit.may_drop(q, 0, 5)

    def test_coverage_bound_enforced(self) -> None:
        unit = self.make(static_th_rbl=8, coverage_limit=0.10)
        self.feed_reads(unit, 100)
        unit.on_drop(9)
        # Dropping 2 more would make 11/100 > 10 %.
        assert not unit.may_drop(self.queue_with_row(2), 0, 5)
        assert unit.may_drop(self.queue_with_row(1), 0, 5)

    def test_warmup_gates_drops(self) -> None:
        unit = self.make(warmup_fills=10)
        self.feed_reads(unit, 5)
        assert not unit.may_drop(self.queue_with_row(1), 0, 5)
        self.feed_reads(unit, 5)
        assert unit.may_drop(self.queue_with_row(1), 0, 5)

    def test_halted_blocks_drops(self) -> None:
        unit = self.make()
        self.feed_reads(unit, 100)
        unit.set_halted(True)
        assert not unit.may_drop(self.queue_with_row(1), 0, 5)
        unit.set_halted(False)
        assert unit.may_drop(self.queue_with_row(1), 0, 5)

    def test_coverage_property(self) -> None:
        unit = self.make()
        assert unit.coverage == 0.0
        self.feed_reads(unit, 50)
        unit.on_drop(5)
        assert unit.coverage == pytest.approx(0.1)


class TestDynAMS:
    def make(self) -> AMSUnit:
        return AMSUnit(
            AMSConfig(mode=AMSMode.DYNAMIC, warmup_fills=0,
                      coverage_limit=0.10)
        )

    def test_threshold_decreases_when_coverage_met(self) -> None:
        unit = self.make()
        assert unit.th_rbl == 8
        for _ in range(100):
            unit.on_read_arrival()
        unit.on_drop(10)  # window coverage 10 % -> lower the threshold
        unit.on_window()
        assert unit.th_rbl == 7

    def test_threshold_increases_when_starved(self) -> None:
        unit = self.make()
        for _ in range(3):  # drive down to 5 first
            for _ in range(100):
                unit.on_read_arrival()
            unit.on_drop(10)
            unit.on_window()
        assert unit.th_rbl == 5
        for _ in range(100):
            unit.on_read_arrival()
        unit.on_drop(1)  # 1 % << 10 % -> raise
        unit.on_window()
        assert unit.th_rbl == 6

    def test_threshold_bounded(self) -> None:
        unit = self.make()
        for _ in range(20):
            for _ in range(100):
                unit.on_read_arrival()
            unit.on_drop(10)
            unit.on_window()
        assert unit.th_rbl == 1
        for _ in range(20):
            for _ in range(100):
                unit.on_read_arrival()
            unit.on_window()
        assert unit.th_rbl == 8

    def test_idle_window_keeps_threshold(self) -> None:
        unit = self.make()
        unit.on_window()  # no reads in the window
        assert unit.th_rbl == 8


class TestOverheadModel:
    def test_paper_totals(self) -> None:
        from repro.sched import full_lazy_scheduler_overhead

        budget = full_lazy_scheduler_overhead()
        assert budget.multipliers == 1
        assert budget.adders == 11
        assert budget.muxes == 1
        assert budget.comparators == 3
        assert budget.buffer_bits == 498

    def test_per_scheme_overheads_are_monotone(self) -> None:
        from repro.config import (
            baseline_scheduler,
            dyn_combo,
            static_ams,
            static_combo,
            static_dms,
        )
        from repro.sched import scheduler_overhead

        base = scheduler_overhead(baseline_scheduler())
        assert base.buffer_bits == 0 and base.adders == 0
        dms = scheduler_overhead(static_dms())
        ams = scheduler_overhead(static_ams())
        combo = scheduler_overhead(static_combo())
        full = scheduler_overhead(dyn_combo())
        assert dms.buffer_bits < combo.buffer_bits
        assert ams.buffer_bits < combo.buffer_bits
        assert combo.buffer_bits < full.buffer_bits == 498
