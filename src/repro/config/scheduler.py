"""Configuration of the lazy memory scheduler (DMS + AMS + VP).

The paper evaluates nine schemes built from three switches:

* DMS mode: off / static (X = 128) / dynamic (BWUTIL-profiled, X in [0, 2048])
* AMS mode: off / static (Th_RBL = 8) / dynamic (coverage-profiled, Th in [1, 8])
* value predictor: nearest-address L2 line (default), plus ablation variants
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class DMSMode(enum.Enum):
    """Delayed memory scheduling variant."""

    OFF = "off"
    STATIC = "static"
    DYNAMIC = "dynamic"


class AMSMode(enum.Enum):
    """Approximate memory scheduling variant."""

    OFF = "off"
    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclass(frozen=True, slots=True)
class DMSConfig:
    """Delayed-memory-scheduling knobs (paper Section IV-B)."""

    mode: DMSMode = DMSMode.OFF
    #: Static delay, and the step/start of the dynamic search (mem cycles).
    static_delay: int = 128
    delay_step: int = 128
    max_delay: int = 2048
    min_delay: int = 0
    #: Profiling window length, memory cycles.
    window_cycles: int = 4096
    #: Restart the dynamic search every this many windows (phase capture).
    windows_per_phase: int = 32
    #: Keep BWUTIL at or above this fraction of the sampled baseline.
    bwutil_threshold: float = 0.95

    def validate(self) -> None:
        """Check ranges; raise :class:`ConfigError` on violation."""
        if self.static_delay < 0 or self.min_delay < 0:
            raise ConfigError("delays must be non-negative")
        if self.max_delay < self.min_delay:
            raise ConfigError("max_delay must be >= min_delay")
        if self.delay_step <= 0 or self.window_cycles <= 0:
            raise ConfigError("delay_step and window_cycles must be positive")
        if not 0.0 < self.bwutil_threshold <= 1.0:
            raise ConfigError("bwutil_threshold must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class AMSConfig:
    """Approximate-memory-scheduling knobs (paper Section IV-C)."""

    mode: AMSMode = AMSMode.OFF
    #: Static RBL threshold; also the upper bound of the dynamic search.
    static_th_rbl: int = 8
    min_th_rbl: int = 1
    max_th_rbl: int = 8
    #: User-defined prediction coverage bound (fraction of global reads).
    coverage_limit: float = 0.10
    #: Profiling window length for Dyn-AMS, memory cycles.
    window_cycles: int = 4096
    #: Number of L2 fills before AMS activates (paper: cache warm-up).
    warmup_fills: int = 64

    def validate(self) -> None:
        """Check ranges; raise :class:`ConfigError` on violation."""
        if not 1 <= self.min_th_rbl <= self.max_th_rbl:
            raise ConfigError("Th_RBL range must satisfy 1 <= min <= max")
        if not self.min_th_rbl <= self.static_th_rbl <= self.max_th_rbl:
            raise ConfigError("static_th_rbl must lie within [min, max]")
        if not 0.0 < self.coverage_limit <= 1.0:
            raise ConfigError("coverage_limit must be in (0, 1]")
        if self.window_cycles <= 0:
            raise ConfigError("window_cycles must be positive")
        if self.warmup_fills < 0:
            raise ConfigError("warmup_fills must be non-negative")


@dataclass(frozen=True, slots=True)
class VPConfig:
    """Value prediction unit knobs (paper Section IV-D)."""

    #: Kind of predictor: "nearest_line" (paper), "last_value", "zero",
    #: or "oracle" (exact values — isolates scheduling effects in ablations).
    kind: str = "nearest_line"
    #: How many sets on each side of the home set to search in the L2 slice.
    search_radius_sets: int = 2

    def validate(self) -> None:
        """Check ranges; raise :class:`ConfigError` on violation."""
        if self.kind not in {"nearest_line", "last_value", "zero", "oracle"}:
            raise ConfigError(f"unknown value predictor kind: {self.kind!r}")
        if self.search_radius_sets < 0:
            raise ConfigError("search_radius_sets must be non-negative")


@dataclass(frozen=True, slots=True)
class SchedulerConfig:
    """Full lazy-scheduler configuration (one per simulated system).

    ``arbiter``/``row_policy`` select the *baseline* policy underneath
    DMS/AMS: the paper's baseline is FR-FCFS with an open-row policy;
    plain FCFS and close-row variants are provided for the ablations
    that justify that choice (Section II-C).
    """

    dms: DMSConfig = DMSConfig()
    ams: AMSConfig = AMSConfig()
    vp: VPConfig = VPConfig()
    #: Candidate-selector name from the policy registry
    #: (:mod:`repro.sched.policies`): "frfcfs" (row hits first), "fcfs"
    #: (strict age order per bank), or "frfcfs-cap" (FR-FCFS with a
    #: row-hit streak cap).
    arbiter: str = "frfcfs"
    #: "open" (keep rows open) or "close" (precharge when no hits pend).
    row_policy: str = "open"
    #: Consecutive row hits one bank may serve while an older row-miss
    #: request waits for it (the "frfcfs-cap" selector only).
    hit_streak_cap: int = 4

    def validate(self) -> None:
        """Validate all sub-configurations."""
        self.dms.validate()
        self.ams.validate()
        self.vp.validate()
        # The arbiter names the candidate selector; consult the plugin
        # registry (imported lazily — policies import this module).
        from repro.sched.policies import selector_names

        if self.arbiter not in selector_names():
            raise ConfigError(
                f"unknown arbiter: {self.arbiter!r}; "
                f"registered: {', '.join(selector_names())}"
            )
        if self.row_policy not in {"open", "close"}:
            raise ConfigError(f"unknown row policy: {self.row_policy!r}")
        if self.hit_streak_cap <= 0:
            raise ConfigError("hit_streak_cap must be positive")

    @property
    def name(self) -> str:
        """Human-readable scheme name matching the paper's legend."""
        parts = []
        if self.dms.mode is DMSMode.STATIC:
            parts.append(f"Static-DMS({self.dms.static_delay})")
        elif self.dms.mode is DMSMode.DYNAMIC:
            parts.append("Dyn-DMS")
        if self.ams.mode is AMSMode.STATIC:
            parts.append(f"Static-AMS({self.ams.static_th_rbl})")
        elif self.ams.mode is AMSMode.DYNAMIC:
            parts.append("Dyn-AMS")
        return " + ".join(parts) if parts else "Baseline"


def baseline_scheduler() -> SchedulerConfig:
    """FR-FCFS with no delay and no approximation."""
    return SchedulerConfig()


def static_dms(delay: int = 128) -> SchedulerConfig:
    """Static-DMS with the given delay (paper default 128)."""
    return SchedulerConfig(
        dms=DMSConfig(mode=DMSMode.STATIC, static_delay=delay)
    )


def dyn_dms() -> SchedulerConfig:
    """Dyn-DMS with the paper's profiling parameters."""
    return SchedulerConfig(dms=DMSConfig(mode=DMSMode.DYNAMIC))


def static_ams(th_rbl: int = 8, coverage: float = 0.10) -> SchedulerConfig:
    """Static-AMS with the given threshold (paper default AMS(8), 10 %)."""
    return SchedulerConfig(
        ams=AMSConfig(
            mode=AMSMode.STATIC, static_th_rbl=th_rbl, coverage_limit=coverage
        )
    )


def dyn_ams(coverage: float = 0.10) -> SchedulerConfig:
    """Dyn-AMS with the paper's profiling parameters."""
    return SchedulerConfig(
        ams=AMSConfig(mode=AMSMode.DYNAMIC, coverage_limit=coverage)
    )


def static_combo(delay: int = 128, th_rbl: int = 8) -> SchedulerConfig:
    """Static-DMS + Static-AMS."""
    return SchedulerConfig(
        dms=DMSConfig(mode=DMSMode.STATIC, static_delay=delay),
        ams=AMSConfig(mode=AMSMode.STATIC, static_th_rbl=th_rbl),
    )


def dyn_combo() -> SchedulerConfig:
    """Dyn-DMS + Dyn-AMS (the paper's headline scheme)."""
    return SchedulerConfig(
        dms=DMSConfig(mode=DMSMode.DYNAMIC),
        ams=AMSConfig(mode=AMSMode.DYNAMIC),
    )
