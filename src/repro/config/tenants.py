"""Multi-tenant simulation configuration.

A :class:`TenantMixSpec` describes N named tenants sharing one simulated
memory system: each tenant is a registered workload plus a *class*
describing its service contract —

* ``latency`` — latency-sensitive foreground traffic; never delayed by
  DMS gating, never dropped by AMS (its accesses are stripped of the
  approximable annotation before they reach a controller);
* ``bandwidth`` — throughput-oriented traffic; DMS gating applies but
  AMS never drops it;
* ``approx-batch`` — best-effort batch traffic that tolerates
  approximation; the only class whose reads AMS may drop.

The mix rides on :class:`~repro.sim.spec.SimSpec` as the optional
``tenants`` section, so it flows through the codec, the v4 full-payload
cache key, and ``simulate_spec`` automatically. ``arbiter`` names a
policy from the *arbiter* registry (:mod:`repro.sched.policies`), the
fourth string-keyed registry alongside selectors/gates/drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError

#: The three tenant service classes, strongest contract first.
TENANT_CLASSES = ("latency", "bandwidth", "approx-batch")

#: Classes whose requests the AMS drop policy may touch.
APPROXIMABLE_CLASSES = ("approx-batch",)

#: Classes exempt from DMS activation gating (never aged).
UNGATED_CLASSES = ("latency",)


def tenant_class_for_priority(priority: int) -> str:
    """Default tenant class for an HTTP job ``priority``.

    The service's priority queue and the DRAM arbiter speak the same
    language end to end: high-priority jobs (``>= 2``) map to the
    ``latency`` contract, normal jobs (``1``) to ``bandwidth``, and
    background jobs (``<= 0``) to ``approx-batch``.
    """
    if priority >= 2:
        return "latency"
    if priority >= 1:
        return "bandwidth"
    return "approx-batch"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a registered workload under a service class."""

    #: Display name (also the per-tenant report key); must be unique.
    name: str
    #: Registered workload name (``repro.workloads.registry``).
    workload: str
    #: Service class from :data:`TENANT_CLASSES`.
    tenant_class: str = "bandwidth"
    #: Per-tenant workload scale multiplier (on top of the run scale).
    scale: float = 1.0
    #: Per-tenant trace seed; ``None`` inherits the run seed.
    seed: Optional[int] = None

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.tenant_class not in TENANT_CLASSES:
            raise ConfigError(
                f"unknown tenant class {self.tenant_class!r} for tenant "
                f"{self.name!r} (valid: {', '.join(TENANT_CLASSES)})"
            )
        if self.scale <= 0:
            raise ConfigError(
                f"tenant {self.name!r} scale must be positive"
            )

    @property
    def approximable(self) -> bool:
        """Whether AMS may drop this tenant's reads."""
        return self.tenant_class in APPROXIMABLE_CLASSES

    @property
    def gated(self) -> bool:
        """Whether DMS activation gating applies to this tenant."""
        return self.tenant_class not in UNGATED_CLASSES


@dataclass(frozen=True)
class TenantMixSpec:
    """N tenants plus the arbiter that shares the controller among them."""

    #: The tenant roster; order defines the stable ``tenant_id`` space.
    tenants: tuple[TenantSpec, ...] = field(default_factory=tuple)
    #: Arbiter registry name (``shared-frfcfs`` / ``tenant-priority`` /
    #: ``batch-fair``).
    arbiter: str = "shared-frfcfs"

    def validate(self) -> None:
        if not self.tenants:
            raise ConfigError("a tenant mix needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(
                f"tenant names must be unique, got {names!r}"
            )
        for tenant in self.tenants:
            tenant.validate()
        from repro.sched.policies import arbiter_names

        if self.arbiter not in arbiter_names():
            raise ConfigError(
                f"unknown arbiter {self.arbiter!r}; registered: "
                + ", ".join(arbiter_names())
            )

    @property
    def multi(self) -> bool:
        """True when tenant machinery must actually engage (N >= 2).

        A single-tenant mix is pure composition sugar: it must simulate
        field-identically to the plain single-workload run, so nothing
        tenant-specific attaches for it.
        """
        return len(self.tenants) >= 2

    def classes(self) -> tuple[str, ...]:
        """Tenant classes in roster (tenant_id) order."""
        return tuple(t.tenant_class for t in self.tenants)
