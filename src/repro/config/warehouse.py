"""Results-warehouse configuration (the analytics layer's knobs).

:class:`WarehouseSpec` pins every statistics and gating parameter the
analytics subsystem (:mod:`repro.analytics`) consumes — the sqlite
path, the baseline scheme savings are computed against, the bootstrap
settings behind every confidence interval, and the regression-gate
thresholds. It is a frozen dataclass round-trippable through the
generic config codec (:mod:`repro.config.codec`), so a pinned analysis
configuration can live in JSON next to the snapshot it gates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Metrics the regression gate tests by default (paper headline four).
DEFAULT_GATE_METRICS = ("row_energy_nj", "app_error", "fit", "ipc")


@dataclass(frozen=True, slots=True)
class WarehouseSpec:
    """Analytics settings: store location, statistics, gate thresholds."""

    #: Sqlite file; None defers to ``$REPRO_WAREHOUSE`` / the default.
    db_path: str | None = None
    #: Cache directory ingest walks; None defers to the cache default.
    cache_dir: str | None = None
    #: Scheme label row-energy savings are computed against.
    baseline_scheme: str = "Baseline"
    #: Bootstrap CI confidence level.
    confidence: float = 0.95
    #: Bootstrap resample count.
    resamples: int = 1000
    #: Significance level of the regression gate (Holm-adjusted).
    alpha: float = 0.05
    #: Minimum worse-direction relative mean delta to flag at all.
    min_effect: float = 0.01
    #: Seeds per side required before the Mann–Whitney test applies;
    #: below it the gate is effect-size-only ("delta-only").
    min_samples: int = 4
    #: Metrics the gate tests.
    metrics: tuple[str, ...] = DEFAULT_GATE_METRICS

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an unusable configuration."""
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError(
                "warehouse.confidence must be in (0, 1), got "
                f"{self.confidence}"
            )
        if self.resamples < 1:
            raise ConfigError(
                f"warehouse.resamples must be >= 1, got {self.resamples}"
            )
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(
                f"warehouse.alpha must be in (0, 1), got {self.alpha}"
            )
        if self.min_effect < 0.0:
            raise ConfigError(
                "warehouse.min_effect must be >= 0, got "
                f"{self.min_effect}"
            )
        if self.min_samples < 1:
            raise ConfigError(
                "warehouse.min_samples must be >= 1, got "
                f"{self.min_samples}"
            )
        if not self.metrics:
            raise ConfigError("warehouse.metrics must not be empty")
        from repro.analytics.results import METRIC_DIRECTIONS

        for metric in self.metrics:
            if metric not in METRIC_DIRECTIONS:
                raise ConfigError(
                    f"warehouse.metrics: unknown metric {metric!r} "
                    f"(known: {sorted(METRIC_DIRECTIONS)})"
                )
        if not self.baseline_scheme:
            raise ConfigError("warehouse.baseline_scheme must be set")
