"""DRAM energy model parameters.

The paper's central metric is *row energy*: the energy of the activate,
restore, and precharge operations performed every time a row is opened. It
is proportional to the number of activations, with a technology-dependent
per-activation cost. The paper additionally projects memory-system energy
for HBM1/HBM2, where row energy constitutes ~50 % / ~25 % of total DRAM
energy at baseline (Section V, "Effect on Memory Energy and Peak
Bandwidth").

We therefore model three components:

* ``e_act_nj``        — energy per activation (ACT + restore + PRE), nJ
* ``e_rd_nj/e_wr_nj`` — energy per 128-byte column access, nJ
* ``background_mw``   — static + refresh power per channel, mW

Absolute values are representative of GDDR5-class parts (cf. Chatterjee et
al., HPCA 2017); the reproduced results are all *normalized* so only the
ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class DRAMEnergyParams:
    """Per-operation energy costs for one DRAM technology."""

    technology: str = "GDDR5"
    e_act_nj: float = 3.0
    e_rd_nj: float = 1.2
    e_wr_nj: float = 1.3
    background_mw: float = 150.0
    #: Energy of one all-bank refresh command, nJ.
    e_ref_nj: float = 25.0
    #: Fraction of total DRAM energy attributable to row operations at the
    #: paper's baseline row-buffer locality. Used for the HBM projections.
    baseline_row_energy_fraction: float = 0.35

    def validate(self) -> None:
        """Check ranges; raise :class:`ConfigError` on violation."""
        if self.e_act_nj <= 0 or self.e_rd_nj <= 0 or self.e_wr_nj <= 0:
            raise ConfigError("per-operation energies must be positive")
        if self.background_mw < 0:
            raise ConfigError("background power must be non-negative")
        if not 0.0 < self.baseline_row_energy_fraction < 1.0:
            raise ConfigError(
                "baseline_row_energy_fraction must be in (0, 1), got "
                f"{self.baseline_row_energy_fraction}"
            )


def gddr5_energy() -> DRAMEnergyParams:
    """GDDR5 energy parameters (row energy ~25-50 % of DRAM energy)."""
    return DRAMEnergyParams()


def hbm1_energy() -> DRAMEnergyParams:
    """HBM1: row energy is ~50 % of memory system energy (paper Section V)."""
    return DRAMEnergyParams(
        technology="HBM1",
        e_act_nj=2.4,
        e_rd_nj=0.5,
        e_wr_nj=0.55,
        background_mw=90.0,
        baseline_row_energy_fraction=0.50,
    )


def hbm2_energy() -> DRAMEnergyParams:
    """HBM2: row energy is ~25 % of memory system energy (paper Section V)."""
    return DRAMEnergyParams(
        technology="HBM2",
        e_act_nj=1.6,
        e_rd_nj=0.7,
        e_wr_nj=0.75,
        background_mw=110.0,
        baseline_row_energy_fraction=0.25,
    )
