"""Bit-flip fault-injection configuration (the ``faults`` spec section).

Reduced-latency DRAM operation trades reliability for speed: reads
issued with a shortened tRCD sample the sense amplifiers before the
cells have fully restored, and a shortened tRP precharges bitlines
before they settle (Chang et al., "Understanding Reduced-Latency DRAM",
and the Flexible-Latency DRAM follow-up quantify exactly this). The
:class:`FaultConfig` here parameterises that trade-off as a per-bit
flip probability per read that *grows exponentially* as tRCD/tRP fall
below their nominal values — faster timing schemes see more raw bit
errors, which the ECC layer (:mod:`repro.dram.ecc`) then corrects,
detects, or silently passes through.

The configuration is part of :class:`~repro.sim.spec.SimSpec` (and
therefore of the content-addressed cache key): two runs differing in
any fault field simulate — and cache — independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

#: Nominal (reference) timings of the Table I GDDR5 baseline; fault
#: probability is defined relative to these.
NOMINAL_TRCD = 12
NOMINAL_TRP = 12


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """Deterministic DRAM read bit-flip model.

    ``p_bit`` is the per-bit flip probability per read *at nominal
    timings*; the effective probability scales by
    ``exp(sensitivity * ((nominal_trcd - tRCD) + (nominal_trp - tRP)))``
    so each cycle shaved off tRCD or tRP multiplies the raw bit-error
    rate — the exponential shape follows the restore-truncation
    measurements of the reduced-latency DRAM literature. Timings
    *slower* than nominal reduce the probability symmetrically.
    """

    #: Master switch; False keeps the read path entirely fault-free.
    enabled: bool = False
    #: Per-bit flip probability per read at nominal tRCD/tRP.
    p_bit: float = 1e-9
    #: Global multiplier on the effective probability (sweep knob).
    scale: float = 1.0
    #: Exponent per cycle of tRCD/tRP reduction below nominal.
    sensitivity: float = 0.45
    #: Reference timings the probability is calibrated against.
    nominal_trcd: int = NOMINAL_TRCD
    nominal_trp: int = NOMINAL_TRP

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an unusable configuration."""
        if not 0.0 <= self.p_bit <= 1.0:
            raise ConfigError(
                f"faults.p_bit must be in [0, 1], got {self.p_bit}"
            )
        if self.scale < 0.0:
            raise ConfigError(
                f"faults.scale must be >= 0, got {self.scale}"
            )
        if self.sensitivity < 0.0:
            raise ConfigError(
                "faults.sensitivity must be >= 0, got "
                f"{self.sensitivity}"
            )
        if self.nominal_trcd <= 0 or self.nominal_trp <= 0:
            raise ConfigError(
                "faults.nominal_trcd/nominal_trp must be positive"
            )

    # ------------------------------------------------------------------
    def effective_p_bit(self, trcd: float, trp: float) -> float:
        """Per-bit flip probability at the given timings (capped at 0.5).

        Lower tRCD/tRP than nominal raises the probability
        exponentially; higher lowers it. Disabled or zero-probability
        configurations return exactly 0.0 so the injector can be
        skipped entirely.
        """
        if not self.enabled:
            return 0.0
        base = self.p_bit * self.scale
        if base <= 0.0:
            return 0.0
        shortfall = (self.nominal_trcd - trcd) + (self.nominal_trp - trp)
        return min(0.5, base * math.exp(self.sensitivity * shortfall))
