"""Generic dataclass <-> JSON-dict codec for configuration trees.

The configuration layer is built from frozen dataclasses whose fields
are primitives, enums, or further such dataclasses. That regularity
makes a schema-free codec possible: :func:`encode` walks values into
plain JSON types and :func:`decode` rebuilds them from the resolved type
hints — no per-class ``to_dict``/``from_dict`` boilerplate, and new
config fields serialise automatically (with dataclass defaults filling
in anything a stored payload predates).

Used by :class:`repro.sim.spec.SimSpec` and anything else that needs a
faithful round trip of :class:`~repro.config.gpu.GPUConfig` /
:class:`~repro.config.scheduler.SchedulerConfig` trees.
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from typing import Any, Optional, TypeVar, Union

from repro.errors import ConfigError

T = TypeVar("T")


def encode(value: Any) -> Any:
    """JSON-serialisable form of a config value (recursively)."""
    if value is None:
        return None
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        return {str(k): encode(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)):
        return value
    raise ConfigError(
        f"cannot encode {type(value).__name__!r} values: {value!r}"
    )


def _strip_optional(hint: Any) -> Any:
    """``Optional[X]`` / ``X | None`` -> ``X``; other hints unchanged."""
    origin = typing.get_origin(hint)
    if origin is Union or (
        origin is not None and origin.__module__ == "types"
        and origin.__name__ == "UnionType"
    ):
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        if len(args) == 1:
            return args[0]
    return hint


def _join(path: str, key: str) -> str:
    """Extend a dotted key path (``"scheduler" + "dms" -> "scheduler.dms"``)."""
    return f"{path}.{key}" if path else key


def _at(path: str) -> str:
    """Human form of a key path for error messages."""
    return f" at {path!r}" if path else ""


def _decode_value(hint: Any, data: Any, path: str = "") -> Any:
    if data is None:
        return None
    hint = _strip_optional(hint)
    if isinstance(hint, type):
        if dataclasses.is_dataclass(hint):
            return decode(hint, data, path=path)
        if issubclass(hint, enum.Enum):
            try:
                return hint(data)
            except ValueError:
                valid = ", ".join(repr(m.value) for m in hint)
                raise ConfigError(
                    f"invalid {hint.__name__}{_at(path)}: {data!r} "
                    f"(valid: {valid})"
                ) from None
        if hint is float and isinstance(data, int):
            return float(data)
        if hint in (int, float, str, bool) and not isinstance(data, hint):
            raise ConfigError(
                f"wrong type{_at(path)}: expected {hint.__name__}, "
                f"got {type(data).__name__} ({data!r})"
            )
    origin = typing.get_origin(hint)
    if origin in (list, tuple) and isinstance(data, list):
        args = typing.get_args(hint)
        item_hint = args[0] if args else Any
        items = [
            _decode_value(item_hint, item, f"{path}[{i}]")
            for i, item in enumerate(data)
        ]
        return tuple(items) if origin is tuple else items
    return data


def decode(cls: type[T], data: Any, *, path: str = "") -> T:
    """Rebuild a dataclass ``cls`` from :func:`encode` output.

    Unknown keys in ``data`` are rejected (they signal a payload from a
    newer schema — silently dropping them would decode to a *different*
    configuration than the one stored); missing keys fall back to the
    dataclass defaults. Every :class:`ConfigError` raised below names
    the full dotted key path of the offending value (``path`` seeds the
    prefix — e.g. ``"scheduler"`` when decoding the scheduler subtree of
    a :class:`~repro.sim.spec.SimSpec` wire payload), so a client
    submitting a malformed nested payload is told *which* key to fix,
    not just which dataclass choked.
    """
    if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
        raise ConfigError(f"decode target must be a dataclass, got {cls!r}")
    if not isinstance(data, dict):
        raise ConfigError(
            f"cannot decode {cls.__name__}{_at(path)} from "
            f"{type(data).__name__} ({data!r})"
        )
    hints = typing.get_type_hints(cls)
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown {cls.__name__} field(s) in payload: "
            + ", ".join(_join(path, k) for k in sorted(unknown))
        )
    kwargs = {
        name: _decode_value(hints.get(name, Any), value, _join(path, name))
        for name, value in data.items()
    }
    return cls(**kwargs)


def decode_optional(
    cls: type[T], data: Any, *, path: str = ""
) -> Optional[T]:
    """Like :func:`decode` but maps ``None`` through."""
    if data is None:
        return None
    return decode(cls, data, path=path)
