"""DRAM timing parameters.

All values are in *memory clock cycles* (924 MHz for the baseline GDDR5
configuration of Table I in the paper). The parameter names follow the
Hynix GDDR5 datasheet nomenclature used by the paper:

========  ==================================================================
tCL       CAS latency: column read command to first data beat
tRCD      row-to-column delay: ACT to first column command to that bank
tRP       row precharge: PRE to next ACT to the same bank
tRC       row cycle: minimum ACT-to-ACT interval for the same bank
tRAS      row active time: ACT to PRE for the same bank
tCCD      column-to-column delay between accesses in the same bank group
tRRD      ACT-to-ACT delay between *different* banks of the same channel
tCDLR     last write data to column read command, same bank (write-to-read)
tWR       write recovery: last write data to PRE, same bank
tCWL      CAS write latency: column write command to first data beat
tBURST    data bus occupancy of one 128-byte access (BL8, DDR => 4 cycles)
tREFI     average interval between all-bank refresh commands
tRFC      refresh cycle time: REF blocks the whole channel this long
========  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class DRAMTimings:
    """Timing constraints for one DRAM technology, in memory cycles."""

    tCL: int = 12
    tRCD: int = 12
    tRP: int = 12
    tRC: int = 40
    tRAS: int = 28
    tCCD: int = 2
    tRRD: int = 6
    tCDLR: int = 5
    tWR: int = 12
    tCWL: int = 4
    tBURST: int = 4
    tREFI: int = 3600
    tRFC: int = 88

    def validate(self) -> None:
        """Check internal consistency; raise :class:`ConfigError` if broken."""
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if self.tRC < self.tRAS + self.tRP:
            raise ConfigError(
                f"tRC ({self.tRC}) must be >= tRAS + tRP "
                f"({self.tRAS} + {self.tRP})"
            )
        if self.tRAS < self.tRCD:
            raise ConfigError(
                f"tRAS ({self.tRAS}) must be >= tRCD ({self.tRCD})"
            )
        if self.tREFI <= self.tRFC:
            raise ConfigError(
                f"tREFI ({self.tREFI}) must exceed tRFC ({self.tRFC})"
            )


def gddr5_timings() -> DRAMTimings:
    """Hynix GDDR5 timings from Table I of the paper."""
    return DRAMTimings()


def hbm1_timings() -> DRAMTimings:
    """HBM generation-1 timings (500 MHz class, scaled to model cycles).

    HBM runs a slower clock with wider interfaces; in this model we keep the
    Table I command timings but stretch the row cycle slightly, which is
    adequate because the paper's HBM results only re-weight the *energy*
    breakdown (row energy ~50 % of DRAM energy for HBM1).
    """
    return DRAMTimings(tCL=14, tRCD=14, tRP=14, tRC=47, tRAS=33)


def hbm2_timings() -> DRAMTimings:
    """HBM generation-2 timings (same modelling caveat as :func:`hbm1_timings`)."""
    return DRAMTimings(tCL=14, tRCD=14, tRP=14, tRC=45, tRAS=31)
