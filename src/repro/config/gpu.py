"""Top-level GPU configuration (Table I of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.address import AddressMapping
from repro.config.energy import DRAMEnergyParams, gddr5_energy
from repro.config.timing import DRAMTimings, gddr5_timings
from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class L2Config:
    """Per-memory-partition L2 cache slice (Table I: 128 KB, 8-way, 128 B)."""

    size_bytes: int = 128 * 1024
    associativity: int = 8
    line_bytes: int = 128
    mshr_entries: int = 256
    #: L2 lookup latency in core cycles (tag + data access).
    hit_latency_core: int = 32

    @property
    def num_sets(self) -> int:
        """Number of cache sets in this slice."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    def validate(self) -> None:
        """Check geometry; raise :class:`ConfigError` on violation."""
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigError("L2 size must be a whole number of sets")
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(
                f"L2 set count must be a power of two, got {self.num_sets}"
            )
        if self.mshr_entries <= 0:
            raise ConfigError("MSHR count must be positive")


@dataclass(frozen=True, slots=True)
class GPUConfig:
    """The simulated GPU: clocks, SM array, memory system geometry.

    Defaults reproduce Table I: 30 SMs at 1400 MHz, 48 warps/SM, 6 GDDR5
    memory controllers at 924 MHz with FR-FCFS and a 128-entry pending queue.
    """

    num_sms: int = 30
    max_warps_per_sm: int = 48
    threads_per_warp: int = 32
    core_clock_mhz: float = 1400.0
    mem_clock_mhz: float = 924.0
    #: One-way interconnect latency, core cycles (crossbar + queuing).
    interconnect_latency_core: int = 16
    pending_queue_size: int = 128
    #: Model all-bank refresh (off by default; see DESIGN.md §5).
    refresh_enabled: bool = False
    #: Ops a warp may have in flight (1 = per-op memory barrier; >1 adds
    #: scoreboard-style memory-level parallelism per warp).
    max_outstanding_ops_per_warp: int = 1
    l2: L2Config = field(default_factory=L2Config)
    mapping: AddressMapping = field(default_factory=AddressMapping)
    timings: DRAMTimings = field(default_factory=gddr5_timings)
    energy: DRAMEnergyParams = field(default_factory=gddr5_energy)

    @property
    def core_to_mem_ratio(self) -> float:
        """Core cycles per memory cycle (~1.515 for Table I)."""
        return self.core_clock_mhz / self.mem_clock_mhz

    def core_to_mem(self, core_cycles: float) -> float:
        """Convert a duration from core cycles to memory cycles."""
        return core_cycles / self.core_to_mem_ratio

    def mem_to_core(self, mem_cycles: float) -> float:
        """Convert a duration from memory cycles to core cycles."""
        return mem_cycles * self.core_to_mem_ratio

    def validate(self) -> None:
        """Validate the whole configuration tree."""
        if self.num_sms <= 0 or self.max_warps_per_sm <= 0:
            raise ConfigError("SM and warp counts must be positive")
        if self.core_clock_mhz <= 0 or self.mem_clock_mhz <= 0:
            raise ConfigError("clock frequencies must be positive")
        if self.pending_queue_size <= 0:
            raise ConfigError("pending queue size must be positive")
        if self.max_outstanding_ops_per_warp <= 0:
            raise ConfigError(
                "max_outstanding_ops_per_warp must be positive"
            )
        self.l2.validate()
        self.mapping.validate()
        self.timings.validate()
        self.energy.validate()
