"""Configuration objects for the simulated GPU and the lazy scheduler."""

from repro.config.address import AddressMapping, DecodedAddress
from repro.config.energy import (
    DRAMEnergyParams,
    gddr5_energy,
    hbm1_energy,
    hbm2_energy,
)
from repro.config.gpu import GPUConfig, L2Config
from repro.config.scheduler import (
    AMSConfig,
    AMSMode,
    DMSConfig,
    DMSMode,
    SchedulerConfig,
    VPConfig,
    baseline_scheduler,
    dyn_ams,
    dyn_combo,
    dyn_dms,
    static_ams,
    static_combo,
    static_dms,
)
from repro.config.timing import (
    DRAMTimings,
    gddr5_timings,
    hbm1_timings,
    hbm2_timings,
)
from repro.config.warehouse import WarehouseSpec

__all__ = [
    "AMSConfig",
    "AMSMode",
    "AddressMapping",
    "DMSConfig",
    "DMSMode",
    "DRAMEnergyParams",
    "DRAMTimings",
    "DecodedAddress",
    "GPUConfig",
    "L2Config",
    "SchedulerConfig",
    "VPConfig",
    "WarehouseSpec",
    "baseline_config",
    "baseline_scheduler",
    "dyn_ams",
    "dyn_combo",
    "dyn_dms",
    "gddr5_energy",
    "gddr5_timings",
    "hbm1_energy",
    "hbm1_timings",
    "hbm2_energy",
    "hbm2_timings",
    "static_ams",
    "static_combo",
    "static_dms",
]


def baseline_config() -> GPUConfig:
    """The Table I baseline GPU: 30 SMs, 6 GDDR5 MCs, FR-FCFS, queue 128."""
    config = GPUConfig()
    config.validate()
    return config
