"""Global-to-DRAM address mapping.

Table I: "global linear address space is interleaved among partitions in
chunks of 256 bytes", 6 memory controllers, 16 banks per controller in
4 bank groups. Within a channel, consecutive row-sized regions are spread
across banks (bank-interleaved rows), the common GPU mapping that maximises
bank-level parallelism for streaming accesses.

The decode pipeline for a 128-byte request address is::

    chunk   = addr // 256
    channel = chunk % num_channels
    local   = (chunk // num_channels) * 256 + addr % 256
    row_blk = local // row_size_bytes
    bank    = row_blk % banks_per_channel
    row     = row_blk // banks_per_channel
    column  = (local % row_size_bytes) // access_bytes
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class DecodedAddress:
    """A request address after DRAM mapping."""

    channel: int
    bank: int
    bank_group: int
    row: int
    column: int


@dataclass(frozen=True, slots=True)
class AddressMapping:
    """Address interleaving configuration (Table I defaults).

    ``scheme`` selects the bank-index function:

    * ``"bank_interleaved"`` (default) — consecutive row-sized regions go
      to successive banks, the common GPU mapping;
    * ``"permuted"`` — the bank index is XOR-permuted with the low row
      bits (Zhang et al., MICRO 2000 — cited by the paper as a
      data-placement alternative for reducing row-buffer conflicts),
      which breaks power-of-two-stride bank camping.
    """

    num_channels: int = 6
    banks_per_channel: int = 16
    bank_groups_per_channel: int = 4
    interleave_bytes: int = 256
    row_size_bytes: int = 2048
    access_bytes: int = 128
    scheme: str = "bank_interleaved"

    def validate(self) -> None:
        """Check consistency; raise :class:`ConfigError` on violation."""
        if self.num_channels <= 0:
            raise ConfigError("num_channels must be positive")
        if self.scheme not in {"bank_interleaved", "permuted"}:
            raise ConfigError(f"unknown mapping scheme: {self.scheme!r}")
        if self.scheme == "permuted" and (
            self.banks_per_channel & (self.banks_per_channel - 1)
        ):
            raise ConfigError(
                "the permuted scheme needs a power-of-two bank count"
            )
        if self.banks_per_channel % self.bank_groups_per_channel:
            raise ConfigError(
                "banks_per_channel must be a multiple of "
                "bank_groups_per_channel"
            )
        if self.row_size_bytes % self.access_bytes:
            raise ConfigError("row size must be a multiple of access size")
        if self.interleave_bytes % self.access_bytes:
            raise ConfigError(
                "interleave chunk must be a multiple of access size"
            )

    @property
    def banks_per_group(self) -> int:
        """Number of banks in each bank group."""
        return self.banks_per_channel // self.bank_groups_per_channel

    @property
    def columns_per_row(self) -> int:
        """Number of access-sized columns in one row."""
        return self.row_size_bytes // self.access_bytes

    def bank_group_of(self, bank: int) -> int:
        """Bank group index of ``bank`` (consecutive banks share a group)."""
        return bank // self.banks_per_group

    def _permute(self, bank_raw: int, row: int) -> int:
        if self.scheme == "permuted":
            return bank_raw ^ (row & (self.banks_per_channel - 1))
        return bank_raw

    def channel_of(self, addr: int) -> int:
        """Channel index of ``addr`` alone — the first stage of
        :meth:`decode`, for the request-routing hot path where the
        bank/row fields (and the :class:`DecodedAddress` allocation)
        are not needed."""
        return (addr // self.interleave_bytes) % self.num_channels

    def decode(self, addr: int) -> DecodedAddress:
        """Decode a byte address into (channel, bank, bank group, row, column)."""
        chunk, offset = divmod(addr, self.interleave_bytes)
        channel = chunk % self.num_channels
        local = (chunk // self.num_channels) * self.interleave_bytes + offset
        row_blk, in_row = divmod(local, self.row_size_bytes)
        bank_raw = row_blk % self.banks_per_channel
        row = row_blk // self.banks_per_channel
        bank = self._permute(bank_raw, row)
        return DecodedAddress(
            channel=channel,
            bank=bank,
            bank_group=self.bank_group_of(bank),
            row=row,
            column=in_row // self.access_bytes,
        )

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (returns the lowest address of the access)."""
        # The XOR permutation is an involution for a fixed row.
        bank_raw = self._permute(decoded.bank, decoded.row)
        row_blk = decoded.row * self.banks_per_channel + bank_raw
        local = row_blk * self.row_size_bytes + decoded.column * self.access_bytes
        chunk, offset = divmod(local, self.interleave_bytes)
        return (
            (chunk * self.num_channels + decoded.channel) * self.interleave_bytes
            + offset
        )
