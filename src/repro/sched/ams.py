"""Approximate Memory Scheduling (AMS) — paper Section IV-C.

When the controller is about to open a new row, the AMS unit may instead
*drop* the triggering request (and every pending request to the same row)
so the activation never happens; the value-prediction unit synthesises
their data. The drop criteria, in the paper's order:

1. the oldest pending request is an annotated approximable global read,
   and every pending request to its row is likewise an approximable read;
2. the DMS delay criterion for the request is met (checked by the caller);
3. running coverage (dropped reads / arrived reads) is below the user
   bound (10 %);
4. the row's observed pending RBL is at most ``Th_RBL``.

Variants: **Static-AMS** (Th_RBL = 8) and **Dyn-AMS**, which per
4096-cycle window lowers Th_RBL by 1 while the window's coverage meets the
target (focusing drops on the lowest-RBL rows) and raises it when coverage
starves, bounded to [1, 8].
"""

from __future__ import annotations

from repro.config.scheduler import AMSConfig, AMSMode
from repro.sched.pending_queue import PendingQueue


class AMSUnit:
    """Per-memory-controller AMS logic and coverage ledger."""

    def __init__(self, config: AMSConfig) -> None:
        self.config = config
        self._th_rbl = config.static_th_rbl
        self._halted = False
        # Cumulative ledger (coverage denominator = arrived global reads).
        self.reads_arrived = 0
        self.reads_dropped = 0
        # Per-window counters for Dyn-AMS.
        self._window_reads = 0
        self._window_drops = 0
        #: History of (window_index, th_rbl) for diagnostics/tests.
        self.th_trace: list[tuple[int, int]] = []
        self._window_index = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether AMS is active at all."""
        return self.config.mode is not AMSMode.OFF

    @property
    def th_rbl(self) -> int:
        """The current RBL threshold."""
        return self._th_rbl

    @property
    def coverage(self) -> float:
        """Cumulative prediction coverage (dropped / arrived reads)."""
        if not self.reads_arrived:
            return 0.0
        return self.reads_dropped / self.reads_arrived

    @property
    def window_index(self) -> int:
        """Profiling windows consumed so far (telemetry probe)."""
        return self._window_index

    @property
    def window_reads(self) -> int:
        """Reads arrived in the current (open) window — non-destructive
        telemetry read of the Dyn-AMS per-window ledger."""
        return self._window_reads

    @property
    def window_drops(self) -> int:
        """Reads dropped in the current (open) window — non-destructive
        telemetry read of the Dyn-AMS per-window ledger."""
        return self._window_drops

    @property
    def warmed_up(self) -> bool:
        """AMS stays inactive until the L2 has seen enough traffic to give
        the VP unit donor lines (paper: 'we first warm up the L2 cache')."""
        return self.reads_arrived >= self.config.warmup_fills

    def set_halted(self, halted: bool) -> None:
        """Halt/resume AMS (used while Dyn-DMS samples its baseline)."""
        self._halted = halted

    # ------------------------------------------------------------------
    # Ledger updates
    # ------------------------------------------------------------------
    def on_read_arrival(self) -> None:
        """Count an arriving global read (the coverage denominator)."""
        self.reads_arrived += 1
        self._window_reads += 1

    def on_drop(self, count: int = 1) -> None:
        """Count ``count`` dropped reads."""
        self.reads_dropped += count
        self._window_drops += count

    # ------------------------------------------------------------------
    # Drop decision
    # ------------------------------------------------------------------
    def may_drop(self, queue: PendingQueue, bank: int, row: int) -> bool:
        """Decide whether the prospective activation of ``(bank, row)``
        should be elided by dropping its pending requests."""
        if not self.enabled or self._halted or not self.warmed_up:
            return False
        pending = queue.row_pending_count(bank, row)
        if pending == 0 or pending > self._th_rbl:
            return False
        if not queue.row_all_reads(bank, row):
            return False
        if not queue.row_all_approximable(bank, row):
            return False
        # Coverage bound: dropping `pending` requests must not exceed it.
        if not self.reads_arrived:
            return False
        projected = (self.reads_dropped + pending) / self.reads_arrived
        return projected <= self.config.coverage_limit

    # ------------------------------------------------------------------
    # Dynamic threshold control
    # ------------------------------------------------------------------
    def on_window(self) -> None:
        """Adjust Th_RBL from the window that just finished (Dyn-AMS)."""
        if self.config.mode is not AMSMode.DYNAMIC:
            self._reset_window()
            return
        self._window_index += 1
        if self._window_reads:
            window_coverage = self._window_drops / self._window_reads
            # "Achieving" the user coverage within a window: close enough
            # to the bound that the cumulative cap is the binding limit.
            if window_coverage >= 0.9 * self.config.coverage_limit:
                self._th_rbl = max(self.config.min_th_rbl, self._th_rbl - 1)
            else:
                self._th_rbl = min(self.config.max_th_rbl, self._th_rbl + 1)
        self.th_trace.append((self._window_index, self._th_rbl))
        self._reset_window()

    def _reset_window(self) -> None:
        self._window_reads = 0
        self._window_drops = 0
