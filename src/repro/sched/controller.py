"""The memory controller: FR-FCFS + lazy (DMS/AMS) scheduling.

This module implements the design of paper Fig. 9. Request flow:

* (A) L2 misses arrive via :meth:`MemoryController.submit` and buffer in
  the pending queue.
* (B) The service loop issues FR-FCFS commands: row-buffer hits first
  (oldest hit first), otherwise the oldest request per bank opens its
  row — *gated by the DMS unit* (C): the oldest request must have aged at
  least X cycles before its activation may issue.
* (D/E) When a row switch is about to happen, the AMS unit may instead
  drop the request and all pending same-row requests; the VP unit picks a
  donor line and the requests are answered immediately with approximate
  data.
* (F) Normally-served reads reply when their data burst completes.

The controller is event-driven: the service loop issues every command
whose ready time has arrived and schedules a wake-up at the earliest time
the next command could issue.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config.gpu import GPUConfig
from repro.config.scheduler import AMSMode, DMSMode, SchedulerConfig
from repro.dram.bank import NO_ROW as _NO_ROW
from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest
from repro.sched.ams import AMSUnit
from repro.sched.dms import DMSUnit
from repro.sched.pending_queue import PendingQueue
from repro.sim.engine import Engine
from repro.telemetry.hub import NULL_HUB, MetricsHub
from repro.vp.predictor import DropRecord, ValuePredictor

#: reply_fn(request, approx, donor_line_addr) — called at data-return time.
ReplyFn = Callable[[MemoryRequest, bool, Optional[int]], None]

_EPS = 1e-9

# Candidate kinds, also used as FR-FCFS priority (hits before switches).
# PRE and ACT are the two halves of a row switch, issued as independent
# commands so other banks can use the command bus during tRP/tRRD windows.
_COL = 0
_PRE = 1
_ACT = 1


class MemoryController:
    """One per memory channel."""

    def __init__(
        self,
        channel: Channel,
        *,
        config: GPUConfig,
        sched_config: SchedulerConfig,
        engine: Engine,
        reply_fn: ReplyFn,
        predictor: Optional[ValuePredictor] = None,
        telemetry: Optional[MetricsHub] = None,
    ) -> None:
        self.channel = channel
        self.config = config
        self.engine = engine
        self.reply_fn = reply_fn
        self.predictor = predictor
        # Counters/gauges fire only at low-frequency points (window
        # ticks, drops); with the default NULL_HUB every call is a no-op.
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        self.queue = PendingQueue(
            config.pending_queue_size, config.mapping.banks_per_channel
        )
        self.dms = DMSUnit(sched_config.dms)
        self.ams = AMSUnit(sched_config.ams)
        self.drops: list[DropRecord] = []
        self._next_wake: Optional[float] = None
        self._wake_handle: int = -1
        self._line_bytes = config.l2.line_bytes
        self.ams.set_halted(self.dms.wants_ams_halted)
        # The profiling tick follows the *dynamic* units' window size;
        # a disabled unit's (default) window must not stretch it.
        windows = []
        if sched_config.dms.mode is DMSMode.DYNAMIC:
            windows.append(sched_config.dms.window_cycles)
        if sched_config.ams.mode is AMSMode.DYNAMIC:
            windows.append(sched_config.ams.window_cycles)
        self._window_cycles = min(windows) if windows else max(
            sched_config.dms.window_cycles, sched_config.ams.window_cycles
        )
        self._needs_windows = (
            sched_config.dms.mode is DMSMode.DYNAMIC
            or sched_config.ams.mode is AMSMode.DYNAMIC
        )
        # Profiling ticks are armed lazily on traffic and disarmed only
        # after a *fully idle* window (no arrivals, no bus activity), so
        # an idle simulation can terminate while bursty delayed traffic —
        # whose gaps are part of the utilisation being measured — keeps
        # the profiler running.
        self._ticks_armed = False
        self._window_arrivals = 0
        # Baseline-policy ablations (Section II-C justification).
        self._fcfs = sched_config.arbiter == "fcfs"
        self._close_row = sched_config.row_policy == "close"

    # ------------------------------------------------------------------
    # Ingress (A)
    # ------------------------------------------------------------------
    def submit(self, request: MemoryRequest) -> None:
        """A request (an L2 miss or write-back) arrives at this MC."""
        now = self.engine.now
        request.arrival_time = now
        stats = self.channel.stats
        if request.is_write:
            stats.writes_arrived += 1
        else:
            stats.reads_arrived += 1
            self.ams.on_read_arrival()
        self.queue.offer(request, now)
        self._window_arrivals += 1
        if self._needs_windows and not self._ticks_armed:
            self._ticks_armed = True
            self.engine.at(now + self._window_cycles, self._window_tick)
        self._service()

    # ------------------------------------------------------------------
    # Profiling window tick (Dyn-DMS / Dyn-AMS)
    # ------------------------------------------------------------------
    def _window_tick(self) -> None:
        now = self.engine.now
        busy = self.channel.stats.bus.busy_since_last_query(now)
        bwutil = busy / self._window_cycles
        self.dms.on_window(bwutil)
        self.ams.set_halted(self.dms.wants_ams_halted)
        self.ams.on_window()
        telemetry = self.telemetry
        if telemetry.enabled:
            ch = self.channel.channel_id
            telemetry.inc(f"mc{ch}.profile_ticks")
            telemetry.gauge(f"mc{ch}.profile.bwutil", bwutil)
            telemetry.gauge(f"mc{ch}.dms.x", self.dms.current_delay)
            telemetry.gauge(f"mc{ch}.ams.th_rbl", float(self.ams.th_rbl))
        idle_window = (
            self.queue.empty and self._window_arrivals == 0 and busy == 0.0
        )
        self._window_arrivals = 0
        if idle_window:
            # Disarm after a dead window; the next submit() re-arms.
            self._ticks_armed = False
        else:
            self.engine.at(now + self._window_cycles, self._window_tick)
        # A lowered delay may make gated activations eligible right away.
        self._service()

    # ------------------------------------------------------------------
    # Service loop (B)
    # ------------------------------------------------------------------
    def _service(self) -> None:
        # This is the simulator's hottest loop (profiled): every engine
        # event lands here. Bound methods and flags are hoisted into
        # locals, and the best-candidate fold is inlined (a `consider`
        # closure here costs ~15 % of total runtime in call overhead).
        now = self.engine.now
        channel = self.channel
        queue = self.queue
        banks = channel.banks
        fcfs = self._fcfs
        refresh_enabled = channel.refresh_enabled
        oldest_hit_for = queue.oldest_hit_for
        oldest_for_bank = queue.oldest_for_bank
        column_ready_time = channel.column_ready_time
        precharge_ready_time = channel.precharge_ready_time
        activate_ready_time = channel.activate_ready_time
        earliest_eligible = self.dms.earliest_eligible
        while True:
            if refresh_enabled and channel.refresh_due(now):
                channel.issue_refresh(now)
                continue
            best_key: Optional[tuple[float, int, float]] = None
            best_kind = ""
            best_bank = None
            best_req: Optional[MemoryRequest] = None

            for bank_idx in queue.banks_with_pending():
                bank = banks[bank_idx]
                open_row = bank.open_row
                is_open = open_row != _NO_ROW
                if is_open and not fcfs:
                    hit = oldest_hit_for(bank_idx, open_row)
                    if hit is not None:
                        ready = column_ready_time(bank, hit.is_write, now)
                        key = (ready, _COL, hit.enqueue_time)
                        if best_key is None or key < best_key:
                            best_key, best_kind = key, "col"
                            best_bank, best_req = bank, hit
                        continue
                oldest = oldest_for_bank(bank_idx)
                if oldest is None:
                    continue
                if fcfs and is_open and oldest.row == open_row:
                    # Strict FCFS: only the *oldest* request may issue,
                    # even when younger row hits are pending.
                    ready = column_ready_time(bank, oldest.is_write, now)
                    key = (ready, _COL, oldest.enqueue_time)
                    if best_key is None or key < best_key:
                        best_key, best_kind = key, "col"
                        best_bank, best_req = bank, oldest
                    continue
                # The DMS gate applies to the command that commits to
                # opening a new row: PRE for an open bank, ACT otherwise.
                gate = earliest_eligible(oldest.enqueue_time)
                if is_open:
                    ready = precharge_ready_time(bank, now)
                    if ready < gate:
                        ready = gate
                    key = (ready, _PRE, oldest.enqueue_time)
                    if best_key is None or key < best_key:
                        best_key, best_kind = key, "pre"
                        best_bank, best_req = bank, oldest
                else:
                    ready = activate_ready_time(bank, now)
                    if ready < gate:
                        ready = gate
                    key = (ready, _ACT, oldest.enqueue_time)
                    if best_key is None or key < best_key:
                        best_key, best_kind = key, "act"
                        best_bank, best_req = bank, oldest
            if self._close_row:
                # Close-row policy: precharge any open bank with no
                # pending hits, without waiting for a row-opening request.
                for bank in banks:
                    if not bank.is_open:
                        continue
                    if oldest_hit_for(bank.index, bank.open_row) is not None:
                        continue
                    ready = precharge_ready_time(bank, now)
                    key = (ready, _PRE, float("inf"))
                    if best_key is None or key < best_key:
                        best_key, best_kind = key, "close"
                        best_bank, best_req = bank, None
            if best_key is None:
                return  # queue empty: next arrival re-kicks us
            ready = best_key[0]
            if refresh_enabled:
                ready = min(ready, channel.next_refresh_time())
            if ready > now + _EPS:
                self._wake_at(ready)
                return
            if best_kind == "col":
                self._issue_column(best_bank, best_req)
            elif best_kind == "close":
                channel.issue_precharge(best_bank, now)
            elif best_kind == "pre":
                # Dropping instead of precharging leaves the row open.
                if self.ams.may_drop(queue, best_bank.index, best_req.row):
                    self._drop_row(best_bank.index, best_req.row)
                else:
                    channel.issue_precharge(best_bank, now)
            else:  # "act"
                if self.ams.may_drop(queue, best_bank.index, best_req.row):
                    self._drop_row(best_bank.index, best_req.row)
                else:
                    channel.issue_activate(best_bank, best_req.row, now)

    def _issue_column(self, bank, request: MemoryRequest) -> None:
        now = self.engine.now
        _, data_end = self.channel.issue_column(
            bank, request.is_write, now
        )
        self.queue.remove(request, now)
        if not request.is_write:
            if self.predictor is not None:
                self.predictor.on_fill(request.addr // self._line_bytes)
            self.engine.at(
                data_end, lambda r=request: self.reply_fn(r, False, None)
            )

    def _drop_row(self, bank_idx: int, row: int) -> None:
        """Drop every pending request to (bank, row); VP answers them.

        The paper drops one request per memory cycle; we remove them from
        the queue atomically (avoiding re-decisions on a half-dropped row)
        and stagger the replies one cycle apart to preserve the timing.
        """
        now = self.engine.now
        victims = self.queue.hits_for(bank_idx, row)
        for i, victim in enumerate(victims):
            self.queue.remove(victim, now)
            donor = (
                self.predictor.predict(victim)
                if self.predictor is not None
                else None
            )
            self.drops.append(
                DropRecord(
                    rid=victim.rid,
                    addr=victim.addr,
                    tag=victim.tag,
                    donor_line_addr=donor,
                    time=now + i,
                    channel=self.channel.channel_id,
                )
            )
            self.engine.at(
                now + i,
                lambda r=victim, d=donor: self.reply_fn(r, True, d),
            )
        self.ams.on_drop(len(victims))
        self.channel.stats.requests_dropped += len(victims)
        if self.telemetry.enabled:
            self.telemetry.inc(
                f"mc{self.channel.channel_id}.ams.drops", len(victims)
            )

    # ------------------------------------------------------------------
    def _wake_at(self, time: float) -> None:
        """Ensure a service wake-up at ``time``, keeping one live event.

        A pending earlier-or-equal wake already covers this request.
        When the new time is strictly earlier, the superseded later
        event is *cancelled* instead of being left to fire as a no-op —
        otherwise every tightening of the wake time would accumulate a
        dead callback on the engine heap.
        """
        if self._next_wake is not None:
            if self._next_wake <= time + _EPS:
                return
            self.engine.cancel(self._wake_handle)
        self._next_wake = time
        self._wake_handle = self.engine.at(time, self._on_wake)

    def _on_wake(self) -> None:
        self._next_wake = None
        self._service()

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no requests are pending or deferred at this MC."""
        return self.queue.empty
