"""The memory controller: a thin command-issue engine over the policy
pipeline.

This module implements the design of paper Fig. 9. Request flow:

* (A) L2 misses arrive via :meth:`MemoryController.submit` and buffer in
  the pending queue.
* (B) The *candidate selector* (plugin, ``SchedulerConfig.arbiter``)
  proposes the best next DRAM command — FR-FCFS by default: row-buffer
  hits first (oldest hit first), otherwise the oldest request per bank
  opens its row, *gated by the activation gate* (C): under DMS the
  oldest request must have aged at least X cycles before its activation
  may issue.
* (D/E) When a row switch is about to happen, the *drop policy* (AMS)
  may instead drop the request and all pending same-row requests; the VP
  unit picks a donor line and the requests are answered immediately with
  approximate data.
* (F) Normally-served reads reply when their data burst completes.

The controller is event-driven: the service loop issues every command
whose ready time has arrived and schedules a wake-up at the earliest time
the next command could issue. The policies themselves live in
:mod:`repro.sched.policies`; this class only sequences them and talks to
the channel.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config.gpu import GPUConfig
from repro.config.scheduler import AMSMode, DMSMode, SchedulerConfig
from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest
from repro.sched.pending_queue import PendingQueue
from repro.sched.policies import (
    CandidateSelector,
    make_drop_policy,
    make_gate,
    make_selector,
)
from repro.sim.engine import Engine
from repro.telemetry.hub import NULL_HUB, MetricsHub
from repro.vp.predictor import DropRecord, ValuePredictor

#: reply_fn(request, approx, donor_line_addr) — called at data-return time.
ReplyFn = Callable[[MemoryRequest, bool, Optional[int]], None]

_EPS = 1e-9


class MemoryController:
    """One per memory channel."""

    def __init__(
        self,
        channel: Channel,
        *,
        config: GPUConfig,
        sched_config: SchedulerConfig,
        engine: Engine,
        reply_fn: ReplyFn,
        predictor: Optional[ValuePredictor] = None,
        telemetry: Optional[MetricsHub] = None,
    ) -> None:
        self.channel = channel
        self.config = config
        self.sched_config = sched_config
        self.engine = engine
        self.reply_fn = reply_fn
        self.predictor = predictor
        #: Per-tenant accounting; installed by ``attach_tenants`` for
        #: multi-tenant runs, ``None`` (zero-cost guards) otherwise.
        self.tenants = None
        # Counters/gauges fire only at low-frequency points (window
        # ticks, drops); with the default NULL_HUB every call is a no-op.
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        self.queue = PendingQueue(
            config.pending_queue_size, config.mapping.banks_per_channel
        )
        # The policy pipeline: gate (C) and drop policy (D/E) are always
        # the paper's DMS/AMS units — their OFF modes are pass-throughs —
        # while the selector (B) is chosen by ``sched_config.arbiter``.
        self.dms = make_gate("dms", sched_config.dms)
        self.ams = make_drop_policy("ams", sched_config.ams)
        self.selector = make_selector(sched_config.arbiter, sched_config)
        self.selector.bind(queue=self.queue, channel=channel, gate=self.dms)
        # Stateless selectors don't override on_issue; skip the call
        # entirely for them (the service loop is the hottest path).
        self._notify_issue: Optional[Callable] = (
            self.selector.on_issue
            if type(self.selector).on_issue is not CandidateSelector.on_issue
            else None
        )
        self.drops: list[DropRecord] = []
        self._next_wake: Optional[float] = None
        self._wake_handle: int = -1
        # Candidate memo between a service pass and its wake-up. Ready
        # times are ``max(now, constraint)``: if candidate A won at t0
        # with ready ra > t0, then at the wake time ra — with no state
        # change in between — every rival's key is unchanged (a rival
        # with an earlier ready would already have won at t0), so
        # re-selecting returns A again. Every mutation path into the
        # queue/channel/gate re-enters ``_service`` (submit, the window
        # tick, command issue inside the loop), and ``_service``
        # rewrites the memo at each of its return points, so the value
        # read by ``_on_wake`` is always the latest selection.
        self._cached_candidate = None
        self._line_bytes = config.l2.line_bytes
        self.ams.set_halted(self.dms.wants_ams_halted)
        # The profiling tick follows the *dynamic* units' window size;
        # a disabled unit's (default) window must not stretch it.
        windows = []
        if sched_config.dms.mode is DMSMode.DYNAMIC:
            windows.append(sched_config.dms.window_cycles)
        if sched_config.ams.mode is AMSMode.DYNAMIC:
            windows.append(sched_config.ams.window_cycles)
        self._window_cycles = min(windows) if windows else max(
            sched_config.dms.window_cycles, sched_config.ams.window_cycles
        )
        self._needs_windows = (
            sched_config.dms.mode is DMSMode.DYNAMIC
            or sched_config.ams.mode is AMSMode.DYNAMIC
        )
        # Profiling ticks are armed lazily on traffic and disarmed only
        # after a *fully idle* window (no arrivals, no bus activity), so
        # an idle simulation can terminate while bursty delayed traffic —
        # whose gaps are part of the utilisation being measured — keeps
        # the profiler running.
        self._ticks_armed = False
        self._window_arrivals = 0

    # ------------------------------------------------------------------
    # Multi-tenant attachment
    # ------------------------------------------------------------------
    def attach_tenants(self, tracker, mix) -> None:
        """Install per-tenant accounting and the mix's arbiter.

        Swaps the selector for the arbiter named by the
        :class:`~repro.config.tenants.TenantMixSpec` (re-bound to this
        controller's queue/channel/gate) and hooks the shared
        :class:`~repro.sched.tenants.TenantTracker` into the arrival /
        issue / drop paths. Called only for multi-tenant runs, before
        any traffic — single-tenant controllers never take this path.
        """
        from repro.sched.policies import make_arbiter

        self.tenants = tracker
        selector = make_arbiter(mix.arbiter, self.sched_config, mix)
        selector.bind(
            queue=self.queue, channel=self.channel, gate=self.dms
        )
        self.selector = selector
        self._notify_issue = (
            selector.on_issue
            if type(selector).on_issue is not CandidateSelector.on_issue
            else None
        )
        self._cached_candidate = None

    # ------------------------------------------------------------------
    # Ingress (A)
    # ------------------------------------------------------------------
    def submit(self, request: MemoryRequest) -> None:
        """A request (an L2 miss or write-back) arrives at this MC."""
        now = self.engine.now
        request.arrival_time = now
        stats = self.channel.stats
        if request.is_write:
            stats.writes_arrived += 1
        else:
            stats.reads_arrived += 1
            self.ams.on_read_arrival()
        if self.tenants is not None:
            self.tenants.on_arrival(request)
        admitted = self.queue.offer(request, now)
        self._window_arrivals += 1
        if self._needs_windows and not self._ticks_armed:
            self._ticks_armed = True
            self.engine.at(now + self._window_cycles, self._window_tick)
        # A deferred request sits in the ingress FIFO, invisible to the
        # selector: the schedulable state is exactly what the previous
        # service pass saw, and that pass — the queue is non-empty —
        # already armed its wake-up. Re-servicing would re-derive the
        # identical candidate and dedup against the same wake.
        if admitted:
            self._service()

    # ------------------------------------------------------------------
    # Profiling window tick (Dyn-DMS / Dyn-AMS)
    # ------------------------------------------------------------------
    def _window_tick(self) -> None:
        now = self.engine.now
        busy = self.channel.stats.bus.busy_since_last_query(now)
        bwutil = busy / self._window_cycles
        self.dms.on_window(bwutil)
        self.ams.set_halted(self.dms.wants_ams_halted)
        self.ams.on_window()
        telemetry = self.telemetry
        if telemetry.enabled:
            ch = self.channel.channel_id
            telemetry.inc(f"mc{ch}.profile_ticks")
            telemetry.gauge(f"mc{ch}.profile.bwutil", bwutil)
            telemetry.gauge(f"mc{ch}.dms.x", self.dms.current_delay)
            telemetry.gauge(f"mc{ch}.ams.th_rbl", float(self.ams.th_rbl))
        idle_window = (
            self.queue.empty and self._window_arrivals == 0 and busy == 0.0
        )
        self._window_arrivals = 0
        if idle_window:
            # Disarm after a dead window; the next submit() re-arms.
            self._ticks_armed = False
        else:
            self.engine.at(now + self._window_cycles, self._window_tick)
        # A lowered delay may make gated activations eligible right away.
        self._service()

    # ------------------------------------------------------------------
    # Service loop (B)
    # ------------------------------------------------------------------
    def _service(self, cached=None) -> None:
        # Every engine event lands here; one selector call per issued
        # command, with the candidate fold inlined inside the selector.
        # ``cached`` short-circuits the wake-up path: the candidate the
        # previous pass already selected (and scheduled this wake for)
        # is reused verbatim — see ``_cached_candidate`` — and any
        # command issue below falls back to a fresh selection.
        now = self.engine.now
        channel = self.channel
        queue = self.queue
        select = self.selector.select
        notify = self._notify_issue
        may_drop = self.ams.may_drop
        tenants = self.tenants
        refresh_enabled = channel.refresh_enabled
        best = cached
        while True:
            if refresh_enabled and channel.refresh_due(now):
                channel.issue_refresh(now)
                best = None
                continue
            if best is None:
                best = select(now)
            if best is None:
                self._cached_candidate = None
                return  # queue empty: next arrival re-kicks us
            key, kind, bank, request = best
            ready = key[0]
            if refresh_enabled:
                ready = min(ready, channel.next_refresh_time())
            if ready > now + _EPS:
                self._cached_candidate = best
                self._wake_at(ready)
                return
            if kind == "col":
                self._issue_column(bank, request)
            elif kind == "close":
                channel.issue_precharge(bank, now)
            elif kind == "pre":
                # Dropping instead of precharging leaves the row open.
                if may_drop(queue, bank.index, request.row):
                    self._drop_row(bank.index, request.row)
                else:
                    channel.issue_precharge(bank, now)
            else:  # "act"
                if may_drop(queue, bank.index, request.row):
                    self._drop_row(bank.index, request.row)
                else:
                    channel.issue_activate(bank, request.row, now)
                    if tenants is not None:
                        tenants.on_activate(request.tenant_id)
            if notify is not None:
                notify(kind, bank.index, request)
            best = None  # state changed: the next pass re-selects

    def _issue_column(self, bank, request: MemoryRequest) -> None:
        now = self.engine.now
        _, data_end = self.channel.issue_column(
            bank, request.is_write, now, rid=request.rid
        )
        self.queue.remove(request, now)
        if self.tenants is not None:
            self.tenants.on_served(request)
        if not request.is_write:
            if self.predictor is not None:
                self.predictor.on_fill(request.addr // self._line_bytes)
            self.engine.at(
                data_end, lambda r=request: self.reply_fn(r, False, None)
            )

    def _drop_row(self, bank_idx: int, row: int) -> None:
        """Drop every pending request to (bank, row); VP answers them.

        The paper drops one request per memory cycle; we remove them from
        the queue atomically (avoiding re-decisions on a half-dropped row)
        and stagger the replies one cycle apart to preserve the timing.
        """
        now = self.engine.now
        victims = self.queue.hits_for(bank_idx, row)
        if self.tenants is not None:
            # Counts per-tenant drops and enforces the class contract
            # (a latency/bandwidth tenant's request must never land
            # here) before any victim is removed from the queue.
            self.tenants.on_drops(victims)
        for i, victim in enumerate(victims):
            self.queue.remove(victim, now)
            donor = (
                self.predictor.predict(victim)
                if self.predictor is not None
                else None
            )
            self.drops.append(
                DropRecord(
                    rid=victim.rid,
                    addr=victim.addr,
                    tag=victim.tag,
                    donor_line_addr=donor,
                    time=now + i,
                    channel=self.channel.channel_id,
                )
            )
            self.engine.at(
                now + i,
                lambda r=victim, d=donor: self.reply_fn(r, True, d),
            )
        self.ams.on_drop(len(victims))
        self.channel.stats.requests_dropped += len(victims)
        # Dropped reads are answered by the VP unit and never issue a
        # column command — by construction they cannot observe a faulty
        # cell, the interaction the error-tolerance argument relies on.
        if self.channel.read_path is not None:
            self.channel.read_path.on_spared(len(victims))
        if self.telemetry.enabled:
            self.telemetry.inc(
                f"mc{self.channel.channel_id}.ams.drops", len(victims)
            )

    # ------------------------------------------------------------------
    def _wake_at(self, time: float) -> None:
        """Ensure a service wake-up at ``time``, keeping one live event.

        A pending earlier-or-equal wake already covers this request.
        When the new time is strictly earlier, the superseded later
        event is *cancelled* instead of being left to fire as a no-op —
        otherwise every tightening of the wake time would accumulate a
        dead callback on the engine heap.
        """
        if self._next_wake is not None:
            if self._next_wake <= time + _EPS:
                return
            self.engine.cancel(self._wake_handle)
        self._next_wake = time
        self._wake_handle = self.engine.at(time, self._on_wake)

    def _on_wake(self) -> None:
        self._next_wake = None
        self._service(self._cached_candidate)

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no requests are pending or deferred at this MC."""
        return self.queue.empty
