"""Per-tenant accounting shared by every memory controller of one run.

One :class:`TenantTracker` is installed across all controllers by
:meth:`~repro.sim.system.GPUSystem.from_spec` when a multi-tenant mix
attaches. The controller calls it from three low-frequency points —
request arrival, column issue, and row drop — each behind an
``is not None`` guard, so single-tenant runs pay nothing.

The tracker is also the structural enforcement point of the tenant
drop contract: the trace composer strips the ``approximable``
annotation from every tenant whose class forbids dropping, so the AMS
unit can never select their rows — and :meth:`TenantTracker.on_drops`
re-checks every victim and raises on a violation rather than silently
miscounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.config.tenants import TenantMixSpec
from repro.errors import SimulationError
from repro.sim.report import TenantReport, TenantSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.dram.request import MemoryRequest


class TenantTracker:
    """Per-tenant request counters, indexed by ``tenant_id``."""

    def __init__(self, mix: TenantMixSpec) -> None:
        n = len(mix.tenants)
        self.mix = mix
        self._droppable = tuple(t.approximable for t in mix.tenants)
        self.reads_arrived = [0] * n
        self.writes_arrived = [0] * n
        self.requests_served = [0] * n
        self.requests_dropped = [0] * n
        self.activations = [0] * n

    # ------------------------------------------------------------------
    # Controller hooks (guarded by ``mc.tenants is not None``)
    # ------------------------------------------------------------------
    def on_arrival(self, request: "MemoryRequest") -> None:
        """A request reached a controller (reads and write-backs)."""
        if request.is_write:
            self.writes_arrived[request.tenant_id] += 1
        else:
            self.reads_arrived[request.tenant_id] += 1

    def on_served(self, request: "MemoryRequest") -> None:
        """A column command issued for this request."""
        self.requests_served[request.tenant_id] += 1

    def on_activate(self, tenant_id: int) -> None:
        """A row activation attributed to the request that opened it."""
        self.activations[tenant_id] += 1

    def on_drops(self, victims: Sequence["MemoryRequest"]) -> None:
        """A row's pending requests were dropped (answered by the VP).

        Raises :class:`~repro.errors.SimulationError` when any victim
        belongs to a tenant whose class forbids approximation — the
        invariant the composer's annotation stripping guarantees.
        """
        droppable = self._droppable
        dropped = self.requests_dropped
        for victim in victims:
            tid = victim.tenant_id
            if not droppable[tid]:
                tenant = self.mix.tenants[tid]
                raise SimulationError(
                    f"AMS dropped a request of tenant {tenant.name!r} "
                    f"(class {tenant.tenant_class!r}), which its service "
                    "contract forbids"
                )
            dropped[tid] += 1

    # ------------------------------------------------------------------
    def summarize(
        self,
        *,
        finish_times: dict[int, float],
        instructions: dict[int, int],
    ) -> TenantSummary:
        """Build the report section from tracker + frontend accounting."""
        tenants = []
        for tid, spec in enumerate(self.mix.tenants):
            tenants.append(
                TenantReport(
                    name=spec.name,
                    tenant_class=spec.tenant_class,
                    workload=spec.workload,
                    instructions=instructions.get(tid, 0),
                    finish_mem_cycles=finish_times.get(tid, 0.0),
                    reads_arrived=self.reads_arrived[tid],
                    writes_arrived=self.writes_arrived[tid],
                    requests_served=self.requests_served[tid],
                    requests_dropped=self.requests_dropped[tid],
                    activations=self.activations[tid],
                )
            )
        return TenantSummary(arbiter=self.mix.arbiter, tenants=tenants)
