"""Hardware overhead cost model of the lazy scheduler (paper Section IV-E).

The paper enumerates the additional hardware each unit needs on top of the
baseline memory controller and concludes: 1 multiplier, 11 adders, 1 MUX,
3 comparators and 498 bits of buffer space. This module encodes that
inventory so the claim is checkable and can be re-derived per scheme —
and, via :func:`derived_overhead`, re-derived with counter widths sized
to the actual configuration and DRAM device instead of the paper's fixed
field widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config.scheduler import AMSMode, DMSMode, SchedulerConfig
from repro.dram.devices import DeviceModel


@dataclass(frozen=True, slots=True)
class HardwareBudget:
    """Datapath and storage cost of one unit."""

    multipliers: int = 0
    adders: int = 0
    muxes: int = 0
    comparators: int = 0
    buffer_bits: int = 0

    def __add__(self, other: "HardwareBudget") -> "HardwareBudget":
        return HardwareBudget(
            multipliers=self.multipliers + other.multipliers,
            adders=self.adders + other.adders,
            muxes=self.muxes + other.muxes,
            comparators=self.comparators + other.comparators,
            buffer_bits=self.buffer_bits + other.buffer_bits,
        )


#: DMS: one comparator + one adder; 16-bit current-delay counter.
DMS_COMMON = HardwareBudget(adders=1, comparators=1, buffer_bits=16)
#: Dyn-DMS adds: 32-bit baseline BWUTIL, 32-bit current BWUTIL,
#: 16-bit profiling cycle counter, 8-bit window counter.
DYN_DMS_EXTRA = HardwareBudget(buffer_bits=32 + 32 + 16 + 8)

#: AMS: multiplier + adder + comparator; 1 bit read/write condition,
#: 1 bit memory-space condition, two 64-bit request/approx counters,
#: 8-bit RBL counter, 8-bit Th_RBL, 32-bit dropped-row index.
AMS_COMMON = HardwareBudget(
    multipliers=1,
    adders=1,
    comparators=1,
    buffer_bits=1 + 1 + 64 + 64 + 8 + 8 + 32,
)
#: Dyn-AMS adds a 16-bit profiling cycle counter.
DYN_AMS_EXTRA = HardwareBudget(buffer_bits=16)

#: VP unit: nine adders, one MUX, one comparator; 8-bit radius,
#: 64-bit dropped-request tag, two 64-bit distance/address registers.
VP_UNIT = HardwareBudget(
    adders=9,
    muxes=1,
    comparators=1,
    buffer_bits=8 + 64 + 64 + 64,
)


def scheduler_overhead(config: SchedulerConfig) -> HardwareBudget:
    """Hardware needed for the given scheme, per memory controller."""
    total = HardwareBudget()
    if config.dms.mode is not DMSMode.OFF:
        total = total + DMS_COMMON
        if config.dms.mode is DMSMode.DYNAMIC:
            total = total + DYN_DMS_EXTRA
    if config.ams.mode is not AMSMode.OFF:
        total = total + AMS_COMMON + VP_UNIT
        if config.ams.mode is AMSMode.DYNAMIC:
            total = total + DYN_AMS_EXTRA
    return total


def _width_bits(max_value: int) -> int:
    """Bits needed for an unsigned counter holding 0..max_value."""
    return max(1, int(max_value).bit_length())


def derived_overhead(
    config: SchedulerConfig,
    device: Optional[DeviceModel] = None,
    *,
    ecc: Optional[str] = None,
) -> HardwareBudget:
    """Per-controller hardware with counter widths derived, not assumed.

    The paper's inventory (Section IV-E) fixes its register widths to
    the evaluated GDDR5 configuration (16-bit delay, 8-bit Th_RBL, ...).
    This variant sizes the width-dependent storage from the actual
    configuration — the delay counter from ``dms.max_delay``, the
    profiling cycle counter from the window length, the phase counter
    from ``windows_per_phase``, the threshold register from
    ``ams.max_th_rbl`` — and, when a :class:`DeviceModel` is given, adds
    the refresh-interval counter its ``tREFI`` requires. The datapath
    inventory (multipliers/adders/muxes/comparators) is unchanged; only
    buffer bits vary. Useful for judging how the overhead claim scales
    to other devices and window settings.

    ``ecc`` (a registered code name) adds the controller-side
    check/correct hardware: one XOR-tree "adder" per check bit of the
    device's word width, one comparator for the zero-syndrome test, and
    a syndrome register. ``"none"`` and ``None`` add nothing.
    """
    total = HardwareBudget()
    if config.dms.mode is not DMSMode.OFF:
        total = total + HardwareBudget(
            adders=DMS_COMMON.adders,
            comparators=DMS_COMMON.comparators,
            buffer_bits=_width_bits(config.dms.max_delay),
        )
        if config.dms.mode is DMSMode.DYNAMIC:
            total = total + HardwareBudget(
                # Baseline + current BWUTIL accumulators still need the
                # paper's 32-bit fixed-point precision each; the cycle
                # and window counters shrink with the configuration.
                buffer_bits=32 + 32
                + _width_bits(config.dms.window_cycles)
                + _width_bits(config.dms.windows_per_phase)
            )
    if config.ams.mode is not AMSMode.OFF:
        total = total + HardwareBudget(
            multipliers=AMS_COMMON.multipliers,
            adders=AMS_COMMON.adders,
            comparators=AMS_COMMON.comparators,
            # Conditions + 64-bit ledgers + dropped-row index are
            # configuration-independent; RBL counter and Th_RBL register
            # are sized by the threshold range.
            buffer_bits=1 + 1 + 64 + 64 + 32
            + 2 * _width_bits(config.ams.max_th_rbl),
        ) + VP_UNIT
        if config.ams.mode is AMSMode.DYNAMIC:
            total = total + HardwareBudget(
                buffer_bits=_width_bits(config.ams.window_cycles)
            )
    if device is not None and (
        config.dms.mode is not DMSMode.OFF
        or config.ams.mode is not AMSMode.OFF
    ):
        # Gated activations must still respect the device's refresh
        # schedule; the unit tracks cycles-to-next-refresh in a counter
        # sized by tREFI.
        total = total + HardwareBudget(
            buffer_bits=_width_bits(device.timings.tREFI)
        )
    if ecc is not None and ecc != "none":
        from repro.dram.ecc import DEFAULT_ECC_WORD_BITS, get_ecc

        word_bits = (
            device.ecc_word_bits if device is not None
            else DEFAULT_ECC_WORD_BITS
        )
        check = get_ecc(ecc).check_bits(word_bits)
        total = total + HardwareBudget(
            adders=check,  # one XOR tree per syndrome/check bit
            comparators=1,  # zero-syndrome test
            buffer_bits=check,  # syndrome register
        )
    return total


def full_lazy_scheduler_overhead() -> HardwareBudget:
    """The paper's headline total: Dyn-DMS + Dyn-AMS + VP unit.

    Matches Section IV-E: 1 multiplier, 11 adders, 1 MUX, 3 comparators,
    498 bits of buffer space.
    """
    return (
        DMS_COMMON
        + DYN_DMS_EXTRA
        + AMS_COMMON
        + DYN_AMS_EXTRA
        + VP_UNIT
    )
