"""Hardware overhead cost model of the lazy scheduler (paper Section IV-E).

The paper enumerates the additional hardware each unit needs on top of the
baseline memory controller and concludes: 1 multiplier, 11 adders, 1 MUX,
3 comparators and 498 bits of buffer space. This module encodes that
inventory so the claim is checkable and can be re-derived per scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.scheduler import AMSMode, DMSMode, SchedulerConfig


@dataclass(frozen=True, slots=True)
class HardwareBudget:
    """Datapath and storage cost of one unit."""

    multipliers: int = 0
    adders: int = 0
    muxes: int = 0
    comparators: int = 0
    buffer_bits: int = 0

    def __add__(self, other: "HardwareBudget") -> "HardwareBudget":
        return HardwareBudget(
            multipliers=self.multipliers + other.multipliers,
            adders=self.adders + other.adders,
            muxes=self.muxes + other.muxes,
            comparators=self.comparators + other.comparators,
            buffer_bits=self.buffer_bits + other.buffer_bits,
        )


#: DMS: one comparator + one adder; 16-bit current-delay counter.
DMS_COMMON = HardwareBudget(adders=1, comparators=1, buffer_bits=16)
#: Dyn-DMS adds: 32-bit baseline BWUTIL, 32-bit current BWUTIL,
#: 16-bit profiling cycle counter, 8-bit window counter.
DYN_DMS_EXTRA = HardwareBudget(buffer_bits=32 + 32 + 16 + 8)

#: AMS: multiplier + adder + comparator; 1 bit read/write condition,
#: 1 bit memory-space condition, two 64-bit request/approx counters,
#: 8-bit RBL counter, 8-bit Th_RBL, 32-bit dropped-row index.
AMS_COMMON = HardwareBudget(
    multipliers=1,
    adders=1,
    comparators=1,
    buffer_bits=1 + 1 + 64 + 64 + 8 + 8 + 32,
)
#: Dyn-AMS adds a 16-bit profiling cycle counter.
DYN_AMS_EXTRA = HardwareBudget(buffer_bits=16)

#: VP unit: nine adders, one MUX, one comparator; 8-bit radius,
#: 64-bit dropped-request tag, two 64-bit distance/address registers.
VP_UNIT = HardwareBudget(
    adders=9,
    muxes=1,
    comparators=1,
    buffer_bits=8 + 64 + 64 + 64,
)


def scheduler_overhead(config: SchedulerConfig) -> HardwareBudget:
    """Hardware needed for the given scheme, per memory controller."""
    total = HardwareBudget()
    if config.dms.mode is not DMSMode.OFF:
        total = total + DMS_COMMON
        if config.dms.mode is DMSMode.DYNAMIC:
            total = total + DYN_DMS_EXTRA
    if config.ams.mode is not AMSMode.OFF:
        total = total + AMS_COMMON + VP_UNIT
        if config.ams.mode is AMSMode.DYNAMIC:
            total = total + DYN_AMS_EXTRA
    return total


def full_lazy_scheduler_overhead() -> HardwareBudget:
    """The paper's headline total: Dyn-DMS + Dyn-AMS + VP unit.

    Matches Section IV-E: 1 multiplier, 11 adders, 1 MUX, 3 comparators,
    498 bits of buffer space.
    """
    return (
        DMS_COMMON
        + DYN_DMS_EXTRA
        + AMS_COMMON
        + DYN_AMS_EXTRA
        + VP_UNIT
    )
