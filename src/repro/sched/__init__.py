"""Memory scheduling: FR-FCFS baseline and the lazy (DMS + AMS) scheduler."""

from repro.sched.ams import AMSUnit
from repro.sched.controller import MemoryController
from repro.sched.dms import DMSUnit
from repro.sched.overhead import (
    HardwareBudget,
    full_lazy_scheduler_overhead,
    scheduler_overhead,
)
from repro.sched.pending_queue import PendingQueue

__all__ = [
    "AMSUnit",
    "DMSUnit",
    "HardwareBudget",
    "MemoryController",
    "PendingQueue",
    "full_lazy_scheduler_overhead",
    "scheduler_overhead",
]
