"""Memory scheduling: the composable policy pipeline (candidate
selectors + activation gates + drop policies) and its command-issue
engine."""

from repro.sched.ams import AMSUnit
from repro.sched.controller import MemoryController
from repro.sched.dms import DMSUnit
from repro.sched.overhead import (
    HardwareBudget,
    derived_overhead,
    full_lazy_scheduler_overhead,
    scheduler_overhead,
)
from repro.sched.pending_queue import PendingQueue
from repro.sched.policies import (
    ActivationGate,
    CandidateSelector,
    DropPolicy,
    drop_policy_names,
    gate_names,
    selector_names,
)

__all__ = [
    "AMSUnit",
    "ActivationGate",
    "CandidateSelector",
    "DMSUnit",
    "DropPolicy",
    "HardwareBudget",
    "MemoryController",
    "PendingQueue",
    "derived_overhead",
    "drop_policy_names",
    "full_lazy_scheduler_overhead",
    "gate_names",
    "scheduler_overhead",
    "selector_names",
]
