"""The FR-FCFS pending request queue of one memory controller.

Table I: 128 entries, unified for reads and writes. The queue maintains
three indexes so every scheduler query is O(1) or O(pending-per-row):

* global FIFO order (for FCFS age),
* per-bank FIFO order (FR-FCFS picks the oldest request per bank),
* per-(bank, row) membership (row-hit detection and pending-RBL counts).

Requests arriving while the queue is full wait in an unbounded ingress
FIFO; the scheduler cannot see them (this is exactly the visibility limit
studied in the paper's Fig. 2/13) and they are admitted in arrival order
as entries free up, receiving their ``enqueue_time`` — the DMS ageing
reference — at admission, per Section IV-A.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Deque, Iterable, Optional

from repro.dram.request import MemoryRequest
from repro.errors import SchedulingError


class PendingQueue:
    """Indexed pending queue for one channel."""

    def __init__(self, capacity: int, num_banks: int) -> None:
        if capacity <= 0:
            raise SchedulingError("queue capacity must be positive")
        self.capacity = capacity
        self.num_banks = num_banks
        # Python dicts preserve insertion order: each dict below is a FIFO
        # with O(1) membership and removal.
        self._fifo: dict[int, MemoryRequest] = {}
        self._by_bank: list[dict[int, MemoryRequest]] = [
            {} for _ in range(num_banks)
        ]
        self._by_row: dict[tuple[int, int], dict[int, MemoryRequest]] = {}
        # Live index of non-empty per-bank buckets, kept sorted so the
        # scheduler scan visits banks in ascending index order (the
        # deterministic tie-break order) without touching empty buckets.
        self._pending_banks: list[int] = []
        self._ingress: Deque[MemoryRequest] = deque()
        self.peak_occupancy = 0
        self.total_admitted = 0
        self.total_deferred = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def full(self) -> bool:
        """Whether the visible queue has no free entry."""
        return len(self._fifo) >= self.capacity

    @property
    def ingress_backlog(self) -> int:
        """Requests waiting (invisible to the scheduler) for a free entry."""
        return len(self._ingress)

    @property
    def empty(self) -> bool:
        """True when neither the queue nor the ingress FIFO holds requests."""
        return not self._fifo and not self._ingress

    # ------------------------------------------------------------------
    def offer(self, request: MemoryRequest, now: float) -> bool:
        """Present an arriving request; returns True if admitted now."""
        if self.full:
            self._ingress.append(request)
            self.total_deferred += 1
            return False
        self._admit(request, now)
        return True

    def _admit(self, request: MemoryRequest, now: float) -> None:
        request.enqueue_time = now
        rid = request.rid
        if rid in self._fifo:
            raise SchedulingError(f"request {rid} enqueued twice")
        self._fifo[rid] = request
        bank_bucket = self._by_bank[request.bank]
        if not bank_bucket:
            insort(self._pending_banks, request.bank)
        bank_bucket[rid] = request
        self._by_row.setdefault(request.bank_row, {})[rid] = request
        self.total_admitted += 1
        if len(self._fifo) > self.peak_occupancy:
            self.peak_occupancy = len(self._fifo)

    def remove(self, request: MemoryRequest, now: float) -> None:
        """Remove a request (issued to DRAM or dropped by AMS)."""
        rid = request.rid
        if rid not in self._fifo:
            raise SchedulingError(f"request {rid} not in pending queue")
        del self._fifo[rid]
        bank_bucket = self._by_bank[request.bank]
        del bank_bucket[rid]
        if not bank_bucket:
            self._pending_banks.remove(request.bank)
        row_bucket = self._by_row[request.bank_row]
        del row_bucket[rid]
        if not row_bucket:
            del self._by_row[request.bank_row]
        # Admit deferred arrivals into the freed entry.
        while self._ingress and not self.full:
            self._admit(self._ingress.popleft(), now)

    # ------------------------------------------------------------------
    # Scheduler queries
    # ------------------------------------------------------------------
    def oldest(self) -> Optional[MemoryRequest]:
        """The oldest visible request (global FCFS head)."""
        return next(iter(self._fifo.values()), None)

    def oldest_for_bank(self, bank: int) -> Optional[MemoryRequest]:
        """The oldest visible request destined to ``bank``."""
        return next(iter(self._by_bank[bank].values()), None)

    def bank_has_pending(self, bank: int) -> bool:
        """Whether any visible request targets ``bank``."""
        return bool(self._by_bank[bank])

    def hits_for(self, bank: int, row: int) -> list[MemoryRequest]:
        """Visible requests that would hit the open ``row`` of ``bank``,
        in FIFO order."""
        return list(self._by_row.get((bank, row), {}).values())

    def oldest_hit_for(self, bank: int, row: int) -> Optional[MemoryRequest]:
        """Oldest visible request hitting the open ``row`` of ``bank``."""
        bucket = self._by_row.get((bank, row))
        if not bucket:
            return None
        return next(iter(bucket.values()))

    def row_pending_count(self, bank: int, row: int) -> int:
        """Number of visible requests destined to ``(bank, row)``.

        This is the RBL the scheduler *observes* for a prospective
        activation — the quantity AMS compares against Th_RBL.
        """
        return len(self._by_row.get((bank, row), {}))

    def row_all_reads(self, bank: int, row: int) -> bool:
        """True when every visible request to ``(bank, row)`` is a read.

        AMS only drops rows whose pending requests are all global reads
        (Section IV-C: writes must not be approximated away).
        """
        bucket = self._by_row.get((bank, row))
        if not bucket:
            return False
        return all(not r.is_write for r in bucket.values())

    def row_all_approximable(self, bank: int, row: int) -> bool:
        """True when every visible request to ``(bank, row)`` carries the
        programmer's approximable annotation."""
        bucket = self._by_row.get((bank, row))
        if not bucket:
            return False
        return all(r.approximable for r in bucket.values())

    def iter_pending(self) -> Iterable[MemoryRequest]:
        """All visible requests in FIFO order (diagnostics)."""
        return iter(self._fifo.values())

    def pending_per_bank(self) -> dict[int, int]:
        """Visible pending-request count per bank (non-empty banks only).

        A diagnostics snapshot — used by the engine's livelock report —
        not a hot-path query; it copies nothing but the counts.
        """
        return {
            bank: len(bucket)
            for bank, bucket in enumerate(self._by_bank)
            if bucket
        }

    def banks_with_pending(self) -> Iterable[int]:
        """Indices of banks with at least one visible request, ascending.

        Returns the live internal index (no per-call scan or copy);
        callers must treat it as read-only and must not remove requests
        while iterating it.
        """
        return self._pending_banks

    def check_invariants(self) -> None:
        """Validate index consistency (used by property-based tests)."""
        count_bank = sum(len(b) for b in self._by_bank)
        count_row = sum(len(b) for b in self._by_row.values())
        if not (len(self._fifo) == count_bank == count_row):
            raise SchedulingError(
                "index desync: "
                f"fifo={len(self._fifo)} bank={count_bank} row={count_row}"
            )
        live = [b for b, bucket in enumerate(self._by_bank) if bucket]
        if live != self._pending_banks:
            raise SchedulingError(
                f"pending-bank index desync: {self._pending_banks} != {live}"
            )
        for (bank, row), bucket in self._by_row.items():
            for req in bucket.values():
                if req.bank != bank or req.row != row:
                    raise SchedulingError("row index holds mismatched request")
                if req.rid not in self._fifo:
                    raise SchedulingError("row index holds unknown request")
