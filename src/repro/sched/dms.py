"""Delayed Memory Scheduling (DMS) — paper Section IV-B.

The DMS unit gates *row activations*: before the controller may open a new
row for a bank, the oldest pending request destined to that bank must have
aged at least ``X`` cycles in the pending queue. Row hits are never
delayed.

Two variants:

* **Static-DMS** — X fixed at 128 cycles.
* **Dyn-DMS** — a profiling state machine on 4096-cycle windows. Each
  phase (32 windows) starts by sampling the *baseline* DRAM bandwidth
  utilisation with delay 0 (and AMS halted), then walks the delay in
  ±128-cycle steps until BWUTIL falls below 95 % of that baseline,
  settling on the largest delay that kept BWUTIL above the threshold.
  The settled delay seeds the next phase's search.
"""

from __future__ import annotations

import enum

from repro.config.scheduler import DMSConfig, DMSMode


class _DynState(enum.Enum):
    WARMUP = "warmup"  # discard the first window (traffic ramp-up)
    BASELINE = "baseline"  # sampling BWUTIL with delay 0, AMS halted
    SEARCH = "search"  # walking the delay up or down
    SETTLED = "settled"  # holding the chosen delay until phase restart


class DMSUnit:
    """Per-memory-controller DMS logic."""

    def __init__(self, config: DMSConfig) -> None:
        self.config = config
        self._dynamic = config.mode is DMSMode.DYNAMIC
        if config.mode is DMSMode.STATIC:
            self._delay = float(config.static_delay)
        else:
            self._delay = 0.0
        # --- dynamic profiling state ---
        self._state = _DynState.WARMUP
        self._baseline_bwutil = 0.0
        self._recorded_delay = float(config.delay_step)
        self._last_good: float | None = None
        self._direction = 0  # +1 searching up, -1 searching down, 0 unknown
        self._windows_in_phase = 0
        #: History of (window_index, delay) for diagnostics/tests.
        self.delay_trace: list[tuple[int, float]] = []
        self._window_index = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether DMS is active at all."""
        return self.config.mode is not DMSMode.OFF

    @property
    def current_delay(self) -> float:
        """The delay X currently enforced on row-opening requests."""
        return self._delay

    @property
    def window_index(self) -> int:
        """Profiling windows consumed so far (telemetry probe)."""
        return self._window_index

    @property
    def state_name(self) -> str:
        """Name of the dynamic profiling state (telemetry probe);
        ``"static"``/``"off"`` for the non-dynamic modes."""
        if self._dynamic:
            return self._state.value
        return "static" if self.enabled else "off"

    @property
    def wants_ams_halted(self) -> bool:
        """True while sampling the no-delay baseline (paper: AMS is
        temporarily halted so the baseline BWUTIL is unperturbed)."""
        return self._dynamic and self._state in (
            _DynState.WARMUP, _DynState.BASELINE
        )

    def earliest_eligible(self, enqueue_time: float) -> float:
        """Earliest time a row-opening request with this enqueue time may
        be considered for scheduling."""
        if not self.enabled:
            return enqueue_time
        return enqueue_time + self._delay

    # ------------------------------------------------------------------
    # Dynamic profiling (driven by the controller's window tick)
    # ------------------------------------------------------------------
    def on_window(self, bwutil: float) -> None:
        """Consume the BWUTIL of the window that just finished."""
        if not self._dynamic:
            return
        self._window_index += 1
        self._windows_in_phase += 1
        if self._windows_in_phase >= self.config.windows_per_phase:
            self._restart_phase()
            return
        if self._state is _DynState.WARMUP:
            # Discard the ramp-up window so it cannot depress the
            # baseline sample.
            self._state = _DynState.BASELINE
        elif self._state is _DynState.BASELINE:
            self._baseline_bwutil = bwutil
            self._delay = max(
                float(self.config.delay_step), self._recorded_delay
            )
            self._state = _DynState.SEARCH
            self._direction = 0
            self._last_good = None
        elif self._state is _DynState.SEARCH:
            self._search_step(bwutil)
        elif self._state is _DynState.SETTLED:
            self._settled_guard(bwutil)
        self.delay_trace.append((self._window_index, self._delay))

    def _settled_guard(self, bwutil: float) -> None:
        """Watchdog for the settled delay between phase restarts.

        An application phase change (e.g. a burst phase draining into a
        sparse tail) can make the settled delay harmful long before the
        next phase restart; step it back down whenever utilisation falls
        below the threshold.
        """
        cfg = self.config
        if bwutil > self._baseline_bwutil:
            self._baseline_bwutil = bwutil
        if bwutil < cfg.bwutil_threshold * self._baseline_bwutil:
            self._delay = max(
                float(cfg.min_delay), self._delay - cfg.delay_step
            )
            self._recorded_delay = self._delay

    def _search_step(self, bwutil: float) -> None:
        cfg = self.config
        # Self-correcting baseline: utilisation measured *under delay*
        # cannot genuinely exceed the no-delay baseline, so a higher
        # sample means the baseline window caught a traffic ramp; adopt
        # the better estimate (otherwise every delayed window would pass
        # the 95 % test against a stale-low baseline).
        if bwutil > self._baseline_bwutil:
            self._baseline_bwutil = bwutil
        ok = bwutil >= cfg.bwutil_threshold * self._baseline_bwutil
        if self._direction == 0:
            self._direction = 1 if ok else -1
        if self._direction > 0:
            if ok:
                self._last_good = self._delay
                if self._delay >= cfg.max_delay:
                    self._settle(self._delay)
                else:
                    self._delay = min(
                        self._delay + cfg.delay_step, float(cfg.max_delay)
                    )
            else:
                # Back off to the last delay that met the threshold.
                fallback = (
                    self._last_good
                    if self._last_good is not None
                    else max(
                        float(cfg.min_delay), self._delay - cfg.delay_step
                    )
                )
                self._settle(fallback)
        else:  # searching down: the phase started above the knee
            if ok:
                self._settle(self._delay)
            elif self._delay <= cfg.min_delay:
                self._settle(float(cfg.min_delay))
            else:
                self._delay = max(
                    float(cfg.min_delay), self._delay - cfg.delay_step
                )

    def _settle(self, delay: float) -> None:
        self._delay = delay
        self._recorded_delay = delay
        self._state = _DynState.SETTLED

    def _restart_phase(self) -> None:
        self._windows_in_phase = 0
        self._state = _DynState.BASELINE
        self._delay = 0.0  # sample the no-delay baseline next window
        self.delay_trace.append((self._window_index, self._delay))
