"""Drop policies: the "may this activation be elided" role.

The paper's AMS unit (:class:`repro.sched.ams.AMSUnit`) *is* the
canonical drop policy — it already speaks the :class:`DropPolicy`
contract and is registered here as ``"ams"`` (with ``AMSConfig.mode``
selecting off/static/dynamic, so the OFF mode doubles as a no-drop
policy). The explicit ``"none"`` policy exists for compositions and
tests that want no AMS ledger at all.
"""

from __future__ import annotations

from typing import Optional

from repro.config.scheduler import AMSConfig
from repro.sched.ams import AMSUnit
from repro.sched.policies.base import DropPolicy, register_drop_policy


class NullDropPolicy(DropPolicy):
    """Never drops; keeps no coverage ledger."""

    name = "none"

    def __init__(self, config: Optional[AMSConfig] = None) -> None:
        self.config = config if config is not None else AMSConfig()
        self.reads_arrived = 0
        self.reads_dropped = 0
        self.th_rbl = 0

    @property
    def enabled(self) -> bool:
        return False

    @property
    def coverage(self) -> float:
        return 0.0

    def may_drop(self, queue, bank: int, row: int) -> bool:
        return False


# AMSUnit predates the plugin interface and satisfies it structurally;
# adopt it as a virtual subclass rather than editing a verified unit.
DropPolicy.register(AMSUnit)
AMSUnit.name = "ams"

register_drop_policy("ams", AMSUnit)
register_drop_policy("none", NullDropPolicy)
