"""Candidate selectors: the baseline arbiters under DMS/AMS.

All three selectors share the candidate-key discipline of
:mod:`repro.sched.policies.base` — ``(ready_time, priority,
enqueue_time)`` with strict ``<`` comparison and first-wins tie-break —
so swapping selectors changes *which* commands compete, never how ties
resolve.

``select`` is the simulator's hottest call (one per issued DRAM
command). The fold keeps the best key as three scalars and compares
them branch-by-branch — the ``(ready, prio, enq)`` tuple is allocated
once for the winner, never for losers — and the ready-time queries of
:mod:`repro.dram.channel` are inlined against the structures ``bind``
hoisted: bank slots, the per-row/per-bank index dicts, the bank-group
column windows, and the :class:`~repro.dram.timing.TimingTable` floats.
The arithmetic mirrors ``column_ready_time`` / ``precharge_ready_time``
/ ``activate_ready_time`` expression-for-expression (the golden
differential suite pins the reports bit-identical), and the per-bank
index buckets are non-empty for every bank in ``banks_with_pending()``
— a :meth:`~repro.sched.pending_queue.PendingQueue.check_invariants`
invariant — so the FIFO heads are taken without a None guard.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.bank import NO_ROW as _NO_ROW
from repro.sched.policies.base import (
    Candidate,
    CandidateSelector,
    register_selector,
)

_INF = float("inf")


@register_selector
class FRFCFSSelector(CandidateSelector):
    """FR-FCFS (Rixner et al.): row hits first, then oldest-first.

    The paper's baseline arbiter. Per bank, the oldest pending row hit
    competes as a column command; a bank with no hits competes with the
    command that opens its oldest request's row (PRE when a stale row is
    open, ACT otherwise), gated by the activation gate.
    """

    name = "frfcfs"

    def select(self, now: float) -> Optional[Candidate]:
        channel = self._channel
        next_cmd = channel._next_cmd_time
        bus_free = channel._bus_free
        act_floor = channel._last_act_any + self._tRRD
        banks = self._banks
        by_bank = self._by_bank
        by_row = self._by_row
        group_col = self._group_earliest_col
        tCL = self._tCL
        tCWL = self._tCWL
        gate_on = self._gate_enabled
        earliest_eligible = self._earliest_eligible
        b_ready = _INF
        b_prio = 2
        b_enq = 0.0
        b_kind = b_bank = b_req = None
        for bank_idx in self._pending_banks:
            bank = banks[bank_idx]
            open_row = bank.open_row
            if open_row != _NO_ROW:
                bucket = by_row.get((bank_idx, open_row))
                if bucket:
                    hit = next(iter(bucket.values()))
                    is_write = hit.is_write
                    t = (
                        bank.earliest_col_wr
                        if is_write
                        else bank.earliest_col_rd
                    )
                    if t < now:
                        t = now
                    g = group_col[bank.bank_group]
                    if t < g:
                        t = g
                    if t < next_cmd:
                        t = next_cmd
                    ds = t + (tCWL if is_write else tCL)
                    if ds < bus_free:
                        t += bus_free - ds
                    enq = hit.enqueue_time
                    if t < b_ready or (
                        t == b_ready
                        and (b_prio > 0 or enq < b_enq)
                    ):
                        b_ready = t
                        b_prio = 0
                        b_enq = enq
                        b_kind = "col"
                        b_bank = bank
                        b_req = hit
                    continue
                oldest = next(iter(by_bank[bank_idx].values()))
                t = bank.earliest_pre
                if t < now:
                    t = now
                if t < next_cmd:
                    t = next_cmd
                kind = "pre"
            else:
                oldest = next(iter(by_bank[bank_idx].values()))
                t = bank.earliest_act
                if t < now:
                    t = now
                if t < act_floor:
                    t = act_floor
                if t < next_cmd:
                    t = next_cmd
                kind = "act"
            # The gate applies to the command that commits to opening a
            # new row: PRE for an open bank, ACT otherwise.
            enq = oldest.enqueue_time
            if gate_on:
                g = earliest_eligible(enq)
                if t < g:
                    t = g
            if t < b_ready or (
                t == b_ready and b_prio == 1 and enq < b_enq
            ):
                b_ready = t
                b_prio = 1
                b_enq = enq
                b_kind = kind
                b_bank = bank
                b_req = oldest
        best = (
            None
            if b_kind is None
            else ((b_ready, b_prio, b_enq), b_kind, b_bank, b_req)
        )
        if self._close_row:
            best = self._consider_close_rows(best, now)
        return best


@register_selector
class FCFSSelector(CandidateSelector):
    """Strict FCFS per bank: only the *oldest* request may issue.

    Younger row hits never bypass an older request, even to an open row
    — the Section II-C ablation that motivates FR-FCFS as the baseline.
    """

    name = "fcfs"

    def select(self, now: float) -> Optional[Candidate]:
        channel = self._channel
        next_cmd = channel._next_cmd_time
        bus_free = channel._bus_free
        act_floor = channel._last_act_any + self._tRRD
        banks = self._banks
        by_bank = self._by_bank
        group_col = self._group_earliest_col
        tCL = self._tCL
        tCWL = self._tCWL
        gate_on = self._gate_enabled
        earliest_eligible = self._earliest_eligible
        b_ready = _INF
        b_prio = 2
        b_enq = 0.0
        b_kind = b_bank = b_req = None
        for bank_idx in self._pending_banks:
            bank = banks[bank_idx]
            open_row = bank.open_row
            is_open = open_row != _NO_ROW
            oldest = next(iter(by_bank[bank_idx].values()))
            enq = oldest.enqueue_time
            if is_open and oldest.row == open_row:
                is_write = oldest.is_write
                t = (
                    bank.earliest_col_wr
                    if is_write
                    else bank.earliest_col_rd
                )
                if t < now:
                    t = now
                g = group_col[bank.bank_group]
                if t < g:
                    t = g
                if t < next_cmd:
                    t = next_cmd
                ds = t + (tCWL if is_write else tCL)
                if ds < bus_free:
                    t += bus_free - ds
                if t < b_ready or (
                    t == b_ready and (b_prio > 0 or enq < b_enq)
                ):
                    b_ready = t
                    b_prio = 0
                    b_enq = enq
                    b_kind = "col"
                    b_bank = bank
                    b_req = oldest
                continue
            if is_open:
                t = bank.earliest_pre
                if t < now:
                    t = now
                if t < next_cmd:
                    t = next_cmd
                kind = "pre"
            else:
                t = bank.earliest_act
                if t < now:
                    t = now
                if t < act_floor:
                    t = act_floor
                if t < next_cmd:
                    t = next_cmd
                kind = "act"
            if gate_on:
                g = earliest_eligible(enq)
                if t < g:
                    t = g
            if t < b_ready or (
                t == b_ready and b_prio == 1 and enq < b_enq
            ):
                b_ready = t
                b_prio = 1
                b_enq = enq
                b_kind = kind
                b_bank = bank
                b_req = oldest
        best = (
            None
            if b_kind is None
            else ((b_ready, b_prio, b_enq), b_kind, b_bank, b_req)
        )
        if self._close_row:
            best = self._consider_close_rows(best, now)
        return best


@register_selector
class FRFCFSCapSelector(CandidateSelector):
    """FR-FCFS with a row-hit streak cap (starvation bound).

    Identical to FR-FCFS until one bank has served
    ``SchedulerConfig.hit_streak_cap`` consecutive hits to its open row
    while an older request for a *different* row waits on the same bank;
    the next hit is then suppressed so the oldest request forces the row
    switch. Caps the worst-case wait a row-miss request can suffer under
    a hit-heavy access stream (cf. the batch-oriented GPU schedulers).
    """

    name = "frfcfs-cap"

    def __init__(self, config) -> None:
        super().__init__(config)
        self._cap = config.hit_streak_cap
        #: bank index -> (row, consecutive column commands to that row).
        self._streaks: dict[int, tuple[int, int]] = {}

    def select(self, now: float) -> Optional[Candidate]:
        channel = self._channel
        next_cmd = channel._next_cmd_time
        bus_free = channel._bus_free
        act_floor = channel._last_act_any + self._tRRD
        banks = self._banks
        by_bank = self._by_bank
        by_row = self._by_row
        group_col = self._group_earliest_col
        tCL = self._tCL
        tCWL = self._tCWL
        gate_on = self._gate_enabled
        earliest_eligible = self._earliest_eligible
        cap = self._cap
        streaks = self._streaks
        b_ready = _INF
        b_prio = 2
        b_enq = 0.0
        b_kind = b_bank = b_req = None
        for bank_idx in self._pending_banks:
            bank = banks[bank_idx]
            open_row = bank.open_row
            if open_row != _NO_ROW:
                bucket = by_row.get((bank_idx, open_row))
                hit = next(iter(bucket.values())) if bucket else None
                if hit is not None:
                    streak = streaks.get(bank_idx)
                    if (
                        streak is not None
                        and streak[0] == open_row
                        and streak[1] >= cap
                    ):
                        oldest = next(iter(by_bank[bank_idx].values()))
                        if oldest.row != open_row:
                            hit = None  # capped: force the row switch
                if hit is not None:
                    is_write = hit.is_write
                    t = (
                        bank.earliest_col_wr
                        if is_write
                        else bank.earliest_col_rd
                    )
                    if t < now:
                        t = now
                    g = group_col[bank.bank_group]
                    if t < g:
                        t = g
                    if t < next_cmd:
                        t = next_cmd
                    ds = t + (tCWL if is_write else tCL)
                    if ds < bus_free:
                        t += bus_free - ds
                    enq = hit.enqueue_time
                    if t < b_ready or (
                        t == b_ready and (b_prio > 0 or enq < b_enq)
                    ):
                        b_ready = t
                        b_prio = 0
                        b_enq = enq
                        b_kind = "col"
                        b_bank = bank
                        b_req = hit
                    continue
                oldest = next(iter(by_bank[bank_idx].values()))
                t = bank.earliest_pre
                if t < now:
                    t = now
                if t < next_cmd:
                    t = next_cmd
                kind = "pre"
            else:
                oldest = next(iter(by_bank[bank_idx].values()))
                t = bank.earliest_act
                if t < now:
                    t = now
                if t < act_floor:
                    t = act_floor
                if t < next_cmd:
                    t = next_cmd
                kind = "act"
            enq = oldest.enqueue_time
            if gate_on:
                g = earliest_eligible(enq)
                if t < g:
                    t = g
            if t < b_ready or (
                t == b_ready and b_prio == 1 and enq < b_enq
            ):
                b_ready = t
                b_prio = 1
                b_enq = enq
                b_kind = kind
                b_bank = bank
                b_req = oldest
        best = (
            None
            if b_kind is None
            else ((b_ready, b_prio, b_enq), b_kind, b_bank, b_req)
        )
        if self._close_row:
            best = self._consider_close_rows(best, now)
        return best

    def on_issue(self, kind, bank_idx, request) -> None:
        if kind == "col" and request is not None:
            streak = self._streaks.get(bank_idx)
            if streak is not None and streak[0] == request.row:
                self._streaks[bank_idx] = (request.row, streak[1] + 1)
            else:
                self._streaks[bank_idx] = (request.row, 1)
        else:
            # Any row switch (PRE/ACT/close/drop) breaks the streak.
            self._streaks.pop(bank_idx, None)
