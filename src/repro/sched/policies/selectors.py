"""Candidate selectors: the baseline arbiters under DMS/AMS.

All three selectors share the candidate-key discipline of
:mod:`repro.sched.policies.base` — ``(ready_time, priority,
enqueue_time)`` with strict ``<`` comparison and first-wins tie-break —
so swapping selectors changes *which* commands compete, never how ties
resolve.

``select`` is the simulator's hottest call (one per issued DRAM
command): bound methods are hoisted to locals and the fold is inlined
rather than factored through a ``consider()`` helper, which profiles at
~15 % of total runtime in call overhead.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.bank import NO_ROW as _NO_ROW
from repro.sched.policies.base import (
    COL_PRIORITY as _COL,
    SWITCH_PRIORITY as _SWITCH,
    Candidate,
    CandidateSelector,
    register_selector,
)


@register_selector
class FRFCFSSelector(CandidateSelector):
    """FR-FCFS (Rixner et al.): row hits first, then oldest-first.

    The paper's baseline arbiter. Per bank, the oldest pending row hit
    competes as a column command; a bank with no hits competes with the
    command that opens its oldest request's row (PRE when a stale row is
    open, ACT otherwise), gated by the activation gate.
    """

    name = "frfcfs"

    def select(self, now: float) -> Optional[Candidate]:
        best: Optional[Candidate] = None
        banks = self._banks
        oldest_hit_for = self._oldest_hit_for
        oldest_for_bank = self._oldest_for_bank
        column_ready_time = self._column_ready_time
        precharge_ready_time = self._precharge_ready_time
        activate_ready_time = self._activate_ready_time
        earliest_eligible = self._earliest_eligible
        for bank_idx in self._banks_with_pending():
            bank = banks[bank_idx]
            open_row = bank.open_row
            is_open = open_row != _NO_ROW
            if is_open:
                hit = oldest_hit_for(bank_idx, open_row)
                if hit is not None:
                    ready = column_ready_time(bank, hit.is_write, now)
                    key = (ready, _COL, hit.enqueue_time)
                    if best is None or key < best[0]:
                        best = (key, "col", bank, hit)
                    continue
            oldest = oldest_for_bank(bank_idx)
            if oldest is None:
                continue
            # The gate applies to the command that commits to opening a
            # new row: PRE for an open bank, ACT otherwise.
            gate = earliest_eligible(oldest.enqueue_time)
            if is_open:
                ready = precharge_ready_time(bank, now)
                if ready < gate:
                    ready = gate
                key = (ready, _SWITCH, oldest.enqueue_time)
                if best is None or key < best[0]:
                    best = (key, "pre", bank, oldest)
            else:
                ready = activate_ready_time(bank, now)
                if ready < gate:
                    ready = gate
                key = (ready, _SWITCH, oldest.enqueue_time)
                if best is None or key < best[0]:
                    best = (key, "act", bank, oldest)
        if self._close_row:
            best = self._consider_close_rows(best, now)
        return best


@register_selector
class FCFSSelector(CandidateSelector):
    """Strict FCFS per bank: only the *oldest* request may issue.

    Younger row hits never bypass an older request, even to an open row
    — the Section II-C ablation that motivates FR-FCFS as the baseline.
    """

    name = "fcfs"

    def select(self, now: float) -> Optional[Candidate]:
        best: Optional[Candidate] = None
        banks = self._banks
        oldest_for_bank = self._oldest_for_bank
        column_ready_time = self._column_ready_time
        precharge_ready_time = self._precharge_ready_time
        activate_ready_time = self._activate_ready_time
        earliest_eligible = self._earliest_eligible
        for bank_idx in self._banks_with_pending():
            bank = banks[bank_idx]
            open_row = bank.open_row
            is_open = open_row != _NO_ROW
            oldest = oldest_for_bank(bank_idx)
            if oldest is None:
                continue
            if is_open and oldest.row == open_row:
                ready = column_ready_time(bank, oldest.is_write, now)
                key = (ready, _COL, oldest.enqueue_time)
                if best is None or key < best[0]:
                    best = (key, "col", bank, oldest)
                continue
            gate = earliest_eligible(oldest.enqueue_time)
            if is_open:
                ready = precharge_ready_time(bank, now)
                if ready < gate:
                    ready = gate
                key = (ready, _SWITCH, oldest.enqueue_time)
                if best is None or key < best[0]:
                    best = (key, "pre", bank, oldest)
            else:
                ready = activate_ready_time(bank, now)
                if ready < gate:
                    ready = gate
                key = (ready, _SWITCH, oldest.enqueue_time)
                if best is None or key < best[0]:
                    best = (key, "act", bank, oldest)
        if self._close_row:
            best = self._consider_close_rows(best, now)
        return best


@register_selector
class FRFCFSCapSelector(CandidateSelector):
    """FR-FCFS with a row-hit streak cap (starvation bound).

    Identical to FR-FCFS until one bank has served
    ``SchedulerConfig.hit_streak_cap`` consecutive hits to its open row
    while an older request for a *different* row waits on the same bank;
    the next hit is then suppressed so the oldest request forces the row
    switch. Caps the worst-case wait a row-miss request can suffer under
    a hit-heavy access stream (cf. the batch-oriented GPU schedulers).
    """

    name = "frfcfs-cap"

    def __init__(self, config) -> None:
        super().__init__(config)
        self._cap = config.hit_streak_cap
        #: bank index -> (row, consecutive column commands to that row).
        self._streaks: dict[int, tuple[int, int]] = {}

    def select(self, now: float) -> Optional[Candidate]:
        best: Optional[Candidate] = None
        banks = self._banks
        cap = self._cap
        streaks = self._streaks
        oldest_hit_for = self._oldest_hit_for
        oldest_for_bank = self._oldest_for_bank
        column_ready_time = self._column_ready_time
        precharge_ready_time = self._precharge_ready_time
        activate_ready_time = self._activate_ready_time
        earliest_eligible = self._earliest_eligible
        for bank_idx in self._banks_with_pending():
            bank = banks[bank_idx]
            open_row = bank.open_row
            is_open = open_row != _NO_ROW
            if is_open:
                hit = oldest_hit_for(bank_idx, open_row)
                if hit is not None:
                    streak = streaks.get(bank_idx)
                    if (
                        streak is not None
                        and streak[0] == open_row
                        and streak[1] >= cap
                    ):
                        oldest = oldest_for_bank(bank_idx)
                        if oldest is not None and oldest.row != open_row:
                            hit = None  # capped: force the row switch
                if hit is not None:
                    ready = column_ready_time(bank, hit.is_write, now)
                    key = (ready, _COL, hit.enqueue_time)
                    if best is None or key < best[0]:
                        best = (key, "col", bank, hit)
                    continue
            oldest = oldest_for_bank(bank_idx)
            if oldest is None:
                continue
            gate = earliest_eligible(oldest.enqueue_time)
            if is_open:
                ready = precharge_ready_time(bank, now)
                if ready < gate:
                    ready = gate
                key = (ready, _SWITCH, oldest.enqueue_time)
                if best is None or key < best[0]:
                    best = (key, "pre", bank, oldest)
            else:
                ready = activate_ready_time(bank, now)
                if ready < gate:
                    ready = gate
                key = (ready, _SWITCH, oldest.enqueue_time)
                if best is None or key < best[0]:
                    best = (key, "act", bank, oldest)
        if self._close_row:
            best = self._consider_close_rows(best, now)
        return best

    def on_issue(self, kind, bank_idx, request) -> None:
        if kind == "col" and request is not None:
            streak = self._streaks.get(bank_idx)
            if streak is not None and streak[0] == request.row:
                self._streaks[bank_idx] = (request.row, streak[1] + 1)
            else:
                self._streaks[bank_idx] = (request.row, 1)
        else:
            # Any row switch (PRE/ACT/close/drop) breaks the streak.
            self._streaks.pop(bank_idx, None)
