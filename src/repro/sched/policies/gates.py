"""Activation gates: the "when may a row open" role.

The paper's DMS unit (:class:`repro.sched.dms.DMSUnit`) *is* the
canonical gate — it already speaks the :class:`ActivationGate` contract
and is registered here as ``"dms"`` (with ``DMSConfig.mode`` selecting
off/static/dynamic, so the OFF mode doubles as a pass-through). The
explicit ``"none"`` gate exists for compositions and tests that want a
gate with no DMS state at all.
"""

from __future__ import annotations

from typing import Optional

from repro.config.scheduler import DMSConfig
from repro.sched.dms import DMSUnit
from repro.sched.policies.base import ActivationGate, register_gate


class NullGate(ActivationGate):
    """Pass-through gate: every row-opening command is always eligible."""

    name = "none"

    def __init__(self, config: Optional[DMSConfig] = None) -> None:
        self.config = config if config is not None else DMSConfig()

    @property
    def enabled(self) -> bool:
        return False

    @property
    def current_delay(self) -> float:
        return 0.0

    @property
    def wants_ams_halted(self) -> bool:
        return False

    def earliest_eligible(self, enqueue_time: float) -> float:
        return enqueue_time


# DMSUnit predates the plugin interface and satisfies it structurally;
# adopt it as a virtual subclass rather than editing a verified unit.
ActivationGate.register(DMSUnit)
DMSUnit.name = "dms"

register_gate("dms", DMSUnit)
register_gate("none", NullGate)
