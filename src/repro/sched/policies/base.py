"""Plugin interfaces of the composable scheduler-policy pipeline.

The memory controller used to hard-wire three decisions into one class;
they are now three independently pluggable roles (paper Fig. 9 letters
in parentheses):

* **Candidate selector** (B) — scans the pending queue and proposes the
  single best next DRAM command as a :data:`Candidate`. FR-FCFS is the
  paper's baseline; FCFS and FR-FCFS-with-streak-cap are comparison
  baselines (cf. the staged/decomposed scheduler designs of
  Ausavarungnirun et al.).
* **Activation gate** (C) — may defer the command that commits to
  opening a new row. The paper's DMS unit is the canonical gate.
* **Drop policy** (D/E) — may answer a row's pending requests with
  predicted values instead of opening the row. The paper's AMS unit is
  the canonical drop policy.

Each role has a string-keyed registry so new policies compose with the
existing ones declaratively (``SchedulerConfig.arbiter`` /
``harness.schemes``) without touching the controller's hot path.

A candidate is a plain tuple — the selector runs once per issued DRAM
command, on the simulator's hottest loop, so no wrapper object is worth
its allocation::

    (key, kind, bank, request)

``key = (ready_time, priority, enqueue_time)`` orders candidates
(earliest ready first, row hits before row switches, oldest first);
``kind`` is one of ``"col"``, ``"pre"``, ``"act"``, ``"close"``;
``request`` is ``None`` for ``"close"`` (close-row sweep) candidates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, ClassVar, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.config.scheduler import AMSConfig, DMSConfig, SchedulerConfig
    from repro.config.tenants import TenantMixSpec
    from repro.dram.channel import Channel
    from repro.dram.request import MemoryRequest
    from repro.sched.pending_queue import PendingQueue

#: (key, kind, bank, request) — see module docstring.
Candidate = tuple  # type: ignore[type-arg]

#: FR-FCFS priority classes used in candidate keys: row hits (column
#: commands) strictly before row switches. PRE and ACT are the two
#: halves of a row switch, issued as independent commands so other
#: banks can use the command bus during tRP/tRRD windows.
COL_PRIORITY = 0
SWITCH_PRIORITY = 1


class CandidateSelector(ABC):
    """Scans the pending queue and proposes the next DRAM command.

    Lifecycle: constructed from the :class:`SchedulerConfig`, then
    :meth:`bind`-ed once to its controller's queue/channel/gate (bound
    methods are hoisted to attributes there — ``select`` runs once per
    issued command). ``select`` must be read-only: it may not mutate
    the queue, the banks, or the gate.
    """

    #: Registry key; also the ``SchedulerConfig.arbiter`` value.
    name: ClassVar[str] = ""

    def __init__(self, config: "SchedulerConfig") -> None:
        self.config = config
        self._close_row = config.row_policy == "close"

    def bind(
        self,
        *,
        queue: "PendingQueue",
        channel: "Channel",
        gate: "ActivationGate",
    ) -> None:
        """Attach to one controller; hoist the hot-path state.

        ``select`` folds candidates straight over the queue/channel
        internals: the per-bank and per-row index dicts, the bank-group
        column windows, and the flattened
        :class:`~repro.dram.timing.TimingTable` floats. Those containers
        are mutated in place by their owners, so the aliases hoisted
        here stay live; the channel's scalar windows (command bus, data
        bus, last ACT) are rebound per issue and are re-read inside each
        ``select`` call instead.
        """
        self._queue = queue
        self._channel = channel
        self._banks = channel.banks
        self._gate = gate
        self._earliest_eligible = gate.earliest_eligible
        #: The gate's OFF mode maps enqueue_time -> enqueue_time, and a
        #: visible request always enqueued at or before ``now`` — below
        #: every ready time — so a disabled gate is skipped entirely.
        #: ``enabled`` is mode-derived and constant for a run.
        self._gate_enabled = gate.enabled
        self._banks_with_pending = queue.banks_with_pending
        self._oldest_for_bank = queue.oldest_for_bank
        self._oldest_hit_for = queue.oldest_hit_for
        self._column_ready_time = channel.column_ready_time
        self._precharge_ready_time = channel.precharge_ready_time
        self._activate_ready_time = channel.activate_ready_time
        # Live internal indexes (aliases; read-only in select).
        self._pending_banks = queue.banks_with_pending()
        self._by_bank = queue._by_bank
        self._by_row = queue._by_row
        self._group_earliest_col = channel._group_earliest_col
        table = channel.table
        self._tCL = table.tCL
        self._tCWL = table.tCWL
        self._tRRD = table.tRRD

    @abstractmethod
    def select(self, now: float) -> Optional[Candidate]:
        """The best candidate at ``now``, or None when nothing pends."""

    def on_issue(
        self, kind: str, bank: int, request: Optional["MemoryRequest"]
    ) -> None:
        """Issue notification for stateful selectors (e.g. streak caps).

        The controller skips this call entirely when a selector does not
        override it, so stateless selectors pay nothing.
        """

    # ------------------------------------------------------------------
    def _consider_close_rows(
        self, best: Optional[Candidate], now: float
    ) -> Optional[Candidate]:
        """Close-row policy sweep: fold in a PRE for any open bank with
        no pending hits, without waiting for a row-opening request."""
        oldest_hit_for = self._oldest_hit_for
        precharge_ready_time = self._precharge_ready_time
        for bank in self._banks:
            if not bank.is_open:
                continue
            if oldest_hit_for(bank.index, bank.open_row) is not None:
                continue
            ready = precharge_ready_time(bank, now)
            key = (ready, SWITCH_PRIORITY, float("inf"))
            if best is None or key < best[0]:
                best = (key, "close", bank, None)
        return best


class ActivationGate(ABC):
    """Decides *when* a row-opening command becomes eligible.

    The contract mirrors the paper's DMS unit: the gate maps a pending
    request's enqueue time to the earliest simulation time at which the
    command that would open its row (PRE on an open bank, ACT on a
    closed one) may be considered. Row hits are never gated.
    """

    name: ClassVar[str] = ""

    @property
    @abstractmethod
    def enabled(self) -> bool:
        """Whether the gate constrains anything at all."""

    @property
    @abstractmethod
    def current_delay(self) -> float:
        """The delay currently enforced (telemetry probe)."""

    @property
    @abstractmethod
    def wants_ams_halted(self) -> bool:
        """True while the gate needs the drop policy paused (Dyn-DMS
        samples its no-delay baseline with AMS halted)."""

    @abstractmethod
    def earliest_eligible(self, enqueue_time: float) -> float:
        """Earliest time a row-opening request enqueued at
        ``enqueue_time`` may be considered for scheduling."""

    def on_window(self, bwutil: float) -> None:
        """Consume one profiling window's bus utilisation."""


class DropPolicy(ABC):
    """Decides whether a prospective row activation should be elided by
    dropping its pending requests (answered by the value predictor).
    """

    name: ClassVar[str] = ""

    @property
    @abstractmethod
    def enabled(self) -> bool:
        """Whether the policy can ever drop."""

    @property
    @abstractmethod
    def coverage(self) -> float:
        """Cumulative dropped / arrived reads (the paper's coverage)."""

    @abstractmethod
    def may_drop(
        self, queue: "PendingQueue", bank: int, row: int
    ) -> bool:
        """Whether the activation of ``(bank, row)`` should be elided."""

    def set_halted(self, halted: bool) -> None:
        """Pause/resume dropping (driven by the gate's baseline probe)."""

    def on_read_arrival(self) -> None:
        """Count an arriving global read (the coverage denominator)."""

    def on_drop(self, count: int = 1) -> None:
        """Count ``count`` dropped reads."""

    def on_window(self) -> None:
        """Close one profiling window (dynamic threshold control)."""


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
_SELECTORS: dict[str, type[CandidateSelector]] = {}
_GATES: dict[str, Callable[["DMSConfig"], ActivationGate]] = {}
_DROP_POLICIES: dict[str, Callable[["AMSConfig"], DropPolicy]] = {}
#: Multi-tenant arbiters: selectors constructed with (config, mix) that
#: share one controller among N tenant streams. The fourth registry,
#: keyed by ``TenantMixSpec.arbiter`` (``SchedulerConfig.arbiter`` keeps
#: naming a plain *selector* for single-tenant runs).
_ARBITERS: dict[str, type[CandidateSelector]] = {}


def register_selector(
    cls: type[CandidateSelector],
) -> type[CandidateSelector]:
    """Register a selector class under its ``name`` (decorator-friendly)."""
    if not cls.name:
        raise ConfigError(f"selector {cls.__name__} has no name")
    _SELECTORS[cls.name] = cls
    return cls


def make_selector(
    name: str, config: "SchedulerConfig"
) -> CandidateSelector:
    """Instantiate the registered selector ``name`` for ``config``."""
    try:
        cls = _SELECTORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown candidate selector {name!r}; "
            f"registered: {', '.join(sorted(_SELECTORS))}"
        ) from None
    return cls(config)


def selector_names() -> list[str]:
    """Sorted names of every registered candidate selector."""
    return sorted(_SELECTORS)


def register_gate(
    name: str, factory: Callable[["DMSConfig"], ActivationGate]
) -> None:
    """Register an activation-gate factory under ``name``."""
    _GATES[name] = factory


def make_gate(name: str, config: "DMSConfig") -> ActivationGate:
    """Instantiate the registered activation gate ``name``."""
    try:
        factory = _GATES[name]
    except KeyError:
        raise ConfigError(
            f"unknown activation gate {name!r}; "
            f"registered: {', '.join(sorted(_GATES))}"
        ) from None
    return factory(config)


def gate_names() -> list[str]:
    """Sorted names of every registered activation gate."""
    return sorted(_GATES)


def register_drop_policy(
    name: str, factory: Callable[["AMSConfig"], DropPolicy]
) -> None:
    """Register a drop-policy factory under ``name``."""
    _DROP_POLICIES[name] = factory


def make_drop_policy(name: str, config: "AMSConfig") -> DropPolicy:
    """Instantiate the registered drop policy ``name``."""
    try:
        factory = _DROP_POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown drop policy {name!r}; "
            f"registered: {', '.join(sorted(_DROP_POLICIES))}"
        ) from None
    return factory(config)


def drop_policy_names() -> list[str]:
    """Sorted names of every registered drop policy."""
    return sorted(_DROP_POLICIES)


def register_arbiter(
    cls: type[CandidateSelector],
) -> type[CandidateSelector]:
    """Register a multi-tenant arbiter class under its ``name``."""
    if not cls.name:
        raise ConfigError(f"arbiter {cls.__name__} has no name")
    _ARBITERS[cls.name] = cls
    return cls


def make_arbiter(
    name: str, config: "SchedulerConfig", mix: "TenantMixSpec"
) -> CandidateSelector:
    """Instantiate the registered arbiter ``name`` for one controller."""
    try:
        cls = _ARBITERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown arbiter {name!r}; "
            f"registered: {', '.join(sorted(_ARBITERS))}"
        ) from None
    return cls(config, mix)


def arbiter_names() -> list[str]:
    """Sorted names of every registered multi-tenant arbiter."""
    return sorted(_ARBITERS)
