"""Multi-tenant arbiters: how one controller is shared among tenants.

An arbiter is a :class:`~repro.sched.policies.base.CandidateSelector`
constructed with ``(SchedulerConfig, TenantMixSpec)`` and installed on
every controller when a multi-tenant mix attaches
(:meth:`~repro.sim.system.GPUSystem.from_spec`). All three arbiters
share one fold over the pending queue, parameterised by a per-tenant
*rank* array:

* candidate keys are ``(ready, rank[tenant], priority, enqueue_time)``
  — one element longer than the single-tenant ``(ready, prio, enq)``
  discipline, which is safe because the controller's service loop reads
  only ``key[0]`` (the ready time). Ranks break ready-time ties, so the
  channel never idles to favour a class: a work-conserving strict
  priority, the way real controllers arbitrate among *ready* commands;
* DMS gating is scoped per tenant: the activation gate applies only to
  tenants whose class permits it (``latency`` tenants are never aged).
  AMS drop scoping needs no arbiter help — the trace composer strips
  the ``approximable`` annotation from every non-``approx-batch``
  tenant's accesses, so ``row_all_approximable`` structurally excludes
  their rows from dropping;
* within a bank, FR-FCFS order is preserved (oldest hit / oldest
  request); ranks arbitrate among the banks' proposals.

``shared-frfcfs`` keeps every rank at zero — tenant-blind FR-FCFS, the
baseline. ``tenant-priority`` ranks by service class (latency <
bandwidth < approx-batch). ``batch-fair`` ranks by least attained
service over a sliding batch window, steering issue toward the tenant
with the highest estimated slowdown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config.tenants import TENANT_CLASSES
from repro.dram.bank import NO_ROW as _NO_ROW
from repro.sched.policies.base import (
    COL_PRIORITY,
    SWITCH_PRIORITY,
    Candidate,
    CandidateSelector,
    register_arbiter,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.config.scheduler import SchedulerConfig
    from repro.config.tenants import TenantMixSpec

#: Column issues per batch window of the batch-fair arbiter; attained
#: service is halved at every window boundary so the ranking tracks
#: recent demand (an implicit, sliding request batch).
BATCH_WINDOW_ISSUES = 64


class TenantArbiter(CandidateSelector):
    """Shared rank-parameterised FR-FCFS fold (see module docstring)."""

    def __init__(
        self, config: "SchedulerConfig", mix: "TenantMixSpec"
    ) -> None:
        super().__init__(config)
        self.mix = mix
        #: Per-tenant DMS gate scoping, indexed by ``tenant_id``.
        self._gated = tuple(t.gated for t in mix.tenants)
        #: Per-tenant priority rank (lower wins ready-time ties).
        self._rank: list[int] = [0] * len(mix.tenants)

    def select(self, now: float) -> Optional[Candidate]:
        channel = self._channel
        next_cmd = channel._next_cmd_time
        bus_free = channel._bus_free
        act_floor = channel._last_act_any + self._tRRD
        banks = self._banks
        by_bank = self._by_bank
        by_row = self._by_row
        group_col = self._group_earliest_col
        tCL = self._tCL
        tCWL = self._tCWL
        gate_on = self._gate_enabled
        earliest_eligible = self._earliest_eligible
        gated = self._gated
        rank = self._rank
        b_key = None
        b_kind = b_bank = b_req = None
        for bank_idx in self._pending_banks:
            bank = banks[bank_idx]
            open_row = bank.open_row
            if open_row != _NO_ROW:
                bucket = by_row.get((bank_idx, open_row))
                if bucket:
                    hit = next(iter(bucket.values()))
                    is_write = hit.is_write
                    t = (
                        bank.earliest_col_wr
                        if is_write
                        else bank.earliest_col_rd
                    )
                    if t < now:
                        t = now
                    g = group_col[bank.bank_group]
                    if t < g:
                        t = g
                    if t < next_cmd:
                        t = next_cmd
                    ds = t + (tCWL if is_write else tCL)
                    if ds < bus_free:
                        t += bus_free - ds
                    key = (
                        t, rank[hit.tenant_id],
                        COL_PRIORITY, hit.enqueue_time,
                    )
                    if b_key is None or key < b_key:
                        b_key = key
                        b_kind = "col"
                        b_bank = bank
                        b_req = hit
                    continue
                oldest = next(iter(by_bank[bank_idx].values()))
                t = bank.earliest_pre
                if t < now:
                    t = now
                if t < next_cmd:
                    t = next_cmd
                kind = "pre"
            else:
                oldest = next(iter(by_bank[bank_idx].values()))
                t = bank.earliest_act
                if t < now:
                    t = now
                if t < act_floor:
                    t = act_floor
                if t < next_cmd:
                    t = next_cmd
                kind = "act"
            # Per-tenant gate scoping: the row-opening command is aged
            # only when the owning tenant's class permits gating.
            if gate_on and gated[oldest.tenant_id]:
                g = earliest_eligible(oldest.enqueue_time)
                if t < g:
                    t = g
            key = (
                t, rank[oldest.tenant_id],
                SWITCH_PRIORITY, oldest.enqueue_time,
            )
            if b_key is None or key < b_key:
                b_key = key
                b_kind = kind
                b_bank = bank
                b_req = oldest
        best = (
            None if b_kind is None else (b_key, b_kind, b_bank, b_req)
        )
        if self._close_row:
            best = self._consider_close_rows(best, now)
        return best


@register_arbiter
class SharedFRFCFSArbiter(TenantArbiter):
    """Tenant-blind FR-FCFS over the merged stream (the baseline).

    All ranks stay zero, so the key ordering degenerates to the plain
    ``(ready, prio, enq)`` discipline; only the per-tenant gate scoping
    distinguishes it from the single-tenant selector.
    """

    name = "shared-frfcfs"


@register_arbiter
class TenantPriorityArbiter(TenantArbiter):
    """Strict class priority: latency < bandwidth < approx-batch.

    Among simultaneously-ready commands, a stronger class always wins —
    a latency tenant's row switch beats an approx-batch tenant's row
    hit. Within a class, FR-FCFS applies unchanged.
    """

    name = "tenant-priority"

    def __init__(
        self, config: "SchedulerConfig", mix: "TenantMixSpec"
    ) -> None:
        super().__init__(config, mix)
        self._rank = [
            TENANT_CLASSES.index(t.tenant_class) for t in mix.tenants
        ]


@register_arbiter
class BatchFairArbiter(TenantArbiter):
    """Least-attained-service batching with slowdown estimation.

    Column issues accumulate per-tenant attained service; every
    :data:`BATCH_WINDOW_ISSUES` issues the counters are halved, forming
    a sliding batch window. Ranks follow ascending attained service
    (ties broken by tenant id), so the tenant with the highest estimated
    slowdown — the one furthest below its fair service share — wins
    ready-time ties (cf. PAR-BS-style batch schedulers).
    """

    name = "batch-fair"

    def __init__(
        self, config: "SchedulerConfig", mix: "TenantMixSpec"
    ) -> None:
        super().__init__(config, mix)
        self._attained = [0.0] * len(mix.tenants)
        self._window_issues = 0

    def on_issue(self, kind, bank_idx, request) -> None:
        if kind != "col" or request is None:
            return
        attained = self._attained
        attained[request.tenant_id] += 1.0
        self._window_issues += 1
        if self._window_issues >= BATCH_WINDOW_ISSUES:
            self._window_issues = 0
            for i in range(len(attained)):
                attained[i] *= 0.5
        order = sorted(
            range(len(attained)), key=lambda t: (attained[t], t)
        )
        rank = self._rank
        for r, tid in enumerate(order):
            rank[tid] = r

    def estimated_slowdowns(self) -> list[float]:
        """Per-tenant slowdown estimate from attained-service shares.

        A tenant at exactly its fair share estimates 1.0; one starved
        to half its share estimates 2.0. Tenants with no service yet
        estimate ``inf`` (maximally slowed).
        """
        total = sum(self._attained)
        n = len(self._attained)
        if total <= 0.0:
            return [1.0] * n
        fair = total / n
        return [
            (fair / a) if a > 0.0 else float("inf")
            for a in self._attained
        ]
