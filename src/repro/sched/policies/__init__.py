"""Composable scheduler-policy registries.

Importing this package registers the built-in policies:

* candidate selectors — ``frfcfs`` (paper baseline), ``fcfs``,
  ``frfcfs-cap``;
* activation gates — ``dms`` (paper Section IV-B), ``none``;
* drop policies — ``ams`` (paper Section IV-C), ``none``;
* multi-tenant arbiters — ``shared-frfcfs``, ``tenant-priority``,
  ``batch-fair``.

See :mod:`repro.sched.policies.base` for the plugin contracts and
registration functions.
"""

from repro.sched.policies.arbiters import (
    BatchFairArbiter,
    SharedFRFCFSArbiter,
    TenantArbiter,
    TenantPriorityArbiter,
)
from repro.sched.policies.base import (
    COL_PRIORITY,
    SWITCH_PRIORITY,
    ActivationGate,
    Candidate,
    CandidateSelector,
    DropPolicy,
    arbiter_names,
    drop_policy_names,
    gate_names,
    make_arbiter,
    make_drop_policy,
    make_gate,
    make_selector,
    register_arbiter,
    register_drop_policy,
    register_gate,
    register_selector,
    selector_names,
)
from repro.sched.policies.drops import NullDropPolicy
from repro.sched.policies.gates import NullGate
from repro.sched.policies.selectors import (
    FCFSSelector,
    FRFCFSCapSelector,
    FRFCFSSelector,
)

__all__ = [
    "ActivationGate",
    "BatchFairArbiter",
    "COL_PRIORITY",
    "Candidate",
    "CandidateSelector",
    "DropPolicy",
    "FCFSSelector",
    "FRFCFSCapSelector",
    "FRFCFSSelector",
    "NullDropPolicy",
    "NullGate",
    "SWITCH_PRIORITY",
    "SharedFRFCFSArbiter",
    "TenantArbiter",
    "TenantPriorityArbiter",
    "arbiter_names",
    "drop_policy_names",
    "gate_names",
    "make_arbiter",
    "make_drop_policy",
    "make_gate",
    "make_selector",
    "register_arbiter",
    "register_drop_policy",
    "register_gate",
    "register_selector",
    "selector_names",
]
