"""Value-prediction unit for AMS-dropped requests."""

from repro.vp.predictor import (
    DropRecord,
    LastValuePredictor,
    NearestLinePredictor,
    OraclePredictor,
    ValuePredictor,
    ZeroPredictor,
    make_predictor,
)

__all__ = [
    "DropRecord",
    "LastValuePredictor",
    "NearestLinePredictor",
    "OraclePredictor",
    "ValuePredictor",
    "ZeroPredictor",
    "make_predictor",
]
