"""Value-prediction unit (paper Section IV-D).

The VP unit approximates the data of requests dropped by AMS. During
simulation it only needs to decide *which donor line* supplies the value
(data contents live in the workload's arrays, not the simulator); the
approximation-replay pipeline (:mod:`repro.approx.replay`) later
substitutes the donor line's values into the kernel and measures the
application error end to end.

``predict`` therefore returns the donor *line address* (or ``None`` when
no donor is available, in which case replay falls back to zeros — the
worst case).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.cache.l2cache import L2Cache
from repro.config.scheduler import VPConfig
from repro.dram.request import MemoryRequest
from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class DropRecord:
    """One dropped-and-approximated request, for replay and accounting."""

    rid: int
    addr: int
    tag: object
    donor_line_addr: Optional[int]
    time: float
    channel: int


class ValuePredictor(abc.ABC):
    """Strategy deciding the donor line for a dropped request."""

    #: Name used in :class:`~repro.config.scheduler.VPConfig`.
    kind: str = ""

    @abc.abstractmethod
    def predict(self, request: MemoryRequest) -> Optional[int]:
        """Donor line address for ``request``, or None if unavailable."""

    def on_fill(self, line_addr: int) -> None:
        """Observe a line returning from DRAM (hook for history-based
        predictors; default no-op)."""


class NearestLinePredictor(ValuePredictor):
    """The paper's VP: nearest-address resident line in nearby L2 sets.

    "In order to predict the values for the dropped requests, we search in
    the nearby cache sets of the L2 cache and use the values from cache
    lines with nearest addresses as their approximate values."
    """

    kind = "nearest_line"

    def __init__(self, l2: L2Cache, search_radius_sets: int) -> None:
        self._l2 = l2
        self._radius = search_radius_sets

    def predict(self, request: MemoryRequest) -> Optional[int]:
        return self._l2.find_nearest_resident(request.addr, self._radius)


class LastValuePredictor(ValuePredictor):
    """Ablation: reuse the most recent line filled from DRAM."""

    kind = "last_value"

    def __init__(self) -> None:
        self._last_line: Optional[int] = None

    def predict(self, request: MemoryRequest) -> Optional[int]:
        return self._last_line

    def on_fill(self, line_addr: int) -> None:
        self._last_line = line_addr


class ZeroPredictor(ValuePredictor):
    """Ablation: always predict zero (no donor line)."""

    kind = "zero"

    def predict(self, request: MemoryRequest) -> Optional[int]:
        return None


class OraclePredictor(ValuePredictor):
    """Ablation: return the request's own line — exact values.

    Isolates the scheduling benefit of AMS from the approximation error.
    """

    kind = "oracle"

    def __init__(self, line_bytes: int) -> None:
        self._line_bytes = line_bytes

    def predict(self, request: MemoryRequest) -> Optional[int]:
        return request.addr // self._line_bytes


def make_predictor(config: VPConfig, l2: L2Cache) -> ValuePredictor:
    """Build the predictor selected by ``config`` for one L2 slice."""
    if config.kind == "nearest_line":
        return NearestLinePredictor(l2, config.search_radius_sets)
    if config.kind == "last_value":
        return LastValuePredictor()
    if config.kind == "zero":
        return ZeroPredictor()
    if config.kind == "oracle":
        return OraclePredictor(l2.line_bytes)
    raise ConfigError(f"unknown value predictor kind: {config.kind!r}")
