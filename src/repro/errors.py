"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class TimingViolationError(ReproError):
    """A DRAM command was issued in violation of a timing constraint.

    Raised by :class:`repro.dram.timing.TimingChecker` when validation is
    enabled; the fast simulation path never issues illegal commands, so this
    error indicates a simulator bug.
    """


class SchedulingError(ReproError):
    """An internal invariant of a memory scheduler was violated."""


class WorkloadError(ReproError):
    """A workload definition or trace generator is invalid."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state (e.g. deadlock)."""


class HarnessError(ReproError):
    """Base class for experiment-harness (runner/pool/cache) failures."""


class CellTimeoutError(HarnessError):
    """A matrix cell exceeded its per-cell wall-clock timeout.

    Raised (and recorded in :class:`repro.harness.faults.CellFailure`
    manifests) by the supervised pool; the hung worker process is killed
    and the pool rebuilt before the cell is retried or quarantined.
    """


class ServiceError(ReproError):
    """Base class for simulation-service (daemon/client/queue) failures."""


class JobStateError(ServiceError):
    """An illegal job-lifecycle transition was attempted.

    The service state machine only permits
    ``queued -> running -> done|failed`` plus cancellation of
    not-yet-terminal jobs (and direct ``queued -> done`` for cache hits
    and coalesced followers); anything else is a daemon bug, not a user
    error.
    """


class CircuitOpenError(ServiceError):
    """The daemon's circuit breaker has quarantined this spec (HTTP 422).

    Raised client-side when a submission's content key has failed
    terminally enough times in a row that the service refuses to burn
    another worker on it. ``retry_after`` carries the remaining breaker
    cooldown in seconds; ``last_error`` the structured record of the
    failure that tripped the circuit (when the server shared one).
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 60.0,
        last_error=None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.last_error = last_error


class ServiceBusyError(ServiceError):
    """The daemon's job queue is full (HTTP 429 on the wire).

    ``retry_after`` carries the server's backoff hint in seconds.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class WorkerCrashError(HarnessError):
    """A pool worker process died while simulating a matrix cell.

    Covers hard crashes (``os._exit``, segfault, OOM-kill) that surface
    as ``BrokenProcessPool``: every in-flight cell is charged one attempt
    — the executor cannot say which task killed the worker — and the
    pool is rebuilt.
    """


class CellFailedError(HarnessError):
    """One or more matrix cells failed after exhausting their retries.

    ``failures`` carries the structured
    :class:`repro.harness.faults.CellFailure` records (exception type,
    traceback, attempt count, elapsed time) for every quarantined cell.
    Raised by :meth:`repro.harness.runner.Runner.run_matrix` when
    ``keep_going`` is off, and by
    :class:`~repro.harness.runner.MatrixResult` when a caller touches a
    cell that was quarantined under ``keep_going``.
    """

    def __init__(self, message: str, failures=()) -> None:
        super().__init__(message)
        self.failures = list(failures)
