"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class TimingViolationError(ReproError):
    """A DRAM command was issued in violation of a timing constraint.

    Raised by :class:`repro.dram.timing.TimingChecker` when validation is
    enabled; the fast simulation path never issues illegal commands, so this
    error indicates a simulator bug.
    """


class SchedulingError(ReproError):
    """An internal invariant of a memory scheduler was violated."""


class WorkloadError(ReproError):
    """A workload definition or trace generator is invalid."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state (e.g. deadlock)."""
