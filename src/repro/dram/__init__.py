"""DRAM substrate: requests, banks, channels, timing, energy, statistics."""

from repro.dram.bank import NO_ROW, Bank
from repro.dram.channel import Channel
from repro.dram.commands import CommandRecord, DRAMCommand
from repro.dram.devices import (
    DeviceModel,
    device_names,
    get_device,
    register_device,
)
from repro.dram.energy import (
    EnergyBreakdown,
    compute_energy,
    project_memory_system_energy,
)
from repro.dram.request import MemoryRequest, reset_request_ids
from repro.dram.stats import (
    ActivationRecord,
    BusUtilizationTracker,
    ChannelStats,
    merge_rbl_histograms,
)
from repro.dram.timing import TimingChecker

__all__ = [
    "ActivationRecord",
    "Bank",
    "BusUtilizationTracker",
    "Channel",
    "ChannelStats",
    "CommandRecord",
    "DRAMCommand",
    "DeviceModel",
    "EnergyBreakdown",
    "MemoryRequest",
    "NO_ROW",
    "TimingChecker",
    "compute_energy",
    "device_names",
    "get_device",
    "merge_rbl_histograms",
    "project_memory_system_energy",
    "register_device",
    "reset_request_ids",
]
