"""Memory request objects flowing from the L2 caches to the DRAM."""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config.address import AddressMapping


class _RidState(threading.local):
    """Per-thread request-id stream.

    The counter is thread-local so the warm pool's ``--threads`` mode
    stays deterministic: each worker thread re-seeds *its own* stream at
    the top of every cell (see ``reset_request_ids``), so concurrent
    cells cannot interleave rids — a cell's report depends only on the
    cell, never on what another thread simulated at the same time.
    """

    def __init__(self) -> None:
        self.counter = itertools.count()


_rids = _RidState()


@dataclass(slots=True)
class MemoryRequest:
    """One 128-byte DRAM request (an L2 miss or a dirty write-back).

    Attributes
    ----------
    rid:
        Unique request id, used to correlate drops with workload elements.
    addr:
        Byte address of the access (line-aligned).
    is_write:
        True for write-backs, False for read fills.
    approximable:
        True when the request reads data the programmer annotated as
        error-tolerant (paper Listing 1). Writes are never approximable.
    arrival_time:
        Memory-cycle time the request arrived at the memory controller.
    enqueue_time:
        Memory-cycle time the request entered the FR-FCFS pending queue
        (equals arrival unless the queue was full). DMS ages are measured
        from this timestamp, matching the paper ("each request is assigned
        a time stamp when it enters the pending queue").
    channel/bank/bank_group/row/column:
        Decoded DRAM coordinates.
    tag:
        Opaque workload token mapping the request back to kernel data
        elements; used by the approximation-replay pipeline.
    tenant_id:
        Index of the owning tenant in the run's
        :class:`~repro.config.tenants.TenantMixSpec` roster; 0 for
        single-workload runs (the only tenant).
    """

    addr: int
    is_write: bool
    channel: int
    bank: int
    bank_group: int
    row: int
    column: int
    approximable: bool = False
    arrival_time: float = 0.0
    enqueue_time: float = 0.0
    tag: Any = None
    tenant_id: int = 0
    rid: int = field(default_factory=lambda: next(_rids.counter))

    @classmethod
    def from_address(
        cls,
        addr: int,
        *,
        is_write: bool,
        mapping: AddressMapping,
        approximable: bool = False,
        arrival_time: float = 0.0,
        tag: Any = None,
        tenant_id: int = 0,
    ) -> "MemoryRequest":
        """Build a request by decoding ``addr`` with ``mapping``."""
        d = mapping.decode(addr)
        return cls(
            addr=addr,
            is_write=is_write,
            channel=d.channel,
            bank=d.bank,
            bank_group=d.bank_group,
            row=d.row,
            column=d.column,
            approximable=approximable and not is_write,
            arrival_time=arrival_time,
            enqueue_time=arrival_time,
            tag=tag,
            tenant_id=tenant_id,
        )

    @property
    def bank_row(self) -> tuple[int, int]:
        """The (bank, row) key used for row-hit matching within a channel."""
        return (self.bank, self.row)

    def age(self, now: float) -> float:
        """Cycles this request has spent in the pending queue."""
        return now - self.enqueue_time


def reset_request_ids() -> None:
    """Restart the calling thread's request id counter.

    Called at the top of every simulated cell (and by tests needing
    isolation) so rids — and therefore the full report — depend only on
    the cell itself, in any process *or thread*.
    """
    _rids.counter = itertools.count()
