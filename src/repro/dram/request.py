"""Memory request objects flowing from the L2 caches to the DRAM."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config.address import AddressMapping

_rid_counter = itertools.count()


@dataclass(slots=True)
class MemoryRequest:
    """One 128-byte DRAM request (an L2 miss or a dirty write-back).

    Attributes
    ----------
    rid:
        Unique request id, used to correlate drops with workload elements.
    addr:
        Byte address of the access (line-aligned).
    is_write:
        True for write-backs, False for read fills.
    approximable:
        True when the request reads data the programmer annotated as
        error-tolerant (paper Listing 1). Writes are never approximable.
    arrival_time:
        Memory-cycle time the request arrived at the memory controller.
    enqueue_time:
        Memory-cycle time the request entered the FR-FCFS pending queue
        (equals arrival unless the queue was full). DMS ages are measured
        from this timestamp, matching the paper ("each request is assigned
        a time stamp when it enters the pending queue").
    channel/bank/bank_group/row/column:
        Decoded DRAM coordinates.
    tag:
        Opaque workload token mapping the request back to kernel data
        elements; used by the approximation-replay pipeline.
    """

    addr: int
    is_write: bool
    channel: int
    bank: int
    bank_group: int
    row: int
    column: int
    approximable: bool = False
    arrival_time: float = 0.0
    enqueue_time: float = 0.0
    tag: Any = None
    rid: int = field(default_factory=lambda: next(_rid_counter))

    @classmethod
    def from_address(
        cls,
        addr: int,
        *,
        is_write: bool,
        mapping: AddressMapping,
        approximable: bool = False,
        arrival_time: float = 0.0,
        tag: Any = None,
    ) -> "MemoryRequest":
        """Build a request by decoding ``addr`` with ``mapping``."""
        d = mapping.decode(addr)
        return cls(
            addr=addr,
            is_write=is_write,
            channel=d.channel,
            bank=d.bank,
            bank_group=d.bank_group,
            row=d.row,
            column=d.column,
            approximable=approximable and not is_write,
            arrival_time=arrival_time,
            enqueue_time=arrival_time,
            tag=tag,
        )

    @property
    def bank_row(self) -> tuple[int, int]:
        """The (bank, row) key used for row-hit matching within a channel."""
        return (self.bank, self.row)

    def age(self, now: float) -> float:
        """Cycles this request has spent in the pending queue."""
        return now - self.enqueue_time


def reset_request_ids() -> None:
    """Restart the global request id counter (test isolation helper)."""
    global _rid_counter
    _rid_counter = itertools.count()
