"""DRAM command records.

Every command the channel model issues can be logged as a
:class:`CommandRecord`; the :class:`repro.dram.timing.TimingChecker`
re-validates logged streams against the full constraint set, giving the
fast event-driven model an independent correctness oracle in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DRAMCommand(enum.Enum):
    """The four commands of the open-row protocol used by the paper."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    REFRESH = "REF"


@dataclass(frozen=True, slots=True)
class CommandRecord:
    """One issued DRAM command with its issue time (memory cycles)."""

    time: float
    command: DRAMCommand
    bank: int
    bank_group: int
    row: int
    column: int = -1

    def __str__(self) -> str:
        loc = f"b{self.bank}/r{self.row}"
        if self.command in (DRAMCommand.READ, DRAMCommand.WRITE):
            loc += f"/c{self.column}"
        return f"@{self.time:.0f} {self.command.value} {loc}"
