"""DRAM-side statistics: activations, RBL accounting, bus utilisation.

Row Buffer Locality (RBL) terminology follows paper Section II-D:

* ``RBL(X)`` — an activation during which exactly X requests were served
  back-to-back from the open row before it was closed.
* ``Avg-RBL`` — total requests served by DRAM / total activations.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(slots=True)
class ActivationRecord:
    """One completed activation: how well its row buffer was reused."""

    bank: int
    row: int
    open_time: float
    rbl: int
    reads: int
    writes: int

    @property
    def reads_only(self) -> bool:
        """True when the row was opened to serve only read requests."""
        return self.writes == 0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (lossless)."""
        return {
            "bank": self.bank,
            "row": self.row,
            "open_time": self.open_time,
            "rbl": self.rbl,
            "reads": self.reads,
            "writes": self.writes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ActivationRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


class BusUtilizationTracker:
    """Tracks data-bus busy intervals and answers windowed queries.

    The channel's data bus serialises bursts, so intervals arrive sorted
    and non-overlapping. Two kinds of query coexist:

    * :meth:`busy_since_last_query` — the Dyn-DMS profiler's cursor
      query, advancing monotonically in time. The cursor is the
      profiler's *private* state: it moves only here.
    * :meth:`busy_in` — a pure windowed query for telemetry readers.
      It never touches the cursor, so sampling the bus concurrently
      with the profiler cannot reset the profiling window's counter.

    Intervals are retained for the life of the run (they also back the
    telemetry exporters); the cursor is an index, not a drain.
    """

    def __init__(self) -> None:
        self._intervals: list[tuple[float, float]] = []
        self._cursor: float = 0.0
        self._cursor_idx: int = 0
        self.total_busy: float = 0.0

    def add(self, start: float, end: float) -> None:
        """Record a data burst occupying the bus on ``[start, end)``."""
        if end <= start:
            return
        self.total_busy += end - start
        self._intervals.append((start, end))

    @property
    def last_end(self) -> float:
        """End time of the latest recorded burst (0.0 when none)."""
        return self._intervals[-1][1] if self._intervals else 0.0

    def busy_since_last_query(self, now: float) -> float:
        """Busy cycles in ``[previous query time, now)``; advances the cursor."""
        busy = 0.0
        intervals = self._intervals
        i = self._cursor_idx
        n = len(intervals)
        while i < n:
            start, end = intervals[i]
            if start >= now:
                break
            if end <= now:
                busy += end - max(start, self._cursor)
                i += 1
            else:
                busy += now - max(start, self._cursor)
                break
        self._cursor_idx = i
        self._cursor = now
        return busy

    def busy_in(self, start: float, end: float) -> float:
        """Busy cycles overlapping ``[start, end)`` — non-destructive.

        Safe to call in any order and concurrently with the profiler's
        cursor query; neither observes the other.
        """
        if end <= start:
            return 0.0
        intervals = self._intervals
        # First interval that could overlap: the last one starting at or
        # before ``start`` (it may extend past it), else the next one.
        i = bisect_right(intervals, (start, float("inf"))) - 1
        if i < 0 or intervals[i][1] <= start:
            i += 1
        busy = 0.0
        n = len(intervals)
        while i < n:
            iv_start, iv_end = intervals[i]
            if iv_start >= end:
                break
            busy += min(iv_end, end) - max(iv_start, start)
            i += 1
        return busy

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BusUtilizationTracker):
            return NotImplemented
        return (
            self.total_busy == other.total_busy
            and self._cursor == other._cursor
            and self._cursor_idx == other._cursor_idx
            and self._intervals == other._intervals
        )

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (lossless)."""
        return {
            "total_busy": self.total_busy,
            "cursor": self._cursor,
            "cursor_idx": self._cursor_idx,
            "intervals": [list(iv) for iv in self._intervals],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BusUtilizationTracker":
        """Inverse of :meth:`to_dict`."""
        tracker = cls()
        tracker.total_busy = data["total_busy"]
        tracker._cursor = data["cursor"]
        tracker._cursor_idx = data["cursor_idx"]
        tracker._intervals = [
            (start, end) for start, end in data["intervals"]
        ]
        return tracker


@dataclass
class ChannelStats:
    """Statistics for one memory channel."""

    reads_served: int = 0
    writes_served: int = 0
    activations: int = 0
    precharges: int = 0
    refreshes: int = 0
    requests_dropped: int = 0
    reads_arrived: int = 0
    writes_arrived: int = 0
    rbl_histogram: Counter = field(default_factory=Counter)
    activation_log: list[ActivationRecord] = field(default_factory=list)
    record_activations: bool = True
    bus: BusUtilizationTracker = field(default_factory=BusUtilizationTracker)
    _open: dict[int, ActivationRecord] = field(default_factory=dict)

    def on_activate(self, bank: int, row: int, t: float) -> None:
        """Record an ACT; closes accounting for the bank's previous row."""
        self._close(bank)
        self.activations += 1
        self._open[bank] = ActivationRecord(
            bank=bank, row=row, open_time=t, rbl=0, reads=0, writes=0
        )

    def on_precharge(self, bank: int) -> None:
        """Record a PRE that closes the bank without a follow-up ACT yet."""
        self.precharges += 1
        self._close(bank)

    def on_column(self, bank: int, is_write: bool) -> None:
        """Record a column access served from the open row of ``bank``."""
        rec = self._open.get(bank)
        if rec is not None:
            rec.rbl += 1
            if is_write:
                rec.writes += 1
            else:
                rec.reads += 1
        if is_write:
            self.writes_served += 1
        else:
            self.reads_served += 1

    def finalize(self) -> None:
        """Flush accounting for rows still open at the end of simulation."""
        for bank in list(self._open):
            self._close(bank)

    def _close(self, bank: int) -> None:
        rec = self._open.pop(bank, None)
        if rec is None:
            return
        self.rbl_histogram[rec.rbl] += 1
        if self.record_activations:
            self.activation_log.append(rec)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def requests_served(self) -> int:
        """Column accesses actually served by the DRAM banks."""
        return self.reads_served + self.writes_served

    @property
    def avg_rbl(self) -> float:
        """Average row buffer locality (requests / activations)."""
        if not self.activations:
            return 0.0
        return self.requests_served / self.activations

    # ------------------------------------------------------------------
    # Serialization (persistent result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-serializable snapshot of the channel statistics.

        RBL histogram keys become strings (JSON object keys);
        :meth:`from_dict` restores them to ints.
        """
        return {
            "reads_served": self.reads_served,
            "writes_served": self.writes_served,
            "activations": self.activations,
            "precharges": self.precharges,
            "refreshes": self.refreshes,
            "requests_dropped": self.requests_dropped,
            "reads_arrived": self.reads_arrived,
            "writes_arrived": self.writes_arrived,
            "rbl_histogram": {
                str(k): v for k, v in sorted(self.rbl_histogram.items())
            },
            "activation_log": [r.to_dict() for r in self.activation_log],
            "record_activations": self.record_activations,
            "bus": self.bus.to_dict(),
            "open": {str(b): r.to_dict() for b, r in self._open.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChannelStats":
        """Inverse of :meth:`to_dict`."""
        stats = cls(
            reads_served=data["reads_served"],
            writes_served=data["writes_served"],
            activations=data["activations"],
            precharges=data["precharges"],
            refreshes=data["refreshes"],
            requests_dropped=data["requests_dropped"],
            reads_arrived=data["reads_arrived"],
            writes_arrived=data["writes_arrived"],
            rbl_histogram=Counter(
                {int(k): v for k, v in data["rbl_histogram"].items()}
            ),
            activation_log=[
                ActivationRecord.from_dict(r) for r in data["activation_log"]
            ],
            record_activations=data["record_activations"],
            bus=BusUtilizationTracker.from_dict(data["bus"]),
        )
        stats._open = {
            int(b): ActivationRecord.from_dict(r)
            for b, r in data["open"].items()
        }
        return stats


def merge_rbl_histograms(stats: Iterable[ChannelStats]) -> Counter:
    """Combine per-channel RBL histograms into one."""
    total: Counter = Counter()
    for s in stats:
        total.update(s.rbl_histogram)
    return total
