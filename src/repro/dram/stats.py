"""DRAM-side statistics: activations, RBL accounting, bus utilisation.

Row Buffer Locality (RBL) terminology follows paper Section II-D:

* ``RBL(X)`` — an activation during which exactly X requests were served
  back-to-back from the open row before it was closed.
* ``Avg-RBL`` — total requests served by DRAM / total activations.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, Optional


@dataclass(slots=True)
class ActivationRecord:
    """One completed activation: how well its row buffer was reused."""

    bank: int
    row: int
    open_time: float
    rbl: int
    reads: int
    writes: int

    @property
    def reads_only(self) -> bool:
        """True when the row was opened to serve only read requests."""
        return self.writes == 0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (lossless)."""
        return {
            "bank": self.bank,
            "row": self.row,
            "open_time": self.open_time,
            "rbl": self.rbl,
            "reads": self.reads,
            "writes": self.writes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ActivationRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


class BusUtilizationTracker:
    """Tracks data-bus busy intervals and answers windowed queries.

    The channel's data bus serialises bursts, so intervals arrive sorted
    and non-overlapping; queries (used by the Dyn-DMS profiler) advance
    monotonically in time.
    """

    def __init__(self) -> None:
        self._pending: Deque[tuple[float, float]] = deque()
        self._cursor: float = 0.0
        self.total_busy: float = 0.0

    def add(self, start: float, end: float) -> None:
        """Record a data burst occupying the bus on ``[start, end)``."""
        if end <= start:
            return
        self.total_busy += end - start
        self._pending.append((start, end))

    def busy_since_last_query(self, now: float) -> float:
        """Busy cycles in ``[previous query time, now)``; advances the cursor."""
        busy = 0.0
        while self._pending:
            start, end = self._pending[0]
            if start >= now:
                break
            if end <= now:
                busy += end - max(start, self._cursor)
                self._pending.popleft()
            else:
                busy += now - max(start, self._cursor)
                break
        self._cursor = now
        return busy

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BusUtilizationTracker):
            return NotImplemented
        return (
            self.total_busy == other.total_busy
            and self._cursor == other._cursor
            and self._pending == other._pending
        )

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (lossless)."""
        return {
            "total_busy": self.total_busy,
            "cursor": self._cursor,
            "pending": [list(iv) for iv in self._pending],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BusUtilizationTracker":
        """Inverse of :meth:`to_dict`."""
        tracker = cls()
        tracker.total_busy = data["total_busy"]
        tracker._cursor = data["cursor"]
        tracker._pending = deque(
            (start, end) for start, end in data["pending"]
        )
        return tracker


@dataclass
class ChannelStats:
    """Statistics for one memory channel."""

    reads_served: int = 0
    writes_served: int = 0
    activations: int = 0
    precharges: int = 0
    refreshes: int = 0
    requests_dropped: int = 0
    reads_arrived: int = 0
    writes_arrived: int = 0
    rbl_histogram: Counter = field(default_factory=Counter)
    activation_log: list[ActivationRecord] = field(default_factory=list)
    record_activations: bool = True
    bus: BusUtilizationTracker = field(default_factory=BusUtilizationTracker)
    _open: dict[int, ActivationRecord] = field(default_factory=dict)

    def on_activate(self, bank: int, row: int, t: float) -> None:
        """Record an ACT; closes accounting for the bank's previous row."""
        self._close(bank)
        self.activations += 1
        self._open[bank] = ActivationRecord(
            bank=bank, row=row, open_time=t, rbl=0, reads=0, writes=0
        )

    def on_precharge(self, bank: int) -> None:
        """Record a PRE that closes the bank without a follow-up ACT yet."""
        self.precharges += 1
        self._close(bank)

    def on_column(self, bank: int, is_write: bool) -> None:
        """Record a column access served from the open row of ``bank``."""
        rec = self._open.get(bank)
        if rec is not None:
            rec.rbl += 1
            if is_write:
                rec.writes += 1
            else:
                rec.reads += 1
        if is_write:
            self.writes_served += 1
        else:
            self.reads_served += 1

    def finalize(self) -> None:
        """Flush accounting for rows still open at the end of simulation."""
        for bank in list(self._open):
            self._close(bank)

    def _close(self, bank: int) -> None:
        rec = self._open.pop(bank, None)
        if rec is None:
            return
        self.rbl_histogram[rec.rbl] += 1
        if self.record_activations:
            self.activation_log.append(rec)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def requests_served(self) -> int:
        """Column accesses actually served by the DRAM banks."""
        return self.reads_served + self.writes_served

    @property
    def avg_rbl(self) -> float:
        """Average row buffer locality (requests / activations)."""
        if not self.activations:
            return 0.0
        return self.requests_served / self.activations

    # ------------------------------------------------------------------
    # Serialization (persistent result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-serializable snapshot of the channel statistics.

        RBL histogram keys become strings (JSON object keys);
        :meth:`from_dict` restores them to ints.
        """
        return {
            "reads_served": self.reads_served,
            "writes_served": self.writes_served,
            "activations": self.activations,
            "precharges": self.precharges,
            "refreshes": self.refreshes,
            "requests_dropped": self.requests_dropped,
            "reads_arrived": self.reads_arrived,
            "writes_arrived": self.writes_arrived,
            "rbl_histogram": {
                str(k): v for k, v in sorted(self.rbl_histogram.items())
            },
            "activation_log": [r.to_dict() for r in self.activation_log],
            "record_activations": self.record_activations,
            "bus": self.bus.to_dict(),
            "open": {str(b): r.to_dict() for b, r in self._open.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChannelStats":
        """Inverse of :meth:`to_dict`."""
        stats = cls(
            reads_served=data["reads_served"],
            writes_served=data["writes_served"],
            activations=data["activations"],
            precharges=data["precharges"],
            refreshes=data["refreshes"],
            requests_dropped=data["requests_dropped"],
            reads_arrived=data["reads_arrived"],
            writes_arrived=data["writes_arrived"],
            rbl_histogram=Counter(
                {int(k): v for k, v in data["rbl_histogram"].items()}
            ),
            activation_log=[
                ActivationRecord.from_dict(r) for r in data["activation_log"]
            ],
            record_activations=data["record_activations"],
            bus=BusUtilizationTracker.from_dict(data["bus"]),
        )
        stats._open = {
            int(b): ActivationRecord.from_dict(r)
            for b, r in data["open"].items()
        }
        return stats


def merge_rbl_histograms(stats: Iterable[ChannelStats]) -> Counter:
    """Combine per-channel RBL histograms into one."""
    total: Counter = Counter()
    for s in stats:
        total.update(s.rbl_histogram)
    return total
