"""DRAM timing tables and the independent command-stream validator.

:class:`TimingTable` precomputes the per-bank timing constants the
scheduler's hot path consumes — every parameter as a float, plus the
derived sums the ready-time queries would otherwise re-derive on each
candidate fold (CAS latencies, the activate-to-activate floor). The
:class:`~repro.config.timing.DRAMTimings` dataclass stays the single
source of truth; the table is a flattened, simulation-ready view built
once per channel.

The event-driven channel model computes ready times incrementally for
speed. :class:`TimingChecker` replays a logged command stream and
re-derives every constraint from scratch, raising
:class:`~repro.errors.TimingViolationError` on the first violation. Tests
run both against the same stimulus so a bug in either implementation
surfaces as a disagreement.

Checked constraints (mirroring :mod:`repro.dram.channel`):

* ACT only to a closed bank; RD/WR only to the open row.
* same-bank: tRC (ACT->ACT), tRAS (ACT->PRE), tRP (PRE->ACT),
  tRCD (ACT->column), tWR (write data end -> PRE),
  tCDLR (write data end -> RD), read-to-PRE >= tBURST (tRTP proxy).
* channel: tRRD (ACT->ACT any bank), tCCD (column->column, same bank
  group), non-overlapping data bursts, one command per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.config.timing import DRAMTimings
from repro.dram.commands import CommandRecord, DRAMCommand
from repro.errors import TimingViolationError


@dataclass(frozen=True, slots=True)
class TimingTable:
    """Precomputed float timing constants for the scheduler hot path.

    Integer :class:`~repro.config.timing.DRAMTimings` fields are exact
    small integers, so converting them to floats once here changes no
    arithmetic result — event times are floats anyway — while sparing
    the candidate fold an ``int``/``float`` coercion per comparison and
    a dataclass attribute walk per constraint.
    """

    tCL: float
    tCWL: float
    tCCD: float
    tRRD: float
    tRCD: float
    tRP: float
    tRAS: float
    tRC: float
    tBURST: float
    tWR: float
    tCDLR: float
    tREFI: float
    tRFC: float
    #: Read/write CAS latency pair indexed by ``is_write``.
    cas: tuple[float, float]

    @classmethod
    def from_timings(cls, tm: DRAMTimings) -> "TimingTable":
        """Flatten ``tm`` into the simulation-ready constant table."""
        return cls(
            tCL=float(tm.tCL),
            tCWL=float(tm.tCWL),
            tCCD=float(tm.tCCD),
            tRRD=float(tm.tRRD),
            tRCD=float(tm.tRCD),
            tRP=float(tm.tRP),
            tRAS=float(tm.tRAS),
            tRC=float(tm.tRC),
            tBURST=float(tm.tBURST),
            tWR=float(tm.tWR),
            tCDLR=float(tm.tCDLR),
            tREFI=float(tm.tREFI),
            tRFC=float(tm.tRFC),
            cas=(float(tm.tCL), float(tm.tCWL)),
        )


@dataclass
class _BankView:
    open_row: int = -1
    last_act: float = float("-inf")
    last_pre: float = float("-inf")
    last_col_rd: float = float("-inf")
    last_wr_data_end: float = float("-inf")
    last_rd_cmd: float = float("-inf")


class TimingChecker:
    """Replays a command stream and validates every timing constraint."""

    def __init__(self, timings: DRAMTimings) -> None:
        self.timings = timings
        self._banks: dict[int, _BankView] = {}
        self._last_act_any = float("-inf")
        self._last_col_by_group: dict[int, float] = {}
        self._bus_free = float("-inf")
        self._last_cmd_time = float("-inf")
        self._refresh_block_until = float("-inf")
        self.commands_checked = 0

    def _bank(self, index: int) -> _BankView:
        return self._banks.setdefault(index, _BankView())

    def check(self, record: CommandRecord) -> None:
        """Validate one command; raises on the first violation."""
        tm = self.timings
        t = record.time
        bank = self._bank(record.bank)

        if t < self._last_cmd_time + 1:
            self._fail(record, "command bus conflict (one command per cycle)")

        if record.command is DRAMCommand.REFRESH:
            for idx, view in self._banks.items():
                if view.open_row != -1:
                    self._fail(record, f"REF with bank {idx} open")
            self._refresh_block_until = t + self.timings.tRFC
            self._last_cmd_time = t
            self.commands_checked += 1
            return

        if record.command is DRAMCommand.ACTIVATE:
            if t < self._refresh_block_until:
                self._fail(record, "ACT during refresh (tRFC) window")
            if bank.open_row != -1:
                self._fail(record, "ACT to an open bank")
            if t < bank.last_act + tm.tRC:
                self._fail(record, f"tRC violated (last ACT {bank.last_act})")
            if t < bank.last_pre + tm.tRP:
                self._fail(record, f"tRP violated (last PRE {bank.last_pre})")
            if t < self._last_act_any + tm.tRRD:
                self._fail(
                    record, f"tRRD violated (last ACT any {self._last_act_any})"
                )
            bank.open_row = record.row
            bank.last_act = t
            self._last_act_any = t

        elif record.command is DRAMCommand.PRECHARGE:
            if bank.open_row == -1:
                self._fail(record, "PRE to a closed bank")
            if t < bank.last_act + tm.tRAS:
                self._fail(record, f"tRAS violated (ACT at {bank.last_act})")
            if t < bank.last_wr_data_end + tm.tWR:
                self._fail(record, "tWR (write recovery) violated")
            if t < bank.last_rd_cmd + tm.tBURST:
                self._fail(record, "read-to-precharge (tRTP proxy) violated")
            bank.open_row = -1
            bank.last_pre = t

        else:  # READ or WRITE
            is_write = record.command is DRAMCommand.WRITE
            if bank.open_row == -1 or bank.open_row != record.row:
                self._fail(record, "column command to a mismatched/closed row")
            if t < bank.last_act + tm.tRCD:
                self._fail(record, f"tRCD violated (ACT at {bank.last_act})")
            group_last = self._last_col_by_group.get(
                record.bank_group, float("-inf")
            )
            if t < group_last + tm.tCCD:
                self._fail(record, "tCCD violated within bank group")
            if not is_write and t < bank.last_wr_data_end + tm.tCDLR:
                self._fail(record, "tCDLR (write-to-read) violated")
            cas = tm.tCWL if is_write else tm.tCL
            data_start = t + cas
            if data_start < self._bus_free:
                self._fail(record, "data bus burst overlap")
            self._bus_free = data_start + tm.tBURST
            self._last_col_by_group[record.bank_group] = t
            if is_write:
                bank.last_wr_data_end = data_start + tm.tBURST
            else:
                bank.last_rd_cmd = t

        self._last_cmd_time = t
        self.commands_checked += 1

    def check_stream(self, records: Iterable[CommandRecord]) -> int:
        """Validate an entire stream; returns the number of commands checked."""
        for record in records:
            self.check(record)
        return self.commands_checked

    def _fail(self, record: CommandRecord, reason: str) -> None:
        raise TimingViolationError(f"{record}: {reason}")
