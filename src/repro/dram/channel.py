"""One DRAM channel: banks, bank-group constraints, shared data bus.

The channel exposes two kinds of methods:

* ``*_ready_time`` — pure queries returning the earliest legal issue time
  for a prospective command, considering bank state, bank-group tCCD,
  channel tRRD, the one-command-per-cycle command bus, and data-bus
  occupancy.
* ``issue_*`` / ``switch_row`` — state mutators that issue the command at
  its ready time and update all constraint windows and statistics.

The memory controller (:mod:`repro.sched.controller`) uses the queries to
build its candidate list and the mutators to execute the chosen command.
"""

from __future__ import annotations

from typing import Optional

from repro.config.address import AddressMapping
from repro.config.timing import DRAMTimings
from repro.dram.bank import Bank
from repro.dram.commands import CommandRecord, DRAMCommand
from repro.dram.stats import ChannelStats
from repro.dram.timing import TimingTable


class Channel:
    """Command-level timing model of one GDDR5/HBM channel."""

    def __init__(
        self,
        channel_id: int,
        mapping: AddressMapping,
        timings: DRAMTimings,
        *,
        record_activations: bool = True,
        log_commands: bool = False,
        refresh_enabled: bool = False,
    ) -> None:
        self.channel_id = channel_id
        self.timings = timings
        #: Flattened float constants for the scheduler hot path.
        self.table = TimingTable.from_timings(timings)
        self.banks: list[Bank] = [
            Bank(index=i, bank_group=mapping.bank_group_of(i), timings=timings)
            for i in range(mapping.banks_per_channel)
        ]
        self.stats = ChannelStats(record_activations=record_activations)
        #: Earliest next column command per bank group (tCCD).
        self._group_earliest_col = [0.0] * mapping.bank_groups_per_channel
        #: Most recent ACT anywhere in the channel (tRRD).
        self._last_act_any = float("-inf")
        #: Earliest time the data bus is free for a new burst.
        self._bus_free = 0.0
        #: One command per cycle on the shared command bus.
        self._next_cmd_time = 0.0
        self.command_log: Optional[list[CommandRecord]] = (
            [] if log_commands else None
        )
        #: Optional ECC/fault-injection hook on served column commands
        #: (:class:`repro.dram.ecc.ReadPathECC`); None keeps the read
        #: path untouched — the hot loop pays one ``is None`` test.
        self.read_path = None
        #: All-bank refresh (disabled by default; the paper's evaluation
        #: does not study refresh interference, but the substrate models
        #: it for completeness).
        self.refresh_enabled = refresh_enabled
        self._next_refresh = float(timings.tREFI)

    # ------------------------------------------------------------------
    # Ready-time queries
    # ------------------------------------------------------------------
    def column_ready_time(self, bank: Bank, is_write: bool, now: float) -> float:
        """Earliest issue time for a RD/WR to the open row of ``bank``."""
        t = bank.earliest_column_time(now, is_write)
        t = max(t, self._group_earliest_col[bank.bank_group], self._next_cmd_time)
        data_start = t + self.table.cas[is_write]
        if data_start < self._bus_free:
            t += self._bus_free - data_start
        return t

    def switch_start_time(self, bank: Bank, now: float) -> float:
        """Earliest issue time of the *first* command of a row switch.

        For an open bank this is the PRE; for a closed bank the ACT.
        """
        if bank.is_open:
            return self.precharge_ready_time(bank, now)
        return self.activate_ready_time(bank, now)

    def precharge_ready_time(self, bank: Bank, now: float) -> float:
        """Earliest legal PRE issue time for an open bank."""
        return max(bank.earliest_precharge_time(now), self._next_cmd_time)

    def activate_ready_time(self, bank: Bank, now: float) -> float:
        """Earliest legal ACT issue time for a closed bank."""
        return max(
            bank.earliest_activate_time(now),
            self._last_act_any + self.table.tRRD,
            self._next_cmd_time,
        )

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------
    def attach_read_path(self, read_path) -> None:
        """Install an inject→decode hook on served column commands."""
        self.read_path = read_path

    def issue_column(
        self, bank: Bank, is_write: bool, now: float,
        *, rid: Optional[int] = None,
    ) -> tuple[float, float]:
        """Issue a RD/WR to the open row; returns ``(cmd_time, data_end)``.

        ``rid`` identifies the memory request being served; when a read
        path is attached it keys the deterministic fault draw for this
        access (reads) or the encode accounting (writes).
        """
        tb = self.table
        t = self.column_ready_time(bank, is_write, now)
        data_start = t + tb.cas[is_write]
        data_end = data_start + tb.tBURST
        self._group_earliest_col[bank.bank_group] = t + tb.tCCD
        self._bus_free = data_end
        self._next_cmd_time = t + 1
        bank.do_column(t, is_write, data_end)
        self.stats.on_column(bank.index, is_write)
        self.stats.bus.add(data_start, data_end)
        if self.read_path is not None:
            self.read_path.on_access(rid, is_write)
        if self.command_log is not None:
            cmd = DRAMCommand.WRITE if is_write else DRAMCommand.READ
            self.command_log.append(
                CommandRecord(
                    time=t,
                    command=cmd,
                    bank=bank.index,
                    bank_group=bank.bank_group,
                    row=bank.open_row,
                )
            )
        return t, data_end

    def issue_precharge(self, bank: Bank, now: float) -> float:
        """Issue a PRE closing the bank's open row; returns its time.

        The PRE occupies exactly one command-bus cycle, so other banks'
        commands interleave freely during the tRP window.
        """
        t_pre = self.precharge_ready_time(bank, now)
        self._record_pre(bank, t_pre)
        bank.do_precharge(t_pre)
        self.stats.on_precharge(bank.index)
        self._next_cmd_time = t_pre + 1
        return t_pre

    def issue_activate(self, bank: Bank, row: int, now: float) -> float:
        """Issue an ACT opening ``row`` in a closed bank; returns its time."""
        t_act = self.activate_ready_time(bank, now)
        bank.do_activate(row, t_act)
        self._last_act_any = t_act
        self._next_cmd_time = t_act + 1
        self.stats.on_activate(bank.index, row, t_act)
        if self.command_log is not None:
            self.command_log.append(
                CommandRecord(
                    time=t_act,
                    command=DRAMCommand.ACTIVATE,
                    bank=bank.index,
                    bank_group=bank.bank_group,
                    row=row,
                )
            )
        return t_act

    def switch_row(self, bank: Bank, row: int, now: float) -> float:
        """Precharge (if needed) and activate ``row``; returns the ACT time.

        Convenience for tests and open-loop drivers; the controller issues
        PRE and ACT as separate actions so banks can interleave commands.
        """
        t = now
        if bank.is_open:
            t = self.issue_precharge(bank, now)
        return self.issue_activate(bank, row, t)

    def _record_pre(self, bank: Bank, t: float) -> None:
        if self.command_log is not None:
            self.command_log.append(
                CommandRecord(
                    time=t,
                    command=DRAMCommand.PRECHARGE,
                    bank=bank.index,
                    bank_group=bank.bank_group,
                    row=bank.open_row,
                )
            )

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh_due(self, now: float) -> bool:
        """Whether an all-bank refresh must issue before other commands."""
        return self.refresh_enabled and now >= self._next_refresh

    def next_refresh_time(self) -> float:
        """Deadline of the next refresh (inf when disabled)."""
        return self._next_refresh if self.refresh_enabled else float("inf")

    def issue_refresh(self, now: float) -> float:
        """Precharge all open banks and refresh; returns the REF time.

        The channel is blocked for tRFC after the REF command; open rows
        are closed (their RBL accounting completes).
        """
        tm = self.timings
        t = max(now, self._next_cmd_time)
        for bank in self.banks:
            if bank.is_open:
                t = max(t, bank.earliest_precharge_time(t))
        # Close every open row (one PRE per bank, conservatively spaced
        # one command-bus cycle apart).
        for bank in self.banks:
            if bank.is_open:
                self._record_pre(bank, t)
                bank.do_precharge(t)
                self.stats.on_precharge(bank.index)
                t += 1
        t_ref = max(t, self._next_cmd_time)
        for bank in self.banks:
            bank.earliest_act = max(bank.earliest_act, t_ref + tm.tRFC)
        self._next_cmd_time = t_ref + 1
        self.stats.refreshes += 1
        self._next_refresh += tm.tREFI
        if self.command_log is not None:
            self.command_log.append(
                CommandRecord(
                    time=t_ref,
                    command=DRAMCommand.REFRESH,
                    bank=-1,
                    bank_group=-1,
                    row=-1,
                )
            )
        return t_ref

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Flush per-activation accounting at the end of simulation."""
        self.stats.finalize()
