"""ECC model registry and deterministic DRAM bit-flip fault injection.

The paper's premise is that GPGPU applications tolerate the *errors* a
reduced-latency, reduced-energy DRAM introduces; this module closes the
reliability loop the ROADMAP asks for. It provides:

* a string-keyed **ECC code registry** (``none`` / ``parity`` /
  ``secded`` / ``bch``) mirroring the device and policy registries —
  every code is a real implementation (single-parity, Hamming SEC-DED,
  and a binary BCH over GF(2^m) with Berlekamp–Massey decoding), not a
  lookup table, so the property tests in ``tests/test_ecc.py`` exercise
  genuine encode→corrupt→decode round trips;
* a **deterministic fault injector** that flips stored bits on DRAM
  reads with a probability derived from the timing scheme (lower
  tRCD/tRP ⇒ exponentially more flips — see
  :class:`~repro.config.faults.FaultConfig`), seeded from the SimSpec
  content key so identical specs produce identical flip sites across
  serial, process-parallel, and thread-parallel runs;
* the **read-path state machine** (:class:`ReadPathECC`) a channel
  carries when ECC or fault injection is active: writes pay encode
  energy, served reads pay inject→decode, and AMS-dropped reads are
  counted as *spared* — they never touch the faulty cell;
* analytic **FIT** (silent-corruption failures per 10^9 device-hours)
  and **carbon-per-GiB-year** estimators combining the code's
  storage overhead with the simulated energy.

Two decode views coexist deliberately. :meth:`ECCCode.decode` is the
bit-exact path (used by the property suite): given a corrupted codeword
it corrects/detects according to the code's real algebra.
:meth:`ECCCode.classify` is the statistical path the simulator uses —
the injector knows only *how many* bits flipped per word, and classify
maps that count to the guaranteed outcome, pessimistically treating
anything beyond the code's guarantee as silent corruption (a
bounded-distance decoder may detect some of those patterns, but may
also miscorrect; FIT uses the worst case).
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.config.faults import FaultConfig
from repro.errors import ConfigError

#: Energy of one bit-level XOR in the check/syndrome trees, in nJ
#: (~5 fJ per gate at the modelled node). Encode cost scales with
#: check_bits x data_bits, decode with check_bits x codeword_bits; for
#: SEC-DED over 64-bit words this lands near 3 % of the e_rd_nj column
#: energy — in line with published on-die-ECC overheads.
XOR_ENERGY_NJ = 5e-6

#: Word width the read path protects when no device override applies.
DEFAULT_ECC_WORD_BITS = 64

#: Embodied manufacturing carbon of DRAM, kg CO2e per GiB (typical LCA
#: figures for modern nodes land in 0.1-0.3 kg/GiB).
EMBODIED_KGCO2_PER_GIB = 0.125
#: Amortisation window for the embodied share, years.
DEVICE_LIFETIME_YEARS = 4.0
#: Grid carbon intensity, g CO2e per kWh (world-average-ish).
CARBON_INTENSITY_G_PER_KWH = 400.0
#: Memory-system capacity the operational power is attributed to, GiB.
ASSUMED_CAPACITY_GIB = 8.0


class ECCStatus(enum.Enum):
    """Outcome of checking one data word."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED = "detected"
    SILENT = "silent"


@dataclass(frozen=True, slots=True)
class DecodeResult:
    """Decoded data word plus the decoder's verdict."""

    data: int
    status: ECCStatus


class ECCCode:
    """One error-correcting code; subclasses implement the algebra.

    ``correct_t`` / ``detect_d`` state the code's guarantee: any
    pattern of up to ``correct_t`` flips decodes back to the original
    data, and any pattern of up to ``detect_d`` flips is at least
    flagged. Widths are per protected *data* word; stored words are
    ``codeword_bits`` wide.
    """

    name: str = ""
    description: str = ""
    #: Guaranteed corrected / detected flips per word.
    correct_t: int = 0
    detect_d: int = 0

    # -- widths --------------------------------------------------------
    def check_bits(self, data_bits: int) -> int:
        """Redundant bits stored per ``data_bits``-wide word."""
        raise NotImplementedError

    def codeword_bits(self, data_bits: int) -> int:
        """Total stored bits per word (data + check)."""
        return data_bits + self.check_bits(data_bits)

    def storage_overhead(self, data_bits: int) -> float:
        """Stored bits per data bit (>= 1.0)."""
        return self.codeword_bits(data_bits) / data_bits

    # -- bit-exact path ------------------------------------------------
    def encode(self, data: int, data_bits: int) -> int:
        """Data word -> stored codeword (both as unsigned ints)."""
        raise NotImplementedError

    def decode(self, codeword: int, data_bits: int) -> DecodeResult:
        """Stored codeword -> data word + verdict."""
        raise NotImplementedError

    # -- statistical path ----------------------------------------------
    def classify(self, flips: int) -> ECCStatus:
        """Guaranteed outcome of ``flips`` bit errors in one codeword.

        Pessimistic beyond the guarantee: any pattern the code does not
        promise to correct or detect counts as silent corruption.
        """
        if flips <= 0:
            return ECCStatus.CLEAN
        if flips <= self.correct_t:
            return ECCStatus.CORRECTED
        if flips <= self.detect_d:
            return ECCStatus.DETECTED
        return ECCStatus.SILENT

    # ------------------------------------------------------------------
    def _check_width(self, data_bits: int) -> None:
        if data_bits < 1:
            raise ConfigError(
                f"ECC data width must be >= 1 bit, got {data_bits}"
            )


class NoECC(ECCCode):
    """Pass-through: no redundancy, every flip is silent."""

    name = "none"
    description = "no protection; raw cell bits"
    correct_t = 0
    detect_d = 0

    def check_bits(self, data_bits: int) -> int:
        self._check_width(data_bits)
        return 0

    def encode(self, data: int, data_bits: int) -> int:
        self._check_width(data_bits)
        return data & ((1 << data_bits) - 1)

    def decode(self, codeword: int, data_bits: int) -> DecodeResult:
        self._check_width(data_bits)
        return DecodeResult(
            data=codeword & ((1 << data_bits) - 1), status=ECCStatus.CLEAN
        )


class ParityCode(ECCCode):
    """Single even-parity bit: detects every odd number of flips."""

    name = "parity"
    description = "single even parity bit per word (detects odd flips)"
    correct_t = 0
    detect_d = 1  # guaranteed: any single flip (and every odd count)

    def check_bits(self, data_bits: int) -> int:
        self._check_width(data_bits)
        return 1

    def encode(self, data: int, data_bits: int) -> int:
        self._check_width(data_bits)
        data &= (1 << data_bits) - 1
        parity = _parity(data)
        return data | (parity << data_bits)

    def decode(self, codeword: int, data_bits: int) -> DecodeResult:
        self._check_width(data_bits)
        data = codeword & ((1 << data_bits) - 1)
        status = (
            ECCStatus.DETECTED if _parity(codeword) else ECCStatus.CLEAN
        )
        return DecodeResult(data=data, status=status)

    def classify(self, flips: int) -> ECCStatus:
        if flips <= 0:
            return ECCStatus.CLEAN
        return ECCStatus.DETECTED if flips % 2 else ECCStatus.SILENT


class SECDEDCode(ECCCode):
    """Extended Hamming: corrects any 1 flip, detects any 2.

    Standard construction: Hamming check bits at power-of-two positions
    ``1..n`` of the codeword, data bits filling the rest, plus one
    overall parity bit at position 0 extending the distance to 4.
    """

    name = "secded"
    description = "Hamming SEC-DED (corrects 1 flip, detects 2)"
    correct_t = 1
    detect_d = 2

    @staticmethod
    def _hamming_r(data_bits: int) -> int:
        r = 0
        while (1 << r) < data_bits + r + 1:
            r += 1
        return r

    def check_bits(self, data_bits: int) -> int:
        self._check_width(data_bits)
        return self._hamming_r(data_bits) + 1  # + overall parity

    @staticmethod
    def _data_positions(data_bits: int, r: int) -> list[int]:
        n = data_bits + r
        return [p for p in range(1, n + 1) if p & (p - 1)]

    def encode(self, data: int, data_bits: int) -> int:
        self._check_width(data_bits)
        data &= (1 << data_bits) - 1
        r = self._hamming_r(data_bits)
        n = data_bits + r
        cw = 0
        for i, pos in enumerate(self._data_positions(data_bits, r)):
            if (data >> i) & 1:
                cw |= 1 << pos
        for j in range(r):
            check_pos = 1 << j
            parity = 0
            for pos in range(1, n + 1):
                if pos & check_pos and pos != check_pos:
                    parity ^= (cw >> pos) & 1
            if parity:
                cw |= 1 << check_pos
        if _parity(cw >> 1):
            cw |= 1  # overall parity at position 0
        return cw

    def decode(self, codeword: int, data_bits: int) -> DecodeResult:
        self._check_width(data_bits)
        r = self._hamming_r(data_bits)
        n = data_bits + r
        syndrome = 0
        for pos in range(1, n + 1):
            if (codeword >> pos) & 1:
                syndrome ^= pos
        overall = _parity(codeword & ((1 << (n + 1)) - 1))
        status = ECCStatus.CLEAN
        if syndrome == 0 and overall == 0:
            pass
        elif overall:
            # Odd flip count: single-bit error, correctable when the
            # syndrome names a real position (0 = the parity bit).
            if syndrome <= n:
                codeword ^= 1 << syndrome  # syndrome 0 flips bit 0
                status = ECCStatus.CORRECTED
            else:
                status = ECCStatus.DETECTED
        else:
            # Even flip count with a nonzero syndrome: double error.
            status = ECCStatus.DETECTED
        data = 0
        for i, pos in enumerate(self._data_positions(data_bits, r)):
            if (codeword >> pos) & 1:
                data |= 1 << i
        return DecodeResult(data=data, status=status)


# ----------------------------------------------------------------------
# Binary BCH over GF(2^m)
# ----------------------------------------------------------------------
_PRIMITIVE_POLY = {
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
}


class _GF:
    """GF(2^m) arithmetic via log/antilog tables."""

    __slots__ = ("m", "n", "exp", "log")

    def __init__(self, m: int) -> None:
        self.m = m
        self.n = (1 << m) - 1
        self.exp = [0] * (2 * self.n)
        self.log = [0] * (self.n + 1)
        x = 1
        for i in range(self.n):
            self.exp[i] = x
            self.log[x] = i
            x <<= 1
            if x & (1 << m):
                x ^= _PRIMITIVE_POLY[m]
        for i in range(self.n, 2 * self.n):
            self.exp[i] = self.exp[i - self.n]

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def inv(self, a: int) -> int:
        return self.exp[self.n - self.log[a]]

    def pow_alpha(self, e: int) -> int:
        return self.exp[e % self.n]


def _gf2_mod(value: int, divisor: int) -> int:
    """Polynomial remainder over GF(2) (carry-less division)."""
    dlen = divisor.bit_length()
    while value.bit_length() >= dlen:
        value ^= divisor << (value.bit_length() - dlen)
    return value


def _gf2_mul(a: int, b: int) -> int:
    """Carry-less polynomial product over GF(2)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


@dataclass(frozen=True, slots=True)
class _BCHTables:
    """Per-data-width derived state of a BCH code."""

    gf: _GF
    generator: int  # GF(2) polynomial, bit i = coefficient of x^i
    parity_bits: int  # deg(generator)


class BCHCode(ECCCode):
    """Shortened binary BCH(t): corrects any ``t`` flips per word.

    The field GF(2^m) is sized per data width (smallest m with
    ``2^m - 1 >= data_bits + m*t``); the generator polynomial is the
    product of the minimal polynomials of alpha^1..alpha^2t, giving a
    designed distance of ``2t + 1``. Decoding computes the 2t power-sum
    syndromes, runs Berlekamp–Massey for the error locator, and a Chien
    search over the shortened positions; decode failure (locator degree
    above t, or root count mismatching the degree) reports DETECTED.
    """

    def __init__(self, t: int = 2, name: str = "bch") -> None:
        if t < 1:
            raise ConfigError(f"BCH t must be >= 1, got {t}")
        self.t = t
        self.name = name
        self.description = (
            f"shortened binary BCH (corrects {t} flips per word)"
        )
        self.correct_t = t
        self.detect_d = t  # beyond t flips nothing is guaranteed
        self._tables: dict[int, _BCHTables] = {}

    # ------------------------------------------------------------------
    def _field_order(self, data_bits: int) -> int:
        for m in range(3, 11):
            if (1 << m) - 1 >= data_bits + m * self.t:
                return m
        raise ConfigError(
            f"BCH(t={self.t}) over {data_bits}-bit words needs a field "
            "larger than GF(2^10); use a narrower word"
        )

    def _build(self, data_bits: int) -> _BCHTables:
        tables = self._tables.get(data_bits)
        if tables is not None:
            return tables
        m = self._field_order(data_bits)
        gf = _GF(m)
        # Conjugacy classes of alpha^1 .. alpha^2t; one minimal
        # polynomial (a GF(2) polynomial) per class.
        seen: set[int] = set()
        generator = 1
        for power in range(1, 2 * self.t + 1):
            e = power % gf.n
            if e in seen:
                continue
            cls = []
            cur = e
            while cur not in cls:
                cls.append(cur)
                seen.add(cur)
                cur = (cur * 2) % gf.n
            # Minimal polynomial: product of (x + alpha^s) over the
            # class, computed in GF(2^m)[x]; coefficients land in GF(2).
            poly = [1]
            for s in cls:
                root = gf.pow_alpha(s)
                nxt = [0] * (len(poly) + 1)
                for i, c in enumerate(poly):
                    nxt[i] ^= gf.mul(c, root)
                    nxt[i + 1] ^= c
                poly = nxt
            minimal = 0
            for i, c in enumerate(poly):
                if c not in (0, 1):  # pragma: no cover - algebra guard
                    raise ConfigError(
                        "BCH minimal polynomial left GF(2); primitive "
                        f"polynomial table is wrong for m={m}"
                    )
                if c:
                    minimal |= 1 << i
            generator = _gf2_mul(generator, minimal)
        tables = _BCHTables(
            gf=gf, generator=generator,
            parity_bits=generator.bit_length() - 1,
        )
        self._tables[data_bits] = tables
        return tables

    # ------------------------------------------------------------------
    def check_bits(self, data_bits: int) -> int:
        self._check_width(data_bits)
        return self._build(data_bits).parity_bits

    def encode(self, data: int, data_bits: int) -> int:
        self._check_width(data_bits)
        tables = self._build(data_bits)
        data &= (1 << data_bits) - 1
        shifted = data << tables.parity_bits
        return shifted | _gf2_mod(shifted, tables.generator)

    def decode(self, codeword: int, data_bits: int) -> DecodeResult:
        self._check_width(data_bits)
        tables = self._build(data_bits)
        gf = tables.gf
        deg = tables.parity_bits
        nbits = data_bits + deg
        positions = [
            p for p in range(nbits) if (codeword >> p) & 1
        ]
        two_t = 2 * self.t
        syndromes = []
        for j in range(1, two_t + 1):
            s = 0
            for p in positions:
                s ^= gf.pow_alpha(j * p)
            syndromes.append(s)
        if not any(syndromes):
            return DecodeResult(
                data=codeword >> deg, status=ECCStatus.CLEAN
            )
        # Berlekamp–Massey: minimal LFSR generating the syndromes.
        locator = [1] + [0] * two_t
        prev = [1] + [0] * two_t
        length = 0
        shift = 1
        prev_disc = 1
        for step in range(two_t):
            disc = syndromes[step]
            for i in range(1, length + 1):
                disc ^= gf.mul(locator[i], syndromes[step - i])
            if disc == 0:
                shift += 1
                continue
            coef = gf.mul(disc, gf.inv(prev_disc))
            if 2 * length <= step:
                saved = locator.copy()
                for i in range(0, two_t + 1 - shift):
                    locator[i + shift] ^= gf.mul(coef, prev[i])
                length = step + 1 - length
                prev = saved
                prev_disc = disc
                shift = 1
            else:
                for i in range(0, two_t + 1 - shift):
                    locator[i + shift] ^= gf.mul(coef, prev[i])
                shift += 1
        if length > self.t:
            return DecodeResult(
                data=codeword >> deg, status=ECCStatus.DETECTED
            )
        # Chien search over the shortened positions: bit p is in error
        # iff alpha^{-p} is a root of the locator.
        errors = []
        sigma = locator[: length + 1]
        for p in range(nbits):
            inv_exp = (gf.n - p % gf.n) % gf.n
            value = 0
            for i, c in enumerate(sigma):
                if c:
                    value ^= gf.mul(c, gf.pow_alpha(inv_exp * i))
            if value == 0:
                errors.append(p)
        if len(errors) != length:
            return DecodeResult(
                data=codeword >> deg, status=ECCStatus.DETECTED
            )
        for p in errors:
            codeword ^= 1 << p
        return DecodeResult(
            data=codeword >> deg, status=ECCStatus.CORRECTED
        )


def _parity(value: int) -> int:
    """XOR of all bits of ``value``."""
    return bin(value).count("1") & 1


# ----------------------------------------------------------------------
# Registry (mirrors repro.dram.devices / repro.sched.policies)
# ----------------------------------------------------------------------
_CODES: dict[str, ECCCode] = {}


def register_ecc(code: ECCCode) -> ECCCode:
    """Register an ECC model under its name; returns it for chaining."""
    if not code.name:
        raise ConfigError("ECC code name must be non-empty")
    _CODES[code.name] = code
    return code


def get_ecc(name: str) -> ECCCode:
    """Look up a registered ECC model by name."""
    try:
        return _CODES[name]
    except KeyError:
        raise ConfigError(
            f"unknown ECC code {name!r}; "
            f"registered: {', '.join(sorted(_CODES))}"
        ) from None


def ecc_names() -> list[str]:
    """Sorted names of every registered ECC model."""
    return sorted(_CODES)


register_ecc(NoECC())
register_ecc(ParityCode())
register_ecc(SECDEDCode())
register_ecc(BCHCode(t=2))


# ----------------------------------------------------------------------
# Deterministic fault injection
# ----------------------------------------------------------------------
_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finaliser: cheap, platform-independent bit mixing."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


class FaultInjector:
    """Draws deterministic bit-flip sites for each served read.

    Each read of one cache line is one draw: the flip count comes from
    inverting the Binomial(stored_bits, p) CDF at a uniform variate
    derived — via SplitMix64 — from ``(seed, channel, rid)``, and flip
    positions come from the same counter-based stream. Request ids are
    reset per simulation cell (:func:`repro.dram.request
    .reset_request_ids`), so the flip sites depend only on the spec
    content, never on execution order, process fan-out, or threads.
    """

    __slots__ = ("p_bit", "stored_bits", "_base", "_p0")

    def __init__(
        self,
        config: FaultConfig,
        *,
        trcd: float,
        trp: float,
        seed: int,
        channel_id: int,
        stored_bits: int,
    ) -> None:
        self.p_bit = config.effective_p_bit(trcd, trp)
        self.stored_bits = stored_bits
        self._base = _mix64(seed ^ _mix64(0xC4A1 + channel_id))
        # P(0 flips) precomputed: the overwhelmingly common case costs
        # one mix and one compare per read.
        self._p0 = (
            (1.0 - self.p_bit) ** stored_bits if self.p_bit > 0.0 else 1.0
        )

    def flips_for(self, rid: int) -> tuple[int, ...]:
        """Flip sites (stored-bit indices) for read ``rid``."""
        if self.p_bit <= 0.0:
            return ()
        h = _mix64(self._base ^ _mix64(rid))
        u = h / 18446744073709551616.0  # / 2^64 -> [0, 1)
        if u < self._p0:
            return ()
        count = self._invert_binomial(u)
        if count <= 0:
            return ()
        positions: list[int] = []
        taken: set[int] = set()
        draw = 0
        while len(positions) < count:
            draw += 1
            pos = _mix64(h ^ draw) % self.stored_bits
            if pos in taken:
                continue
            taken.add(pos)
            positions.append(pos)
        return tuple(positions)

    def _invert_binomial(self, u: float) -> int:
        """Smallest k with CDF(k) >= u for Binomial(stored_bits, p)."""
        n = self.stored_bits
        p = self.p_bit
        ratio = p / (1.0 - p)
        pmf = self._p0
        cdf = pmf
        k = 0
        while cdf < u and k < n:
            k += 1
            pmf *= (n - k + 1) / k * ratio
            cdf += pmf
        return k


@dataclass
class ReadPathECC:
    """Per-channel inject→decode state carried by the DRAM channel.

    Attached by :meth:`repro.dram.channel.Channel.attach_read_path`;
    the channel calls :meth:`on_access` from inside ``issue_column`` —
    the single point every served column command passes through — and
    the controller reports AMS drops via :meth:`on_spared`, so a
    dropped request by construction never reads the (possibly faulty)
    cells.
    """

    code: ECCCode
    word_bits: int
    words_per_line: int
    injector: Optional[FaultInjector] = None
    #: Data words checked on served reads / encoded on writes.
    words_checked: int = 0
    words_encoded: int = 0
    reads_checked: int = 0
    #: Reads answered by the VP unit instead of touching the array.
    reads_spared: int = 0
    flips_injected: int = 0
    words_corrected: int = 0
    words_detected: int = 0
    words_silent: int = 0
    _digest: "hashlib._Hash" = field(
        default_factory=lambda: hashlib.sha256(), repr=False
    )

    def __post_init__(self) -> None:
        self._codeword_bits = self.code.codeword_bits(self.word_bits)

    # ------------------------------------------------------------------
    def on_access(self, rid: Optional[int], is_write: bool) -> None:
        """One served column command (called from the channel)."""
        if is_write:
            self.words_encoded += self.words_per_line
            return
        self.reads_checked += 1
        self.words_checked += self.words_per_line
        injector = self.injector
        if injector is None or rid is None:
            return
        flips = injector.flips_for(rid)
        if not flips:
            return
        self.flips_injected += len(flips)
        per_word: dict[int, int] = {}
        digest = self._digest
        for pos in flips:
            per_word[pos // self._codeword_bits] = (
                per_word.get(pos // self._codeword_bits, 0) + 1
            )
            digest.update(b"%d:%d;" % (rid, pos))
        classify = self.code.classify
        for count in per_word.values():
            status = classify(count)
            if status is ECCStatus.CORRECTED:
                self.words_corrected += 1
            elif status is ECCStatus.DETECTED:
                self.words_detected += 1
            elif status is ECCStatus.SILENT:
                self.words_silent += 1

    def on_spared(self, reads: int) -> None:
        """AMS dropped ``reads`` requests before they touched DRAM."""
        self.reads_spared += reads

    # ------------------------------------------------------------------
    def energy_nj(self) -> float:
        """Encode + check energy accumulated on this channel."""
        check = self.code.check_bits(self.word_bits)
        encode_nj = check * self.word_bits * XOR_ENERGY_NJ
        decode_nj = check * self._codeword_bits * XOR_ENERGY_NJ
        return (
            self.words_encoded * encode_nj
            + self.words_checked * decode_nj
        )

    def site_digest_hex(self) -> str:
        """Hex digest over every (rid, bit) flip site seen so far."""
        return self._digest.hexdigest()


# ----------------------------------------------------------------------
# FIT and carbon estimators
# ----------------------------------------------------------------------
def word_outcome_probabilities(
    code: ECCCode, word_bits: int, p_bit: float
) -> dict[ECCStatus, float]:
    """Per-read-word probability of each classify outcome.

    Analytic binomial over the stored codeword: smooth at realistic
    error rates where a finite simulation would quantise to zero
    events. Terms are summed until numerically negligible.
    """
    n = code.codeword_bits(word_bits)
    probs = {status: 0.0 for status in ECCStatus}
    if p_bit <= 0.0:
        probs[ECCStatus.CLEAN] = 1.0
        return probs
    q = 1.0 - p_bit
    total = 0.0
    for k in range(0, n + 1):
        term = math.comb(n, k) * (p_bit ** k) * (q ** (n - k))
        probs[code.classify(k)] += term
        total += term
        if k > 0 and term < 1e-30 and total > 0.999999:
            break
    return probs


def estimate_fit(
    code: ECCCode,
    word_bits: int,
    p_bit: float,
    words_read_per_hour: float,
) -> float:
    """Silent-data-corruption FIT: silent failures per 1e9 device-hours.

    The per-word silent probability (flip patterns beyond the code's
    guarantee, pessimistically uncorrectable-and-undetected) times the
    observed read-word rate, extrapolated to the FIT horizon.
    """
    if words_read_per_hour <= 0.0:
        return 0.0
    p_silent = word_outcome_probabilities(code, word_bits, p_bit)[
        ECCStatus.SILENT
    ]
    return p_silent * words_read_per_hour * 1e9


def estimate_carbon_per_gib_year(
    code: ECCCode,
    word_bits: int,
    *,
    total_energy_nj: float,
    elapsed_us: float,
    capacity_gib: float = ASSUMED_CAPACITY_GIB,
) -> float:
    """Grams of CO2e per GiB-year: embodied share + operational share.

    Embodied manufacturing carbon scales with the code's storage
    overhead (check bits are real cells), amortised over the device
    lifetime; the operational share converts the simulated average
    power into annual energy at grid intensity, attributed across the
    assumed memory-system capacity.
    """
    overhead = code.storage_overhead(word_bits)
    embodied_g = (
        EMBODIED_KGCO2_PER_GIB * 1000.0 * overhead / DEVICE_LIFETIME_YEARS
    )
    if elapsed_us <= 0.0:
        return embodied_g
    watts = total_energy_nj / (elapsed_us * 1000.0)
    kwh_per_year = watts * 8760.0 / 1000.0
    operational_g = (
        kwh_per_year / capacity_gib * CARBON_INTENSITY_G_PER_KWH
    )
    return embodied_g + operational_g


# ----------------------------------------------------------------------
# Report summary
# ----------------------------------------------------------------------
@dataclass
class ECCSummary:
    """Reliability counters and estimates attached to a SimReport."""

    code: str
    word_bits: int
    p_bit: float
    reads_checked: int = 0
    reads_spared: int = 0
    words_checked: int = 0
    words_encoded: int = 0
    flips_injected: int = 0
    words_corrected: int = 0
    words_detected: int = 0
    words_silent: int = 0
    #: SHA-256 over every (rid, bit) flip site, channel-concatenated —
    #: the determinism tests compare this across execution modes.
    site_digest: str = ""
    #: Analytic silent-corruption FIT at the simulated read rate.
    fit: float = 0.0
    #: Estimated g CO2e per GiB-year (embodied + operational).
    carbon_g_per_gib_year: float = 0.0

    def to_dict(self) -> dict:
        """Lossless JSON form."""
        return {
            "code": self.code,
            "word_bits": self.word_bits,
            "p_bit": self.p_bit,
            "reads_checked": self.reads_checked,
            "reads_spared": self.reads_spared,
            "words_checked": self.words_checked,
            "words_encoded": self.words_encoded,
            "flips_injected": self.flips_injected,
            "words_corrected": self.words_corrected,
            "words_detected": self.words_detected,
            "words_silent": self.words_silent,
            "site_digest": self.site_digest,
            "fit": self.fit,
            "carbon_g_per_gib_year": self.carbon_g_per_gib_year,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ECCSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


def summarize_read_paths(
    read_paths: list[ReadPathECC],
    *,
    total_energy_nj: float,
    elapsed_us: float,
) -> ECCSummary:
    """Aggregate per-channel read paths into one report summary."""
    first = read_paths[0]
    code = first.code
    p_bit = (
        first.injector.p_bit if first.injector is not None else 0.0
    )
    combined = hashlib.sha256()
    for rp in read_paths:
        combined.update(rp.site_digest_hex().encode("ascii"))
    summary = ECCSummary(
        code=code.name,
        word_bits=first.word_bits,
        p_bit=p_bit,
        reads_checked=sum(rp.reads_checked for rp in read_paths),
        reads_spared=sum(rp.reads_spared for rp in read_paths),
        words_checked=sum(rp.words_checked for rp in read_paths),
        words_encoded=sum(rp.words_encoded for rp in read_paths),
        flips_injected=sum(rp.flips_injected for rp in read_paths),
        words_corrected=sum(rp.words_corrected for rp in read_paths),
        words_detected=sum(rp.words_detected for rp in read_paths),
        words_silent=sum(rp.words_silent for rp in read_paths),
        site_digest=combined.hexdigest(),
    )
    elapsed_hours = elapsed_us / 3.6e9
    words_per_hour = (
        summary.words_checked / elapsed_hours if elapsed_hours > 0 else 0.0
    )
    summary.fit = estimate_fit(
        code, first.word_bits, p_bit, words_per_hour
    )
    summary.carbon_g_per_gib_year = estimate_carbon_per_gib_year(
        code,
        first.word_bits,
        total_energy_nj=total_energy_nj,
        elapsed_us=elapsed_us,
    )
    return summary


__all__ = [
    "ECCStatus",
    "DecodeResult",
    "ECCCode",
    "NoECC",
    "ParityCode",
    "SECDEDCode",
    "BCHCode",
    "register_ecc",
    "get_ecc",
    "ecc_names",
    "FaultInjector",
    "ReadPathECC",
    "ECCSummary",
    "summarize_read_paths",
    "word_outcome_probabilities",
    "estimate_fit",
    "estimate_carbon_per_gib_year",
    "DEFAULT_ECC_WORD_BITS",
    "XOR_ENERGY_NJ",
]
