"""Pluggable DRAM device models.

A :class:`DeviceModel` bundles everything the simulator needs to know
about one DRAM technology: command timings (in memory cycles), the
per-operation energy model, and the memory clock. The paper evaluates a
GDDR5 part (Table I) and projects energy onto HBM1/HBM2 (Section V);
the presets here extend that to a small design space so the lazy
scheduler can be swept across devices whose latency/energy trade-offs
differ (cf. Chang et al., "Understanding Latency Variation in Modern
DRAM Chips", on how widely timings vary across devices).

The ``gddr5`` preset is *numerically identical* to the package-wide
defaults (:class:`~repro.config.timing.DRAMTimings` /
:class:`~repro.config.energy.DRAMEnergyParams` / 924 MHz), so selecting
it reproduces the seed configuration bit for bit. The other presets are
representative, not datasheet-exact: reproduced results are normalized,
so only the ratios matter.

Registry usage::

    from repro.dram.devices import get_device, device_names

    hbm = get_device("hbm")
    cfg = hbm.apply(GPUConfig())          # GPUConfig on that device

Third-party models register with :func:`register_device`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config.energy import DRAMEnergyParams
from repro.config.timing import DRAMTimings
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.config.gpu import GPUConfig


@dataclass(frozen=True, slots=True)
class DeviceModel:
    """One DRAM technology: timings + energy parameters + clock."""

    name: str
    timings: DRAMTimings
    energy: DRAMEnergyParams
    mem_clock_mhz: float
    #: One-line provenance note shown by ``repro-harness table --device``.
    description: str = ""
    #: Width of the data word each ECC codeword protects (the device's
    #: prefetch/interface granule: wider interfaces amortise check bits
    #: over more data, narrower ones pay proportionally more overhead).
    ecc_word_bits: int = 64

    def validate(self) -> None:
        """Check the whole model; raise :class:`ConfigError` on violation.

        Beyond the per-component checks this enforces the cross-cutting
        invariants the scheduler relies on: ``tRC >= tRAS + tRP`` (a row
        cycle covers activate + restore + precharge), strictly positive
        per-operation energies, and a positive clock.
        """
        if not self.name:
            raise ConfigError("device name must be non-empty")
        if self.mem_clock_mhz <= 0:
            raise ConfigError(
                f"device {self.name!r}: mem_clock_mhz must be positive"
            )
        if self.ecc_word_bits < 8:
            raise ConfigError(
                f"device {self.name!r}: ecc_word_bits must be >= 8"
            )
        self.timings.validate()
        self.energy.validate()

    # ------------------------------------------------------------------
    @property
    def row_cycle_ns(self) -> float:
        """tRC in nanoseconds — the latency side of the trade-off."""
        return self.timings.tRC / self.mem_clock_mhz * 1e3

    @property
    def activation_energy_nj(self) -> float:
        """Energy per activation — the energy side of the trade-off."""
        return self.energy.e_act_nj

    def apply(self, config: Optional["GPUConfig"] = None) -> "GPUConfig":
        """A :class:`GPUConfig` running on this device.

        Non-device fields (SM array, queue sizes, L2 geometry, address
        mapping, ...) of ``config`` are preserved; the device's timings,
        energy parameters, and memory clock replace the config's.
        """
        from repro.config.gpu import GPUConfig

        base = config if config is not None else GPUConfig()
        return dataclasses.replace(
            base,
            timings=self.timings,
            energy=self.energy,
            mem_clock_mhz=self.mem_clock_mhz,
        )


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
def gddr5_device() -> DeviceModel:
    """Table I baseline: Hynix GDDR5 at 924 MHz.

    Identical to the package defaults — a simulation on this device is
    field-identical to one with no device selected.
    """
    return DeviceModel(
        name="gddr5",
        timings=DRAMTimings(),
        energy=DRAMEnergyParams(),
        mem_clock_mhz=924.0,
        description="Table I baseline (Hynix GDDR5, 924 MHz)",
    )


def gddr5x_device() -> DeviceModel:
    """GDDR5X-class part: QDR data bus, slightly slower row timings.

    The doubled per-pin rate halves the data-bus occupancy of a 128-byte
    access (tBURST 4 -> 2) and raises the command clock; the row cycle
    barely improves, so row energy matters *more* relative to bandwidth.
    """
    return DeviceModel(
        name="gddr5x",
        timings=DRAMTimings(
            tCL=14, tRCD=14, tRP=14, tRC=46, tRAS=32, tBURST=2,
        ),
        energy=DRAMEnergyParams(
            technology="GDDR5X",
            e_act_nj=2.9,
            e_rd_nj=1.1,
            e_wr_nj=1.2,
            background_mw=165.0,
            baseline_row_energy_fraction=0.38,
        ),
        mem_clock_mhz=1250.0,
        description="GDDR5X-class QDR part (tBURST 2, 1250 MHz)",
    )


def hbm_device() -> DeviceModel:
    """HBM generation-1 stack: slow clock, wide interface, cheap rows.

    Timings follow :func:`repro.config.timing.hbm1_timings`; energy
    follows :func:`repro.config.energy.hbm1_energy` (row energy ~50 % of
    DRAM energy at baseline, the paper's Section V projection).
    """
    return DeviceModel(
        name="hbm",
        timings=DRAMTimings(tCL=14, tRCD=14, tRP=14, tRC=47, tRAS=33),
        energy=DRAMEnergyParams(
            technology="HBM1",
            e_act_nj=2.4,
            e_rd_nj=0.5,
            e_wr_nj=0.55,
            background_mw=90.0,
            baseline_row_energy_fraction=0.50,
        ),
        mem_clock_mhz=500.0,
        description="HBM1 stack (500 MHz, row energy ~50 % at baseline)",
        ecc_word_bits=128,
    )


def lpddr4_device() -> DeviceModel:
    """LPDDR4-class mobile part: long bursts, slow rows, tiny background.

    BL16 doubles the data-bus occupancy per 128-byte access (tBURST 8),
    rows are slow to cycle but cheap to keep idle — the regime where
    activation elision (AMS) pays off most in relative terms.
    """
    return DeviceModel(
        name="lpddr4",
        timings=DRAMTimings(
            tCL=14, tRCD=15, tRP=15, tRC=49, tRAS=34,
            tCCD=4, tRRD=8, tWR=14, tCWL=7, tBURST=8,
            tREFI=3120, tRFC=140,
        ),
        energy=DRAMEnergyParams(
            technology="LPDDR4",
            e_act_nj=1.9,
            e_rd_nj=0.8,
            e_wr_nj=0.9,
            background_mw=40.0,
            baseline_row_energy_fraction=0.40,
        ),
        mem_clock_mhz=800.0,
        description="LPDDR4-class mobile part (BL16, 800 MHz)",
        ecc_word_bits=32,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_DEVICES: dict[str, DeviceModel] = {}


def register_device(device: DeviceModel) -> DeviceModel:
    """Validate and register a device model; returns it for chaining."""
    device.validate()
    _DEVICES[device.name] = device
    return device


def get_device(name: str) -> DeviceModel:
    """Look up a registered device model by name."""
    try:
        return _DEVICES[name]
    except KeyError:
        raise ConfigError(
            f"unknown DRAM device {name!r}; "
            f"registered: {', '.join(sorted(_DEVICES))}"
        ) from None


def device_names() -> list[str]:
    """Sorted names of every registered device model."""
    return sorted(_DEVICES)


for _factory in (gddr5_device, gddr5x_device, hbm_device, lpddr4_device):
    register_device(_factory())
del _factory
