"""Per-bank DRAM state machine.

Each bank tracks its open row and the earliest legal times for the next
activate, precharge, and column command. The channel model
(:mod:`repro.dram.channel`) layers channel-wide constraints (tRRD, tCCD,
data-bus occupancy) on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config.timing import DRAMTimings

#: Sentinel meaning "no row is open in this bank".
NO_ROW: int = -1


@dataclass(slots=True)
class Bank:
    """State of one DRAM bank (timing in memory cycles)."""

    index: int
    bank_group: int
    timings: DRAMTimings
    open_row: int = NO_ROW
    #: Issue time of the most recent ACT (for tRC and tRAS accounting).
    last_act_time: float = float("-inf")
    #: Earliest time the next ACT may issue (after PRE + tRP and tRC).
    earliest_act: float = 0.0
    #: Earliest time the next PRE may issue (tRAS, read/write recovery).
    earliest_pre: float = 0.0
    #: Earliest time the next column command may issue (tRCD, tCDLR).
    earliest_col_rd: float = 0.0
    earliest_col_wr: float = 0.0
    #: Column accesses served since the current row was opened (RBL count).
    accesses_this_activation: int = 0

    @property
    def is_open(self) -> bool:
        """Whether any row is currently latched in the row buffer."""
        return self.open_row != NO_ROW

    def earliest_activate_time(self, now: float) -> float:
        """Earliest legal ACT issue time considering only this bank."""
        return max(now, self.earliest_act)

    def earliest_precharge_time(self, now: float) -> float:
        """Earliest legal PRE issue time considering only this bank."""
        return max(now, self.earliest_pre)

    def earliest_column_time(self, now: float, is_write: bool) -> float:
        """Earliest legal RD/WR issue time considering only this bank."""
        limit = self.earliest_col_wr if is_write else self.earliest_col_rd
        return max(now, limit)

    def do_activate(self, row: int, t: float) -> None:
        """Apply an ACT issued at ``t`` opening ``row``."""
        tm = self.timings
        self.open_row = row
        self.last_act_time = t
        self.earliest_col_rd = max(self.earliest_col_rd, t + tm.tRCD)
        self.earliest_col_wr = max(self.earliest_col_wr, t + tm.tRCD)
        self.earliest_pre = max(self.earliest_pre, t + tm.tRAS)
        self.earliest_act = max(self.earliest_act, t + tm.tRC)
        self.accesses_this_activation = 0

    def do_precharge(self, t: float) -> None:
        """Apply a PRE issued at ``t``; the bank becomes closed."""
        tm = self.timings
        self.open_row = NO_ROW
        self.earliest_act = max(self.earliest_act, t + tm.tRP)

    def do_column(self, t: float, is_write: bool, data_end: float) -> None:
        """Apply a RD/WR issued at ``t`` whose data burst ends at ``data_end``."""
        tm = self.timings
        self.accesses_this_activation += 1
        if is_write:
            # Write recovery gates PRE; tCDLR gates a following read.
            self.earliest_pre = max(self.earliest_pre, data_end + tm.tWR)
            self.earliest_col_rd = max(self.earliest_col_rd, data_end + tm.tCDLR)
        else:
            # Approximate read-to-precharge (tRTP) with the burst length.
            self.earliest_pre = max(self.earliest_pre, t + tm.tBURST)
