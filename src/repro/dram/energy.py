"""DRAM energy accounting.

Row energy — the paper's primary metric — is the energy of activate +
restore + precharge, i.e. proportional to the activation count. Access
energy covers row-buffer column reads/writes; background energy covers
static and refresh power over the simulated interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.config.energy import DRAMEnergyParams
from repro.dram.stats import ChannelStats


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Energy totals for a simulation, in nanojoules."""

    row_nj: float
    access_nj: float
    background_nj: float
    #: ECC encode/check energy (0.0 — and omitted from the JSON form —
    #: unless an ECC read path was active).
    ecc_nj: float = 0.0

    @property
    def dynamic_nj(self) -> float:
        """Row plus access energy."""
        return self.row_nj + self.access_nj

    @property
    def total_nj(self) -> float:
        """All components."""
        return (
            self.row_nj + self.access_nj + self.background_nj + self.ecc_nj
        )

    @property
    def row_fraction(self) -> float:
        """Share of total energy spent on row operations."""
        total = self.total_nj
        return self.row_nj / total if total else 0.0


def compute_energy(
    stats: Iterable[ChannelStats],
    params: DRAMEnergyParams,
    elapsed_mem_cycles: float,
    mem_clock_mhz: float,
    *,
    ecc_nj: float = 0.0,
) -> EnergyBreakdown:
    """Aggregate per-channel statistics into an energy breakdown.

    ``background_nj`` = power (mW) x wall time (us) per channel; wall time
    is ``elapsed_mem_cycles / mem_clock_mhz`` microseconds. ``ecc_nj`` is
    the encode/check energy accumulated by the ECC read paths (zero when
    no ECC is configured).
    """
    activations = reads = writes = refreshes = 0
    channels = 0
    for s in stats:
        channels += 1
        activations += s.activations
        reads += s.reads_served
        writes += s.writes_served
        refreshes += s.refreshes
    elapsed_us = elapsed_mem_cycles / mem_clock_mhz if mem_clock_mhz else 0.0
    return EnergyBreakdown(
        row_nj=activations * params.e_act_nj,
        access_nj=reads * params.e_rd_nj + writes * params.e_wr_nj,
        background_nj=(
            params.background_mw * elapsed_us * channels
            + refreshes * params.e_ref_nj
        ),
        ecc_nj=ecc_nj,
    )


def project_memory_system_energy(
    baseline_row_nj: float,
    scheme_row_nj: float,
    params: DRAMEnergyParams,
    *,
    baseline_other_nj: float | None = None,
) -> float:
    """Project total memory-system energy ratio for a technology.

    The paper (Section V, "Effect on Memory Energy") weighs the row-energy
    reduction by the technology's baseline row-energy fraction: HBM1 ~50 %,
    HBM2 ~25 %. Non-row energy is assumed unchanged by the scheduler (a
    slightly conservative assumption: AMS also removes column accesses).

    Returns the scheme's memory system energy normalized to baseline.
    """
    f = params.baseline_row_energy_fraction
    if baseline_row_nj <= 0:
        return 1.0
    row_ratio = scheme_row_nj / baseline_row_nj
    if baseline_other_nj is None:
        return f * row_ratio + (1.0 - f)
    total = baseline_row_nj / f  # implied baseline total from the fraction
    other = total - baseline_row_nj
    return (scheme_row_nj + other) / total
