"""Reuse-aware application-error model.

The paper's footnote 2: the simple model "did not consider the error
propagation caused by the reuse of approximated cache lines", but the
authors "tested with a more advanced model (that considers reuse) and
have observed similar application error results".

This module implements that advanced model: drops are replayed in
*time order*, and each prediction's donor values are read from the
current (already-perturbed) array state. A line approximated early can
therefore seed later predictions, chaining errors exactly as reused
approximate lines would in hardware.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.vp.predictor import DropRecord
from repro.workloads.base import Workload
from repro.workloads.layout import AddressSpace


def build_perturbed_inputs_with_reuse(
    space: AddressSpace,
    arrays: dict[str, np.ndarray],
    drops: Iterable[DropRecord],
) -> dict[str, np.ndarray]:
    """Like :func:`repro.approx.replay.build_perturbed_inputs`, but donor
    values come from the evolving perturbed state (error propagation)."""
    state = {name: arr.copy() for name, arr in arrays.items()}
    zero_line = bytes(space.line_bytes)
    for drop in sorted(drops, key=lambda d: d.time):
        located = space.locate_line(drop.addr)
        if located is None or not located[0].approximable:
            continue
        if drop.donor_line_addr is None:
            data = zero_line
        else:
            donor_byte_addr = drop.donor_line_addr * space.line_bytes
            # Read from the *current* state: an earlier approximation in
            # the donor line propagates into this prediction.
            data = space.read_line_bytes(state, donor_byte_addr)
        space.write_line_bytes(state, drop.addr, data)
    return state


def measure_application_error_with_reuse(
    workload: Workload, drops: Iterable[DropRecord]
) -> float:
    """End-to-end application error under the reuse-aware model."""
    drops = list(drops)
    if not drops:
        return 0.0
    exact = workload.run_exact()
    perturbed = build_perturbed_inputs_with_reuse(
        workload.space, workload.arrays, drops
    )
    approx_out = workload.run_approx(perturbed)
    return workload.output_error(exact, approx_out)
