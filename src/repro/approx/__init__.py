"""Output-quality pipeline: replay AMS drops through the real kernels."""

from repro.approx.propagation import (
    build_perturbed_inputs_with_reuse,
    measure_application_error_with_reuse,
)
from repro.approx.quality import mean_relative_error, mismatch_rate, psnr, rmse
from repro.approx.replay import build_perturbed_inputs, measure_application_error

__all__ = [
    "build_perturbed_inputs",
    "build_perturbed_inputs_with_reuse",
    "mean_relative_error",
    "measure_application_error",
    "measure_application_error_with_reuse",
    "mismatch_rate",
    "psnr",
    "rmse",
]
