"""Approximation replay: from simulator drop records to application error.

During simulation the AMS unit records, for every dropped request, the
donor line the VP unit selected (the nearest-address line resident in the
local L2 slice). This module substitutes the donor lines' *values* into
the workload's input arrays and re-runs the real kernel, yielding the
end-to-end application error of paper Section II-D / Fig. 12(c).

Per the paper's footnote 2, reuse-driven error propagation is not
modelled: each dropped line is perturbed once in the input copy, and all
kernel uses of those elements see the approximated values.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.config.gpu import GPUConfig
from repro.vp.predictor import DropRecord
from repro.workloads.base import Workload
from repro.workloads.layout import AddressSpace


def build_perturbed_inputs(
    space: AddressSpace,
    arrays: dict[str, np.ndarray],
    drops: Iterable[DropRecord],
) -> dict[str, np.ndarray]:
    """Copies of the arrays with every dropped line's bytes replaced by
    its donor line's bytes (zeros when no donor was available)."""
    perturbed = {name: arr.copy() for name, arr in arrays.items()}
    zero_line = bytes(space.line_bytes)
    for drop in drops:
        located = space.locate_line(drop.addr)
        if located is None:
            continue
        spec, _, _ = located
        if not spec.approximable:
            # AMS only drops annotated reads; tolerate stray records.
            continue
        if drop.donor_line_addr is None:
            data = zero_line
        else:
            donor_byte_addr = drop.donor_line_addr * space.line_bytes
            data = space.read_line_bytes(arrays, donor_byte_addr)
        space.write_line_bytes(perturbed, drop.addr, data)
    return perturbed


def measure_application_error(
    workload: Workload,
    drops: Iterable[DropRecord],
    *,
    config: GPUConfig | None = None,
) -> float:
    """End-to-end application error for a simulation's drop log."""
    drops = list(drops)
    if not drops:
        return 0.0
    exact = workload.run_exact()
    perturbed = build_perturbed_inputs(workload.space, workload.arrays, drops)
    approx_out = workload.run_approx(perturbed)
    return workload.output_error(exact, approx_out)
