"""Output-quality metrics for the approximation pipeline."""

from __future__ import annotations

import numpy as np


def mean_relative_error(
    exact: np.ndarray, approx: np.ndarray, *, floor: float = 1e-6
) -> float:
    """Average relative error between two outputs (paper Section II-D)."""
    e = np.asarray(exact, dtype=np.float64).ravel()
    a = np.asarray(approx, dtype=np.float64).ravel()
    denom = np.maximum(np.abs(e), floor)
    return float(np.mean(np.abs(a - e) / denom))


def rmse(exact: np.ndarray, approx: np.ndarray) -> float:
    """Root-mean-square error."""
    e = np.asarray(exact, dtype=np.float64).ravel()
    a = np.asarray(approx, dtype=np.float64).ravel()
    return float(np.sqrt(np.mean((a - e) ** 2)))


def psnr(
    exact: np.ndarray, approx: np.ndarray, *, peak: float = 255.0
) -> float:
    """Peak signal-to-noise ratio in dB (image outputs, Fig. 14)."""
    err = rmse(exact, approx)
    if err == 0:
        return float("inf")
    return float(20 * np.log10(peak / err))


def mismatch_rate(exact: np.ndarray, approx: np.ndarray) -> float:
    """Fraction of differing entries (discrete outputs, e.g. jmein)."""
    e = np.asarray(exact).ravel()
    a = np.asarray(approx).ravel()
    return float(np.mean(e != a))
