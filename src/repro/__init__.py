"""repro — reproduction of Wang & Jog, "Exploiting Latency and Error
Tolerance of GPGPU Applications for an Energy-Efficient DRAM" (DSN 2019).

The package provides:

* a from-scratch, event-driven GPU memory-system simulator (SM frontend,
  crossbar, L2 slices, FR-FCFS GDDR5/HBM memory controllers);
* the paper's contribution — the lazy memory scheduler with Delayed
  Memory Scheduling (DMS), Approximate Memory Scheduling (AMS), and a
  value-prediction unit;
* twenty kernel-backed GPGPU workloads with the paper's Table II/III
  characteristics and end-to-end application-error measurement;
* a harness regenerating every figure and table of the evaluation.

Quickstart::

    from repro import baseline_config, dyn_combo, simulate, get_workload

    workload = get_workload("SCP")
    report = simulate(workload, scheduler=dyn_combo())
    print(report.summary())
"""

from repro.config import (
    baseline_config,
    baseline_scheduler,
    dyn_ams,
    dyn_combo,
    dyn_dms,
    static_ams,
    static_combo,
    static_dms,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "baseline_config",
    "baseline_scheduler",
    "dyn_ams",
    "dyn_combo",
    "dyn_dms",
    "static_ams",
    "static_combo",
    "static_dms",
    "simulate",
    "simulate_spec",
    "SimSpec",
    "get_device",
    "device_names",
    "get_workload",
    "list_workloads",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` light and avoid import cycles while
    # the higher layers (sim, workloads) are built on top of this package.
    if name in ("simulate", "simulate_spec"):
        from repro.sim import system

        return getattr(system, name)
    if name == "SimSpec":
        from repro.sim.spec import SimSpec

        return SimSpec
    if name in ("get_device", "device_names"):
        from repro.dram import devices

        return getattr(devices, name)
    if name in ("get_workload", "list_workloads"):
        from repro.workloads import registry

        return getattr(registry, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
