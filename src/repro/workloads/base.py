"""Workload abstraction: a numpy kernel + a trace generator + annotations.

Each of the paper's twenty applications subclasses :class:`Workload`,
providing

* ``_build()`` — allocate the kernel's input/output arrays (seeded, so a
  workload instance is fully deterministic) and register them in the
  :class:`~repro.workloads.layout.AddressSpace`, marking the
  programmer-annotated approximable arrays (paper Listing 1);
* ``warp_streams()`` — the per-warp memory trace over those arrays;
* ``run_kernel()`` — the real computation, used both for the reference
  output and for the approximation replay (dropped lines' values replaced
  by the VP's donor lines).
"""

from __future__ import annotations

import abc
from typing import ClassVar, Optional, Sequence

import numpy as np

from repro.config.gpu import GPUConfig
from repro.errors import WorkloadError
from repro.gpu.warp import WarpOp
from repro.workloads.layout import AddressSpace


class Workload(abc.ABC):
    """One GPGPU application of Table II."""

    #: Table II abbreviation, e.g. "SCP".
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    #: Input kind from Table II ("Matrix", "Image", ...).
    input_kind: ClassVar[str] = ""
    #: Result-presentation group (1-4) from Section V.
    group: ClassVar[int] = 0

    def __init__(
        self,
        *,
        scale: float = 1.0,
        seed: int = 7,
        parallelism: float = 1.0,
        compute_scale: float = 1.0,
    ) -> None:
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        if parallelism <= 0 or compute_scale <= 0:
            raise WorkloadError("parallelism/compute_scale must be positive")
        self.scale = scale
        self.seed = seed
        self.parallelism = parallelism
        self.compute_scale = compute_scale
        self.rng = np.random.default_rng(seed)
        self.space = AddressSpace()
        self.arrays: dict[str, np.ndarray] = {}
        self._exact: Optional[np.ndarray] = None
        self._build()
        if not self.arrays:
            raise WorkloadError(f"{self.name}: _build registered no arrays")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def dim(self, n: int, *, multiple: int = 1, minimum: int = 1) -> int:
        """Scale a problem dimension, rounded to ``multiple``."""
        scaled = int(round(n * self.scale / multiple)) * multiple
        return max(scaled, max(minimum, multiple))

    def dim2(self, n: int, *, multiple: int = 1, minimum: int = 1) -> int:
        """Scale a 2-D side length so the *footprint* scales linearly
        with ``scale`` (side scales with sqrt(scale))."""
        side = n * self.scale**0.5
        scaled = int(round(side / multiple)) * multiple
        return max(scaled, max(minimum, multiple))

    def dim3(self, n: int, *, multiple: int = 1, minimum: int = 1) -> int:
        """Scale a 3-D side length (side scales with cbrt(scale))."""
        side = n * self.scale ** (1.0 / 3.0)
        scaled = int(round(side / multiple)) * multiple
        return max(scaled, max(minimum, multiple))

    def warps(self, n: int) -> int:
        """Scale a warp count by the parallelism knob and the workload
        scale (kept even, >= 2, within the SM array's 30 x 48 slots).

        Warp counts follow the problem size so that ops-per-warp — and
        with it the steady-state queue behaviour the calibration relies
        on — is preserved across scales.
        """
        scaled = int(round(n * self.parallelism * min(self.scale, 2.0) / 2))
        return min(max(scaled * 2, 2), 1440)

    def cycles(self, c: float) -> float:
        """Scale a per-op compute duration by the compute knob."""
        return c * self.compute_scale

    def register(
        self, name: str, array: np.ndarray, *, approximable: bool = False
    ) -> np.ndarray:
        """Place an array in the address space and remember its data."""
        contiguous = np.ascontiguousarray(array)
        self.space.add(name, contiguous, approximable=approximable)
        self.arrays[name] = contiguous
        return contiguous

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build(self) -> None:
        """Allocate and register the kernel's arrays."""

    @abc.abstractmethod
    def warp_streams(self, config: GPUConfig) -> list[list[WarpOp]]:
        """The per-warp memory trace (see :mod:`repro.workloads.traces`)."""

    @abc.abstractmethod
    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        """Execute the computation on the given array values."""

    # ------------------------------------------------------------------
    # Output-quality pipeline
    # ------------------------------------------------------------------
    def run_exact(self) -> np.ndarray:
        """Reference output on the unperturbed inputs (cached)."""
        if self._exact is None:
            self._exact = self.run_kernel(self.arrays)
        return self._exact

    def run_approx(self, perturbed: dict[str, np.ndarray]) -> np.ndarray:
        """Output with approximated inputs (from the replay pipeline)."""
        return self.run_kernel(perturbed)

    def output_error(self, exact: np.ndarray, approx: np.ndarray) -> float:
        """Application error: mean relative error of the output
        (paper Section II-D). Subclasses with discrete outputs override
        this (e.g. mismatch rate for intersection tests)."""
        e = np.asarray(exact, dtype=np.float64).ravel()
        a = np.asarray(approx, dtype=np.float64).ravel()
        if e.shape != a.shape:
            raise WorkloadError("output shapes differ between exact/approx")
        denom = np.maximum(np.abs(e), 1e-6)
        return float(np.mean(np.abs(a - e) / denom))

    # ------------------------------------------------------------------
    def trace_footprint(self, config: GPUConfig) -> dict[str, int]:
        """Static summary of the trace (diagnostics): ops, accesses."""
        streams = self.warp_streams(config)
        ops = sum(len(s) for s in streams)
        accesses = sum(len(op.accesses) for s in streams for op in s)
        reads = sum(
            1
            for s in streams
            for op in s
            for a in op.accesses
            if not a.is_write
        )
        return {
            "warps": len(streams),
            "ops": ops,
            "accesses": accesses,
            "reads": reads,
            "writes": accesses - reads,
        }
