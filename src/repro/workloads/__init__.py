"""The twenty Table II GPGPU applications: kernels + trace generators."""

from repro.workloads.base import Workload
from repro.workloads.characteristics import (
    GROUPS,
    TABLE_II,
    AppFeatures,
    classify_act_sensitivity,
    classify_delay_tolerance,
    classify_error_tolerance,
    classify_th_rbl_sensitivity,
    classify_thrashing,
)
from repro.workloads.layout import AddressSpace, ArraySpec
from repro.workloads.registry import get_workload, list_workloads

__all__ = [
    "AddressSpace",
    "AppFeatures",
    "ArraySpec",
    "GROUPS",
    "TABLE_II",
    "Workload",
    "classify_act_sensitivity",
    "classify_delay_tolerance",
    "classify_error_tolerance",
    "classify_th_rbl_sensitivity",
    "classify_thrashing",
    "get_workload",
    "list_workloads",
]
