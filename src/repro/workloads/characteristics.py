"""Tables II and III of the paper: application features and thresholds.

Table II lists the twenty evaluated applications with qualitative feature
levels; Table III defines the quantitative thresholds behind each level.
The benchmark ``bench_table2_characterization.py`` measures every feature
on our traces and classifies it with these thresholds, comparing against
the paper's published levels.
"""

from __future__ import annotations

from dataclasses import dataclass

Level = str  # "Low" | "Medium" | "High" | "NA"


@dataclass(frozen=True, slots=True)
class AppFeatures:
    """One Table II row."""

    name: str
    description: str
    input_kind: str
    group: int
    thrashing: Level
    delay_tolerance: Level
    act_sensitivity: Level
    th_rbl_sensitivity: Level
    error_tolerance: Level


#: Table II, verbatim.
TABLE_II: dict[str, AppFeatures] = {
    f.name: f
    for f in [
        AppFeatures("RAY", "Ray Tracing", "Matrix", 3,
                    "High", "High", "High", "Low", "High"),
        AppFeatures("inversek2j", "Inverse kinematics for 2-joint arm",
                    "Coordinates", 3, "High", "High", "High", "Low", "High"),
        AppFeatures("newtonraph", "Equation solver", "Image", 4,
                    "High", "High", "High", "Low", "Low"),
        AppFeatures("FWT", "Fast Walsh Transform", "Matrix", 4,
                    "High", "Medium", "High", "High", "Low"),
        AppFeatures("MVT", "Matrix Vector Product and Transpose", "Matrix",
                    2, "High", "Medium", "High", "Low", "High"),
        AppFeatures("jmein", "Triangle intersection detection",
                    "Coordinates", 2, "High", "Medium", "High", "Low",
                    "Medium"),
        AppFeatures("ATAX", "Matrix Transpose, Vector Multiplication",
                    "Matrix", 4, "High", "Medium", "High", "Low", "Low"),
        AppFeatures("3DCONV", "3D Convolution", "Matrix", 2,
                    "High", "Medium", "High", "Low", "Medium"),
        AppFeatures("CONS", "1D Convolution", "Matrix", 4,
                    "High", "Medium", "High", "Low", "Low"),
        AppFeatures("srad", "Speckle Reducing Anisotropic Diffusion",
                    "Image", 4, "High", "Medium", "High", "Low", "Low"),
        AppFeatures("LPS", "3D Laplace Solver", "Matrix", 1,
                    "High", "Medium", "Low", "High", "High"),
        AppFeatures("BICG", "BiCGStab Linear Solver", "Matrix", 1,
                    "High", "Low", "High", "High", "Medium"),
        AppFeatures("SCP", "Scalar products", "Matrix", 1,
                    "High", "Low", "High", "High", "Medium"),
        AppFeatures("GEMM", "Matrix Multiplication", "Matrices", 4,
                    "High", "Low", "Medium", "High", "Low"),
        AppFeatures("blackscholes", "Black-Scholes Option Pricing",
                    "Matrix", 4, "Medium", "Medium", "High", "High", "Low"),
        AppFeatures("2MM", "2 Matrix Multiplications", "Matrices", 4,
                    "Medium", "Medium", "Medium", "Low", "Low"),
        AppFeatures("3MM", "3 Matrix Multiplications", "Matrices", 3,
                    "Low", "High", "High", "Low", "High"),
        AppFeatures("SLA", "Scan of Large Arrays", "Matrix", 4,
                    "Low", "High", "Medium", "Low", "Low"),
        AppFeatures("meanfilter", "Convolution Filter for Noise Reduction",
                    "Image", 3, "Low", "High", "Low", "Low", "High"),
        AppFeatures("laplacian", "Image sharpening filter", "Images", 3,
                    "Low", "Medium", "Low", "Low", "Medium"),
    ]
}

#: Group membership derived from Table II (Section V's presentation).
GROUPS: dict[int, tuple[str, ...]] = {
    g: tuple(n for n, f in TABLE_II.items() if f.group == g)
    for g in (1, 2, 3, 4)
}


# ----------------------------------------------------------------------
# Table III: quantitative thresholds
# ----------------------------------------------------------------------
def classify_thrashing(pct_requests_low_rbl: float) -> Level:
    """% of requests in rows with RBL(1-8): [0,3) Low, [3,10) Medium,
    [10,100) High."""
    if pct_requests_low_rbl < 3:
        return "Low"
    if pct_requests_low_rbl < 10:
        return "Medium"
    return "High"


def classify_delay_tolerance(mtd_cycles: float) -> Level:
    """Maximum Tolerable Delay: [0,256) Low, [256,1024) Medium, else High."""
    if mtd_cycles < 256:
        return "Low"
    if mtd_cycles < 1024:
        return "Medium"
    return "High"


def classify_act_sensitivity(pct_reduction_at_2048: float) -> Level:
    """Activation reduction at DMS(2048): [0,10) Low, [10,20) Medium,
    [20,100) High."""
    if pct_reduction_at_2048 < 10:
        return "Low"
    if pct_reduction_at_2048 < 20:
        return "Medium"
    return "High"


def classify_th_rbl_sensitivity(pct_extra_reduction: float) -> Level:
    """Extra activation reduction from lowering Th_RBL below 8:
    [0,5) Low, [5,100) High."""
    return "Low" if pct_extra_reduction < 5 else "High"


def classify_error_tolerance(app_error_pct: float) -> Level:
    """Application error at 10 % coverage: [20,inf) Low, [5,20) Medium,
    [0,5) High."""
    if app_error_pct >= 20:
        return "Low"
    if app_error_pct >= 5:
        return "Medium"
    return "High"
