"""Multi-tenant trace composer: N workloads sharing one memory system.

:class:`TenantMix` is a :class:`~repro.workloads.base.Workload` built
from a :class:`~repro.config.tenants.TenantMixSpec`. It instantiates
each tenant's registered workload (per-tenant scale multiplier and
seed), places every tenant's arrays in one shared address space, and
interleaves the tenants' warp streams round-robin into one merged,
deterministic trace:

* **address isolation** — each tenant's accesses are rebased by that
  tenant's (256-byte-aligned) offset in the shared space, so tenants
  never alias lines. Tenant 0 keeps offset 0;
* **class enforcement** — the ``approximable`` annotation is stripped
  from every access of a tenant whose class forbids dropping, so the
  AMS unit's ``row_all_approximable`` test structurally excludes those
  tenants' rows — a dropped request can never belong to a ``latency``
  or ``bandwidth`` tenant;
* **attribution** — :attr:`stream_tenants` aligns 1:1 with the merged
  streams; the frontend stamps each warp (and hence every
  :class:`~repro.dram.request.MemoryRequest`) with its ``tenant_id``.

A **single-tenant mix is pure composition sugar**: the sole member's
space, arrays, streams, and name are passed through untouched (no
rebase, no stripping, no ``stream_tenants``), so its report is
field-identical to the plain single-workload run. Class contracts are
contention contracts — alone on the machine there is no one to
prioritise against — so they only engage at N >= 2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config.gpu import GPUConfig
from repro.config.tenants import TenantMixSpec
from repro.errors import WorkloadError
from repro.gpu.warp import Access, WarpOp
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload


class TenantMix(Workload):
    """The composed workload of a :class:`TenantMixSpec`."""

    name = "tenant-mix"  # overwritten per instance below
    description = "interleaved multi-tenant workload mix"

    def __init__(
        self, mix: TenantMixSpec, *, scale: float = 1.0, seed: int = 7
    ) -> None:
        mix.validate()
        self.mix = mix
        self._members = [
            get_workload(
                t.workload,
                scale=scale * t.scale,
                seed=t.seed if t.seed is not None else seed,
            )
            for t in mix.tenants
        ]
        #: Per-tenant byte offset into the shared address space.
        self._offsets: list[int] = []
        #: ``tenant_id`` per merged warp stream; ``None`` until
        #: :meth:`warp_streams` runs, and stays ``None`` for a
        #: single-tenant mix (nothing tenant-specific attaches).
        self.stream_tenants: Optional[list[int]] = None
        self._out_lengths: Optional[list[int]] = None
        super().__init__(scale=scale, seed=seed)
        # The mix reports under a name derived from its members; a
        # single-tenant mix keeps the member's name so its report is
        # indistinguishable from the plain run.
        if mix.multi:
            self.name = "+".join(t.workload for t in mix.tenants)
        else:
            self.name = self._members[0].name

    # ------------------------------------------------------------------
    def _build(self) -> None:
        if not self.mix.multi:
            # Pass-through: alias the sole member's layout verbatim.
            member = self._members[0]
            self.space = member.space
            self.arrays = member.arrays
            self._offsets = [0]
            return
        for tenant, member in zip(self.mix.tenants, self._members):
            offset: Optional[int] = None
            for spec in member.space.arrays:
                shared_name = f"{tenant.name}.{spec.name}"
                self.register(
                    shared_name,
                    member.arrays[spec.name],
                    approximable=spec.approximable and tenant.approximable,
                )
                placed = self.space.spec(shared_name)
                if offset is None:
                    offset = placed.base - spec.base
                elif placed.base - spec.base != offset:
                    # Cannot happen while member starts are 256-aligned
                    # (the allocator aligns every base); guard anyway so
                    # a layout change fails loudly, not with silently
                    # mis-rebased traces.
                    raise WorkloadError(
                        f"tenant {tenant.name!r} layout shifted "
                        "non-uniformly in the shared address space"
                    )
            self._offsets.append(offset if offset is not None else 0)

    # ------------------------------------------------------------------
    def warp_streams(self, config: GPUConfig) -> list[list[WarpOp]]:
        member_streams = [m.warp_streams(config) for m in self._members]
        if not self.mix.multi:
            self.stream_tenants = None
            return member_streams[0]
        merged: list[list[WarpOp]] = []
        tenant_ids: list[int] = []
        cursors = [0] * len(member_streams)
        remaining = sum(len(s) for s in member_streams)
        # Round-robin over tenants so the SM assignment (stream index
        # mod num_sms) mixes classes across SMs deterministically.
        while remaining:
            for tid, streams in enumerate(member_streams):
                cursor = cursors[tid]
                if cursor >= len(streams):
                    continue
                cursors[tid] = cursor + 1
                merged.append(self._transform(streams[cursor], tid))
                tenant_ids.append(tid)
                remaining -= 1
        self.stream_tenants = tenant_ids
        return merged

    def _transform(self, stream: list[WarpOp], tid: int) -> list[WarpOp]:
        """Rebase one stream's addresses and apply the class contract."""
        offset = self._offsets[tid]
        allow = self.mix.tenants[tid].approximable
        out = []
        for op in stream:
            out.append(
                WarpOp(
                    compute_cycles=op.compute_cycles,
                    instructions=op.instructions,
                    accesses=tuple(
                        Access(
                            addr=a.addr + offset,
                            is_write=a.is_write,
                            approximable=a.approximable and allow,
                            full_line=a.full_line,
                            tag=a.tag,
                        )
                        for a in op.accesses
                    ),
                )
            )
        return out

    # ------------------------------------------------------------------
    # Output-quality pipeline (approximation replay)
    # ------------------------------------------------------------------
    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        if not self.mix.multi:
            return self._members[0].run_kernel(arrays)
        outputs = []
        lengths = []
        for tenant, member in zip(self.mix.tenants, self._members):
            member_arrays = {
                spec.name: arrays[f"{tenant.name}.{spec.name}"]
                for spec in member.space.arrays
            }
            out = np.asarray(
                member.run_kernel(member_arrays), dtype=np.float64
            ).ravel()
            outputs.append(out)
            lengths.append(out.size)
        self._out_lengths = lengths
        return np.concatenate(outputs) if outputs else np.zeros(0)

    def output_error(self, exact, approx) -> float:
        """Mean of the members' own error metrics (each member may use a
        discrete metric, e.g. mismatch rate), weighted equally."""
        if not self.mix.multi:
            return self._members[0].output_error(exact, approx)
        if self._out_lengths is None:
            raise WorkloadError("run_kernel must run before output_error")
        errors = []
        start = 0
        for member, length in zip(self._members, self._out_lengths):
            stop = start + length
            errors.append(
                member.output_error(exact[start:stop], approx[start:stop])
            )
            start = stop
        return float(np.mean(errors)) if errors else 0.0

    def member_errors(self, exact, approx) -> list[float]:
        """Per-tenant output errors (roster order); multi-tenant only."""
        if not self.mix.multi:
            return [self._members[0].output_error(exact, approx)]
        if self._out_lengths is None:
            raise WorkloadError("run_kernel must run before member_errors")
        errors = []
        start = 0
        for member, length in zip(self._members, self._out_lengths):
            stop = start + length
            errors.append(
                float(
                    member.output_error(exact[start:stop], approx[start:stop])
                )
            )
            start = stop
        return errors
