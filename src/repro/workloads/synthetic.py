"""A fully parameterised synthetic workload.

Exposes the trace-generator knobs directly, so users can dial in any
point of the paper's characterisation space (Table III) without writing
a kernel: thrashing level via ``stray_fraction``, activation sensitivity
via ``visits_per_row``/``skew_cycles``, delay tolerance via
``n_warps``/``compute``, error tolerance via ``data_offset`` (see
:func:`repro.workloads.data.offset_noise`).

The kernel is a segment-sum reduction over the traced array, so the
approximation-replay pipeline works end to end.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import offset_noise
from repro.workloads.traces import interleave, row_visit_streams

#: Elements per reduction segment of the synthetic kernel.
SEGMENT = 256


class SyntheticWorkload(Workload):
    """Dial-a-characteristic workload over one annotated array."""

    name = "synthetic"
    description = "parameterised synthetic workload"
    input_kind = "Matrix"
    group = 0

    def __init__(
        self,
        *,
        elements: int = 393216,
        n_warps: int = 64,
        lines_per_visit: int = 2,
        lines_per_op: int | None = None,
        visits_per_row: int = 2,
        skew_cycles: float | tuple[float, float] = (400.0, 1600.0),
        compute: float = 35.0,
        stray_fraction: float = 0.15,
        data_offset: float = 0.5,
        **kwargs,
    ) -> None:
        self._elements = elements
        self._n_warps = n_warps
        self._lines_per_visit = lines_per_visit
        self._lines_per_op = lines_per_op
        self._visits_per_row = visits_per_row
        self._skew_cycles = skew_cycles
        self._compute = compute
        self._stray_fraction = min(max(stray_fraction, 0.0), 0.9)
        self._data_offset = data_offset
        super().__init__(**kwargs)

    def _build(self) -> None:
        n = self.dim(self._elements, multiple=SEGMENT * 12)
        self.register(
            "X",
            offset_noise(self.rng, n, offset=self._data_offset),
            approximable=True,
        )

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        main_hi = 1.0 - self._stray_fraction
        main = row_visit_streams(
            self.space, "X", m,
            n_warps=self.warps(self._n_warps),
            lines_per_visit=self._lines_per_visit,
            lines_per_op=self._lines_per_op,
            visits_per_row=self._visits_per_row,
            skew_cycles=self._skew_cycles,
            compute=self.cycles(self._compute),
            row_range=(0.0, main_hi),
        )
        if self._stray_fraction <= 0.0:
            return main
        strays = row_visit_streams(
            self.space, "X", m,
            n_warps=self.warps(max(self._n_warps // 5, 2)),
            lines_per_visit=1,
            visits_per_row=1,
            compute=self.cycles(self._compute),
            row_range=(main_hi, 1.0),
            shuffle_seed=self.seed,
        )
        return interleave(main, strays)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        x = arrays["X"].astype(np.float64)
        return x.reshape(-1, SEGMENT).sum(axis=1)
