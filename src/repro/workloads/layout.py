"""Memory layout of a workload: arrays placed in the global address space.

Every workload registers its numpy arrays in an :class:`AddressSpace`.
The same layout serves two purposes:

* trace generation — element indices translate to byte addresses that the
  simulator decodes into (channel, bank, row, column);
* approximation replay — a dropped 128-byte line translates back to the
  array elements it covered, and a donor line's bytes supply the
  predicted values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.errors import WorkloadError

#: Alignment of array bases: one interleave chunk (256 B) so arrays start
#: at a channel boundary.
_BASE_ALIGN = 256


@dataclass(frozen=True, slots=True)
class ArraySpec:
    """One array's placement in the global address space."""

    name: str
    base: int
    nbytes: int
    itemsize: int
    #: Whether the programmer annotated this array approximable
    #: (paper Listing 1: ``#pragma pred_var{B}``).
    approximable: bool

    @property
    def end(self) -> int:
        """One past the last byte of the array."""
        return self.base + self.nbytes


class AddressSpace:
    """Sequential allocator + bidirectional address/element mapping."""

    def __init__(self, line_bytes: int = 128) -> None:
        self.line_bytes = line_bytes
        self._arrays: dict[str, ArraySpec] = {}
        self._order: list[ArraySpec] = []
        self._next_base = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def add(
        self, name: str, array: np.ndarray, *, approximable: bool = False
    ) -> ArraySpec:
        """Place ``array`` at the next aligned base address."""
        if name in self._arrays:
            raise WorkloadError(f"array {name!r} registered twice")
        base = -(-self._next_base // _BASE_ALIGN) * _BASE_ALIGN
        spec = ArraySpec(
            name=name,
            base=base,
            nbytes=array.nbytes,
            itemsize=array.itemsize,
            approximable=approximable,
        )
        self._arrays[name] = spec
        self._order.append(spec)
        self._next_base = spec.end
        return spec

    def spec(self, name: str) -> ArraySpec:
        """The placement of array ``name``."""
        try:
            return self._arrays[name]
        except KeyError:
            raise WorkloadError(f"unknown array {name!r}") from None

    @property
    def arrays(self) -> Iterable[ArraySpec]:
        """All registered arrays in allocation order."""
        return tuple(self._order)

    @property
    def footprint_bytes(self) -> int:
        """Total bytes spanned by the layout."""
        return self._next_base

    # ------------------------------------------------------------------
    # Element -> address
    # ------------------------------------------------------------------
    def addr_of(self, name: str, flat_index: int) -> int:
        """Byte address of element ``flat_index`` of array ``name``."""
        spec = self.spec(name)
        offset = flat_index * spec.itemsize
        if not 0 <= offset < spec.nbytes:
            raise WorkloadError(
                f"element {flat_index} out of range for array {name!r}"
            )
        return spec.base + offset

    def line_of(self, name: str, flat_index: int) -> int:
        """Line-aligned byte address covering the element."""
        addr = self.addr_of(name, flat_index)
        return addr - addr % self.line_bytes

    def lines_of_range(self, name: str, start: int, stop: int) -> list[int]:
        """Distinct line-aligned addresses covering elements [start, stop)."""
        if stop <= start:
            return []
        first = self.line_of(name, start)
        last = self.line_of(name, stop - 1)
        return list(range(first, last + 1, self.line_bytes))

    def elements_per_line(self, name: str) -> int:
        """Number of this array's elements in one full line."""
        return self.line_bytes // self.spec(name).itemsize

    # ------------------------------------------------------------------
    # Address -> elements (replay direction)
    # ------------------------------------------------------------------
    def locate_line(
        self, line_addr: int
    ) -> Optional[tuple[ArraySpec, int, int]]:
        """Find the array overlapping a line.

        Returns ``(spec, byte_lo, byte_hi)`` — the overlap of
        ``[line_addr, line_addr + line_bytes)`` with the array's extent,
        as offsets into the array — or ``None`` for an unmapped line.
        """
        line_end = line_addr + self.line_bytes
        for spec in self._order:
            if spec.base < line_end and line_addr < spec.end:
                lo = max(line_addr, spec.base) - spec.base
                hi = min(line_end, spec.end) - spec.base
                return spec, lo, hi
        return None

    def read_line_bytes(
        self, arrays: dict[str, np.ndarray], line_addr: int
    ) -> bytes:
        """The ``line_bytes`` bytes backing a line (zeros where unmapped)."""
        out = bytearray(self.line_bytes)
        located = self.locate_line(line_addr)
        if located is not None:
            spec, lo, hi = located
            raw = (
                np.ascontiguousarray(arrays[spec.name])
                .view(np.uint8)
                .reshape(-1)
            )
            dst_off = spec.base + lo - line_addr
            out[dst_off:dst_off + (hi - lo)] = raw[lo:hi].tobytes()
        return bytes(out)

    def write_line_bytes(
        self, arrays: dict[str, np.ndarray], line_addr: int, data: bytes
    ) -> bool:
        """Overwrite the array bytes covered by a line with ``data``.

        Returns True when any bytes were written (the line was mapped).
        """
        located = self.locate_line(line_addr)
        if located is None:
            return False
        spec, lo, hi = located
        target = arrays[spec.name]
        if not target.flags["C_CONTIGUOUS"]:
            raise WorkloadError(
                f"array {spec.name!r} must be C-contiguous for replay"
            )
        raw = target.view(np.uint8).reshape(-1)
        src_off = spec.base + lo - line_addr
        raw[lo:hi] = np.frombuffer(
            data[src_off:src_off + (hi - lo)], dtype=np.uint8
        )
        return True
