"""Name-based registry of the twenty Table II applications."""

from __future__ import annotations

from typing import Callable, Type

from repro.errors import WorkloadError
from repro.workloads.base import Workload

_REGISTRY: dict[str, Callable[..., Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator (or direct call) adding a workload to the registry."""
    if not cls.name:
        raise WorkloadError(f"{cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_loaded() -> None:
    # Import side effects populate the registry lazily.
    if _REGISTRY:
        return
    from repro.workloads.kernels import (  # noqa: F401
        atax,
        bicg,
        blackscholes,
        cons,
        conv3d,
        fwt,
        gemm,
        inversek2j,
        jmein,
        laplacian,
        lps,
        meanfilter,
        mm2,
        mm3,
        mvt,
        newtonraph,
        ray,
        scp,
        sla,
        srad,
    )

    from repro.workloads import synthetic

    for module in (
        atax, bicg, blackscholes, cons, conv3d, fwt, gemm, inversek2j,
        jmein, laplacian, lps, meanfilter, mm2, mm3, mvt, newtonraph,
        ray, scp, sla, srad, synthetic,
    ):
        for obj in vars(module).values():
            if (
                isinstance(obj, type)
                and issubclass(obj, Workload)
                and obj is not Workload
                and obj.name
            ):
                _REGISTRY.setdefault(obj.name, obj)


def list_workloads() -> list[str]:
    """Names of all registered applications (Table II order not implied)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_workload(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 7,
    parallelism: float | None = None,
    compute_scale: float | None = None,
) -> Workload:
    """Instantiate a registered workload by its Table II abbreviation.

    Calibrated parallelism/compute multipliers from
    :mod:`repro.workloads.tuning` are applied unless overridden.
    """
    from repro.workloads.tuning import TUNING

    _ensure_loaded()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise WorkloadError(f"unknown workload {name!r} (known: {known})")
    tuned_p, tuned_c = TUNING.get(name, (1.0, 1.0))
    return factory(
        scale=scale,
        seed=seed,
        parallelism=tuned_p if parallelism is None else parallelism,
        compute_scale=tuned_c if compute_scale is None else compute_scale,
    )
