"""Per-application trace tuning (parallelism, compute scale).

These values are produced by ``scripts/tune_workloads.py``, which sizes
each application's warp-level parallelism and per-op compute so the
closed-loop simulator lands in the paper's delay-tolerance regime:

* Low MTD    — near bus saturation (delay adds directly to latency);
* Medium MTD — moderately loaded (256-512 cycles absorbable);
* High MTD   — many warps at moderate demand (the 128-entry pending
  queue can amortise 1024+ cycles of ageing).

``registry.get_workload`` applies them automatically; pass explicit
``parallelism=``/``compute_scale=`` to override.
"""

from __future__ import annotations

#: app name -> (parallelism multiplier, compute-duration multiplier)
TUNING: dict[str, tuple[float, float]] = {
    "2MM": (1.400, 5.974),
    "3DCONV": (1.400, 0.524),
    "3MM": (1.000, 2.983),
    "ATAX": (1.400, 3.899),
    "BICG": (1.000, 1.000),
    "CONS": (1.400, 0.304),
    "FWT": (1.400, 0.352),
    "GEMM": (1.000, 2.735),
    "LPS": (1.400, 8.386),
    "MVT": (1.400, 3.899),
    "RAY": (1.000, 5.083),
    "SCP": (1.000, 6.005),
    "SLA": (1.000, 10.370),
    "blackscholes": (1.400, 1.833),
    "inversek2j": (1.000, 4.127),
    "jmein": (1.400, 1.000),
    "laplacian": (1.400, 6.306),
    "meanfilter": (1.000, 10.940),
    "newtonraph": (1.000, 7.057),
    "srad": (1.400, 0.593),
}
