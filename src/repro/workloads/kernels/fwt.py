"""FWT — fast Walsh(-Hadamard) transform (CUDA SDK).

Table II: Group 4; High thrashing, Medium delay tolerance, High
activation sensitivity, **High Th_RBL sensitivity**, Low error
tolerance.

Trace shape: butterfly passes touch DRAM rows in skewed two-line waves
(delay merges them) and the large-stride late passes leave a sizeable
isolated RBL(1) population — the mass Dyn-AMS targets with a low
Th_RBL.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import rough_field
from repro.workloads.traces import interleave, row_visit_streams


def walsh_hadamard(x: np.ndarray) -> np.ndarray:
    """In-place-free iterative Walsh-Hadamard transform (length 2^k)."""
    out = x.astype(np.float64).copy()
    n = out.size
    h = 1
    while h < n:
        out = out.reshape(-1, 2 * h)
        a = out[:, :h].copy()
        b = out[:, h:].copy()
        out[:, :h] = a + b
        out[:, h:] = a - b
        out = out.reshape(-1)
        h *= 2
    return out


class FWT(Workload):
    """Walsh-Hadamard transform of a rough signal (power-of-two size)."""

    name = "FWT"
    description = "fast Walsh transform"
    input_kind = "Matrix"
    group = 4

    def _build(self) -> None:
        exponent = max(14, int(round(np.log2(524288 * self.scale))))
        n = 1 << exponent
        self.register("X", rough_field(self.rng, n), approximable=True)

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        butterflies = row_visit_streams(
            self.space, "X", m,
            n_warps=self.warps(48), lines_per_visit=2, lines_per_op=1,
            visits_per_row=2, skew_cycles=(500.0, 1800.0),
            compute=self.cycles(35.0), row_range=(0.0, 0.68),
        )
        late_passes = row_visit_streams(
            self.space, "X", m,
            n_warps=self.warps(16), lines_per_visit=1, visits_per_row=1,
            row_range=(0.68, 1.0), compute=self.cycles(35.0), shuffle_seed=self.seed,
        )
        return interleave(butterflies, late_passes)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        return walsh_hadamard(arrays["X"])
