"""BICG — BiCGStab kernel pair from Polybench: s = A^T r, q = A p.

Table II: Group 1; High thrashing, Low delay tolerance, High activation
sensitivity, High Th_RBL sensitivity, Medium error tolerance.

Trace shape: the ``q = A p`` pass streams matrix rows while the
``s = A^T r`` pass makes skewed second visits to the same DRAM rows
(different lines) — so delay merges them. A sparse single-line
remainder supplies the RBL(1) mass that Dyn-AMS targets.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import offset_noise
from repro.workloads.traces import interleave, row_visit_streams


class BICG(Workload):
    """BiCG sub-kernels on an annotated matrix."""

    name = "BICG"
    description = "BiCGStab linear solver kernels"
    input_kind = "Matrix"
    group = 1

    def _build(self) -> None:
        n = self.dim2(960, multiple=48, minimum=96)
        a = offset_noise(self.rng, (n, n), offset=0.5)
        self.register("A", a, approximable=True)
        self.register("p", offset_noise(self.rng, n, offset=0.5),
                      approximable=True)
        self.register("r", offset_noise(self.rng, n, offset=0.5),
                      approximable=True)
        self.n = n

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        row_pass = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(56), lines_per_visit=3, visits_per_row=2,
            skew_cycles=1100.0, compute=self.cycles(30.0), row_range=(0.0, 0.52),
        )
        transpose_strays = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(14), lines_per_visit=1, visits_per_row=1,
            row_range=(0.52, 1.0), compute=self.cycles(30.0), shuffle_seed=self.seed,
        )
        vectors = row_visit_streams(
            self.space, "p", m,
            n_warps=self.warps(2), lines_per_visit=2, visits_per_row=1, compute=self.cycles(30.0),
        )
        return interleave(row_pass, transpose_strays, vectors)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        a = arrays["A"].astype(np.float64)
        p = arrays["p"].astype(np.float64)
        r = arrays["r"].astype(np.float64)
        q = a @ p
        s = a.T @ r
        return np.concatenate([q, s])
