"""laplacian — image sharpening filter (AxBench).

Table II: Group 3; Low thrashing, Medium delay tolerance, Low activation
sensitivity, Low Th_RBL sensitivity, Medium error tolerance. This is
the paper's Fig. 14 application: its sharpened output visualises the
quality loss of the Dyn-DMS + Dyn-AMS combination.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import smooth_image
from repro.workloads.traces import interleave, row_visit_streams


def sharpen(img: np.ndarray) -> np.ndarray:
    """Laplacian sharpening: subtract the 4-neighbour Laplacian."""
    padded = np.pad(img, 1, mode="edge")
    lap = (
        padded[:-2, 1:-1] + padded[2:, 1:-1]
        + padded[1:-1, :-2] + padded[1:-1, 2:]
        - 4 * img
    )
    return np.clip(img - 0.8 * lap, 0.0, 255.0)


class Laplacian(Workload):
    """Sharpening filter over a smooth photograph."""

    name = "laplacian"
    description = "image sharpening filter"
    input_kind = "Images"
    group = 3

    def _build(self) -> None:
        side = self.dim2(576, multiple=48, minimum=96)
        self.register(
            "img", smooth_image(self.rng, side, side), approximable=True
        )
        self.side = side

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        bulk = row_visit_streams(
            self.space, "img", m,
            n_warps=self.warps(80), lines_per_visit=14, lines_per_op=2,
            visits_per_row=1, compute=self.cycles(40.0),
            row_range=(0.0, 0.95),
        )
        # A small boundary-row population: the only AMS candidates, giving
        # laplacian its limited (far below 10 %) coverage.
        edges = row_visit_streams(
            self.space, "img", m,
            n_warps=self.warps(8), lines_per_visit=2, visits_per_row=1,
            row_range=(0.95, 1.0), compute=self.cycles(40.0), shuffle_seed=self.seed,
        )
        return interleave(bulk, edges)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        return sharpen(arrays["img"].astype(np.float64))

    def output_error(self, exact, approx) -> float:
        """Peak-normalized mean absolute error (image output).

        Plain relative error explodes on near-black pixels; image-quality
        studies normalise by the dynamic range instead.
        """
        import numpy as np

        e = np.asarray(exact, dtype=np.float64)
        a = np.asarray(approx, dtype=np.float64)
        return float(np.mean(np.abs(a - e)) / 255.0)
