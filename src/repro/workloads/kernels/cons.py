"""CONS — 1D convolution (Polybench).

Table II: Group 4; High thrashing, Medium delay tolerance, High
activation sensitivity, Low Th_RBL sensitivity, Low error tolerance.

Trace shape: thread blocks gather scattered two-line windows (halo +
body) and a skewed partner pass re-reads each row — High activation
sensitivity with the low-RBL mass at RBL(2), not RBL(1) (Th sensitivity
Low).
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import rough_field
from repro.workloads.traces import interleave, row_visit_streams


class CONS(Workload):
    """5-tap 1D convolution over a rough signal."""

    name = "CONS"
    description = "1D convolution"
    input_kind = "Matrix"
    group = 4

    TAPS = np.array([0.1, 0.2, 0.4, 0.2, 0.1], dtype=np.float64)

    def _build(self) -> None:
        n = self.dim(491520, multiple=3072)
        self.register("X", rough_field(self.rng, n), approximable=True)

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        body = row_visit_streams(
            self.space, "X", m,
            n_warps=self.warps(56), lines_per_visit=2, lines_per_op=1, visits_per_row=2,
            skew_cycles=(500.0, 1800.0), compute=self.cycles(40.0),
        )
        halo = row_visit_streams(
            self.space, "X", m,
            n_warps=self.warps(24), lines_per_visit=2, lines_per_op=1, visits_per_row=2,
            skew_cycles=(700.0, 2200.0), compute=self.cycles(40.0), line_offset=4,
        )
        return interleave(body, halo)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        x = arrays["X"].astype(np.float64)
        return np.convolve(x, self.TAPS, mode="same")
