"""3MM — three matrix multiplications (Polybench).

Table II: Group 3; **Low thrashing**, High delay tolerance, High
activation sensitivity, Low Th_RBL sensitivity, High error tolerance.

Fig. 6(b)'s signature: a *tiny* fraction (~0.2 %) of read requests at
RBL(1-2) causes ~45 % of all activations. Because so few low-RBL
read-only rows exist, AMS coverage cannot reach 10 % (Group 3), yet DMS
merges the skewed sparse visits well (High activation sensitivity).
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import smooth_field
from repro.workloads.traces import interleave, row_visit_streams


class MM3(Workload):
    """G = (A B)(C D) with smooth matrices."""

    name = "3MM"
    description = "three matrix multiplications"
    input_kind = "Matrices"
    group = 3

    def _build(self) -> None:
        n = self.dim2(480, multiple=48, minimum=96)
        for nm in ("A", "B", "C", "D"):
            self.register(nm, smooth_field(self.rng, (n, n)),
                          approximable=True)
        self.n = n

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        # Panel reuse: each row's lines are read twice (the refetch misses
        # L2 because the four-matrix working set far exceeds it), so every
        # activation still serves >8 requests (low thrashing) while DMS
        # can merge the two waves (high activation sensitivity).
        panels = [
            row_visit_streams(
                self.space, nm, m,
                n_warps=self.warps(28), lines_per_visit=14, lines_per_op=2,
                visits_per_row=2, repeat_visits=True,
                skew_cycles=(600.0, 2200.0), compute=self.cycles(35.0),
                row_range=(0.0, 0.4),
            )
            for nm in ("A", "B")
        ]
        panels += [
            row_visit_streams(
                self.space, nm, m,
                n_warps=self.warps(14), lines_per_visit=14, lines_per_op=2,
                visits_per_row=1, compute=self.cycles(35.0),
                row_range=(0.0, 0.4),
            )
            for nm in ("C", "D")
        ]
        # Sparse tile-boundary rereads: lines 14-15 of a fraction of A's
        # rows, in two skewed waves (disjoint from the panel lines).
        sparse = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(8), lines_per_visit=1, visits_per_row=2,
            skew_cycles=1100.0, compute=self.cycles(35.0), row_fraction=0.45,
            line_offset=14, shuffle_seed=self.seed,
        )
        return interleave(*panels, sparse)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        a = arrays["A"].astype(np.float64)
        b = arrays["B"].astype(np.float64)
        c = arrays["C"].astype(np.float64)
        d = arrays["D"].astype(np.float64)
        return (a @ b) @ (c @ d)
