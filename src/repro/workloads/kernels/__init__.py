"""Kernel-backed implementations of the twenty Table II applications."""
