"""MVT — matrix-vector product and transpose (Polybench).

x1 = A y1 ; x2 = A^T y2. Table II: Group 2; High thrashing, Medium delay
tolerance, High activation sensitivity, **Low Th_RBL sensitivity**
(the low-RBL mass sits at RBL(2+), so lowering Th_RBL below the static 8
buys nothing), High error tolerance.

Trace shape: the row pass and the transpose pass touch the same DRAM
rows in two skewed waves of two lines each — plenty for DMS — and there
is no single-line RBL(1) population.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import smooth_field
from repro.workloads.traces import interleave, row_visit_streams


class MVT(Workload):
    """Matrix-vector product plus transposed product."""

    name = "MVT"
    description = "matrix vector product and transpose"
    input_kind = "Matrix"
    group = 2

    def _build(self) -> None:
        n = self.dim2(1104, multiple=48, minimum=96)
        self.register("A", smooth_field(self.rng, (n, n)),
                      approximable=True)
        self.register("y1", smooth_field(self.rng, n), approximable=True)
        self.register("y2", smooth_field(self.rng, n), approximable=True)
        self.n = n

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        # Row + transpose passes revisit the same rows far enough apart
        # that the baseline cannot merge them (skew > typical queue wait).
        row_pass = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(120), lines_per_visit=2, lines_per_op=1,
            visits_per_row=2, skew_cycles=(600.0, 2000.0),
            compute=self.cycles(30.0), row_range=(0.0, 0.55),
        )
        # Single-visit RBL(2) rows: the AMS victims (not RBL(1), so
        # lowering Th_RBL below 8 buys nothing — Th sensitivity Low).
        victims = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(40), lines_per_visit=2, visits_per_row=1,
            row_range=(0.55, 1.0), compute=self.cycles(30.0), shuffle_seed=self.seed,
        )
        vectors = row_visit_streams(
            self.space, "y1", m,
            n_warps=self.warps(2), lines_per_visit=2, visits_per_row=1, compute=self.cycles(30.0),
        )
        return interleave(row_pass, victims, vectors)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        a = arrays["A"].astype(np.float64)
        y1 = arrays["y1"].astype(np.float64)
        y2 = arrays["y2"].astype(np.float64)
        return np.concatenate([a @ y1, a.T @ y2])
