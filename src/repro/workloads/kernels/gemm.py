"""GEMM — matrix multiplication (Polybench).

Table II: Group 4; High thrashing, Low delay tolerance, Medium
activation sensitivity, High Th_RBL sensitivity, Low error tolerance.

Fig. 6(a)'s signature: ~10 % of read requests (the B-operand column
panels at RBL(1-2)) cause ~65 % of the row activations, while the
A-operand row panels stream at high RBL.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import rough_field
from repro.workloads.traces import interleave, row_visit_streams


class GEMM(Workload):
    """C = alpha A B + beta C on rough (error-intolerant) matrices."""

    name = "GEMM"
    description = "matrix multiplication"
    input_kind = "Matrices"
    group = 4

    def _build(self) -> None:
        n = self.dim2(768, multiple=48, minimum=96)
        self.register("A", rough_field(self.rng, (n, n)), approximable=True)
        self.register("B", rough_field(self.rng, (n, n)), approximable=True)
        self.register("C", rough_field(self.rng, (n, n)))
        self.n = n

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        a_panels = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(40), lines_per_visit=8, visits_per_row=1, compute=self.cycles(35.0),
        )
        b_columns = row_visit_streams(
            self.space, "B", m,
            n_warps=self.warps(24), lines_per_visit=1, visits_per_row=2,
            skew_cycles=1200.0, compute=self.cycles(35.0), row_range=(0.0, 0.5),
            shuffle_seed=self.seed,
        )
        return interleave(a_panels, b_columns)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        a = arrays["A"].astype(np.float64)
        b = arrays["B"].astype(np.float64)
        c = arrays["C"].astype(np.float64)
        return 1.5 * (a @ b) + 1.2 * c
