"""meanfilter — 3x3 mean filter for noise reduction (AxBench).

Table II: Group 3; Low thrashing, High delay tolerance, Low activation
sensitivity, Low Th_RBL sensitivity, High error tolerance. Pure
high-RBL streaming: almost no low-RBL rows exist, so AMS coverage stays
near zero — yet the averaging kernel forgives any drop that does occur.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import smooth_image
from repro.workloads.traces import row_visit_streams


def mean3x3(img: np.ndarray) -> np.ndarray:
    """3x3 box filter with edge replication."""
    padded = np.pad(img, 1, mode="edge")
    out = np.zeros_like(img, dtype=np.float64)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            out += padded[1 + dy:1 + dy + img.shape[0],
                          1 + dx:1 + dx + img.shape[1]]
    return out / 9.0


class MeanFilter(Workload):
    """Noise-reduction box filter over a smooth photograph."""

    name = "meanfilter"
    description = "convolution filter for noise reduction"
    input_kind = "Image"
    group = 3

    def _build(self) -> None:
        side = self.dim2(576, multiple=48, minimum=96)
        img = smooth_image(self.rng, side, side)
        img += self.rng.normal(0, 6.0, img.shape).astype(np.float32)
        self.register("img", img.astype(np.float32), approximable=True)
        self.side = side

    def warp_streams(self, config: GPUConfig):
        return row_visit_streams(
            self.space, "img", config.mapping,
            n_warps=self.warps(128), lines_per_visit=16, lines_per_op=2,
            visits_per_row=1, compute=self.cycles(30.0),
        )

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        return mean3x3(arrays["img"].astype(np.float64))

    def output_error(self, exact, approx) -> float:
        """Peak-normalized mean absolute error (image output).

        Plain relative error explodes on near-black pixels; image-quality
        studies normalise by the dynamic range instead.
        """
        import numpy as np

        e = np.asarray(exact, dtype=np.float64)
        a = np.asarray(approx, dtype=np.float64)
        return float(np.mean(np.abs(a - e)) / 255.0)
