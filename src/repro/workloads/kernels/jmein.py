"""jmein — triangle intersection detection (AxBench's jmeint).

Table II: Group 2; High thrashing, Medium delay tolerance, High
activation sensitivity, Low Th_RBL sensitivity, Medium error tolerance.

The output is discrete (intersects / does not), so application error is
the mismatch rate — perturbed coordinates flip only near-boundary pairs
(Medium tolerance).
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import smooth_field
from repro.workloads.traces import interleave, row_visit_streams


class JMein(Workload):
    """Bounding-sphere triangle-pair intersection tests."""

    name = "jmein"
    description = "triangle intersection detection"
    input_kind = "Coordinates"
    group = 2

    def _build(self) -> None:
        pairs = self.dim(49152, multiple=1536)
        rng = self.rng
        # Two triangle soups with spatially-coherent vertices: each
        # triangle is 9 floats (3 vertices x 3 coordinates).
        for nm in ("triA", "triB"):
            centers = np.stack(
                [smooth_field(rng, pairs, low=-2.0, high=2.0)
                 for _ in range(3)],
                axis=1,
            )
            jitter = rng.uniform(-0.4, 0.4, (pairs, 3, 3))
            tri = centers[:, None, :] + jitter
            self.register(nm, tri.astype(np.float32), approximable=True)
        self.pairs = pairs

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        gathers = [
            row_visit_streams(
                self.space, nm, m,
                n_warps=self.warps(44), lines_per_visit=2, lines_per_op=1,
                visits_per_row=2, skew_cycles=(500.0, 1800.0),
                compute=self.cycles(45.0),
                shuffle_seed=self.seed + i,
            )
            for i, nm in enumerate(("triA", "triB"))
        ]
        return interleave(*gathers)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        a = arrays["triA"].astype(np.float64)
        b = arrays["triB"].astype(np.float64)
        ca = a.mean(axis=1)
        cb = b.mean(axis=1)
        ra = np.linalg.norm(a - ca[:, None, :], axis=2).max(axis=1)
        rb = np.linalg.norm(b - cb[:, None, :], axis=2).max(axis=1)
        dist = np.linalg.norm(ca - cb, axis=1)
        return (dist < ra + rb).astype(np.float64)

    def output_error(self, exact: np.ndarray, approx: np.ndarray) -> float:
        """Mismatch rate for the discrete intersection verdicts."""
        return float(np.mean(exact != approx))
