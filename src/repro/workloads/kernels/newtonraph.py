"""newtonraph — per-element Newton-Raphson equation solver (AxBench).

Table II: Group 4; High thrashing, High delay tolerance, High activation
sensitivity, Low Th_RBL sensitivity, Low error tolerance (root finding
amplifies coefficient perturbations; the coefficients are white noise,
so nearest-line prediction is uninformative).
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import rough_field
from repro.workloads.traces import interleave, row_visit_streams


class NewtonRaph(Workload):
    """Solve a*x^3 + b*x - c = 0 per element by Newton iteration."""

    name = "newtonraph"
    description = "Newton-Raphson equation solver"
    input_kind = "Image"
    group = 4

    def _build(self) -> None:
        n = self.dim(393216, multiple=3072)
        a = np.abs(rough_field(self.rng, n)) + 0.2
        b = np.abs(rough_field(self.rng, n)) + 0.2
        c = rough_field(self.rng, n, scale=2.0)
        self.register("A", a.astype(np.float32), approximable=True)
        self.register("B", b.astype(np.float32), approximable=True)
        self.register("C", c.astype(np.float32), approximable=True)

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        streams = [
            row_visit_streams(
                self.space, nm, m,
                n_warps=self.warps(200), lines_per_visit=3, lines_per_op=1,
                visits_per_row=2, skew_cycles=(300.0, 2400.0),
                compute=self.cycles(25.0),
            )
            for nm in ("A", "B", "C")
        ]
        return interleave(*streams)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        a = arrays["A"].astype(np.float64)
        b = arrays["B"].astype(np.float64)
        c = arrays["C"].astype(np.float64)
        x = np.ones_like(a)
        for _ in range(12):
            f = a * x**3 + b * x - c
            fp = 3 * a * x**2 + b
            x = x - f / np.maximum(fp, 1e-9)
        return x
