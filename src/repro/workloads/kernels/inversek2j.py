"""inversek2j — inverse kinematics for a 2-joint arm (AxBench).

Table II: Group 3; High thrashing, High delay tolerance, High activation
sensitivity, Low Th_RBL sensitivity, High error tolerance. Like RAY,
result writes share rows with coordinate reads, capping AMS coverage.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import smooth_field
from repro.workloads.traces import interleave, row_visit_streams

#: Arm segment lengths.
L1, L2 = 0.5, 0.5


class InverseK2J(Workload):
    """Closed-form 2-joint inverse kinematics over smooth target paths."""

    name = "inversek2j"
    description = "inverse kinematics for 2-joint arm"
    input_kind = "Coordinates"
    group = 3

    def _build(self) -> None:
        n = self.dim(294912, multiple=3072)
        # Reachable, smoothly varying end-effector paths.
        radius = 0.2 + 0.75 * smooth_field(self.rng, n, low=0.0, high=1.0)
        angle = 2 * np.pi * smooth_field(self.rng, n, low=0.0, high=1.0)
        self.register("X", (radius * np.cos(angle)).astype(np.float32),
                      approximable=True)
        self.register("Y", (radius * np.sin(angle)).astype(np.float32),
                      approximable=True)

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        coords = [
            row_visit_streams(
                self.space, nm, m,
                n_warps=self.warps(120), lines_per_visit=3, lines_per_op=1,
                visits_per_row=2, skew_cycles=(300.0, 2400.0),
                compute=self.cycles(25.0),
                shuffle_seed=self.seed + i,
            )
            for i, nm in enumerate(("X", "Y"))
        ]
        angle_writes = row_visit_streams(
            self.space, "X", m,
            n_warps=self.warps(24), lines_per_visit=2, visits_per_row=1,
            line_offset=6, compute=self.cycles(45.0), write=True,
            shuffle_seed=self.seed + 5,
        )
        return interleave(*coords, angle_writes)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        x = arrays["X"].astype(np.float64)
        y = arrays["Y"].astype(np.float64)
        d2 = x * x + y * y
        cos_t2 = np.clip((d2 - L1 * L1 - L2 * L2) / (2 * L1 * L2), -1, 1)
        t2 = np.arccos(cos_t2)
        t1 = np.arctan2(y, x) - np.arctan2(
            L2 * np.sin(t2), L1 + L2 * np.cos(t2)
        )
        return np.stack([t1, t2])
