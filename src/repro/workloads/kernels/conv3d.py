"""3DCONV — 3D convolution (Polybench).

Table II: Group 2; High thrashing, Medium delay tolerance, High
activation sensitivity, Low Th_RBL sensitivity, Medium error tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import offset_noise
from repro.workloads.traces import interleave, row_visit_streams


class Conv3D(Workload):
    """3x3x3 convolution over a mixed-smoothness volume."""

    name = "3DCONV"
    description = "3D convolution"
    input_kind = "Matrix"
    group = 2

    def _build(self) -> None:
        side = self.dim3(96, multiple=12, minimum=24)
        volume = offset_noise(self.rng, (side, side, side), offset=0.5)
        self.register("V", volume, approximable=True)
        self.side = side

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        planes = row_visit_streams(
            self.space, "V", m,
            n_warps=self.warps(48), lines_per_visit=2, lines_per_op=1, visits_per_row=2,
            skew_cycles=(500.0, 1800.0), compute=self.cycles(45.0),
        )
        halos = row_visit_streams(
            self.space, "V", m,
            n_warps=self.warps(28), lines_per_visit=2, lines_per_op=1, visits_per_row=2,
            skew_cycles=(700.0, 2200.0), compute=self.cycles(45.0), line_offset=4,
        )
        return interleave(planes, halos)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        v = arrays["V"].astype(np.float64)
        out = np.zeros_like(v)
        weights = {
            (0, 0, 0): 0.4,
            (1, 0, 0): 0.1, (-1, 0, 0): 0.1,
            (0, 1, 0): 0.1, (0, -1, 0): 0.1,
            (0, 0, 1): 0.1, (0, 0, -1): 0.1,
        }
        for (dz, dy, dx), w in weights.items():
            out += w * np.roll(v, (dz, dy, dx), axis=(0, 1, 2))
        return out
