"""SLA — scan of large arrays (CUDA SDK).

Table II: Group 4; Low thrashing, High delay tolerance, Medium
activation sensitivity, Low Th_RBL sensitivity, Low error tolerance.

Trace shape: bulk high-RBL streaming (prefix-sum passes) plus a modest
skewed re-read of block sums (the second scan phase) giving the Medium
activation sensitivity.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import rough_field
from repro.workloads.traces import interleave, row_visit_streams


class SLA(Workload):
    """Exclusive prefix sum over a large rough array."""

    name = "SLA"
    description = "scan of large arrays"
    input_kind = "Matrix"
    group = 4

    def _build(self) -> None:
        n = self.dim(983040, multiple=3072)
        self.register("X", rough_field(self.rng, n), approximable=True)

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        bulk = row_visit_streams(
            self.space, "X", m,
            n_warps=self.warps(96), lines_per_visit=14, lines_per_op=2,
            visits_per_row=1, compute=self.cycles(30.0),
            row_range=(0.0, 0.88),
        )
        block_sums = row_visit_streams(
            self.space, "X", m,
            n_warps=self.warps(16), lines_per_visit=1, visits_per_row=2,
            skew_cycles=1000.0, compute=self.cycles(30.0), row_range=(0.88, 1.0),
        )
        return interleave(bulk, block_sums)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        x = arrays["X"].astype(np.float64)
        out = np.empty_like(x)
        out[0] = 0.0
        np.cumsum(x[:-1], out=out[1:])
        return out
