"""SCP — scalar products (CUDA SDK).

Computes segment-wise dot products of two vectors. Table II: Group 1;
High thrashing, Low delay tolerance, High activation sensitivity, High
Th_RBL sensitivity, Medium error tolerance.

Trace shape: two skewed visits per DRAM row of each operand (the Fig. 3
pattern DMS merges) plus an isolated-single-line component giving the
>10 % RBL(1) request mass of Fig. 11.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import offset_noise
from repro.workloads.traces import interleave, row_visit_streams

#: Elements per dot-product segment.
SEGMENT = 128


class SCP(Workload):
    """Segment-wise scalar products of two annotated vectors."""

    name = "SCP"
    description = "scalar products"
    input_kind = "Matrix"
    group = 1

    def _build(self) -> None:
        n = self.dim(884736, multiple=SEGMENT * 24)
        self.register("A", offset_noise(self.rng, n, offset=0.5),
                      approximable=True)
        self.register("B", offset_noise(self.rng, n, offset=0.5),
                      approximable=True)
        self.register("C", np.zeros(n // SEGMENT, dtype=np.float32))

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        common = dict(
            n_warps=self.warps(60),
            lines_per_visit=3,
            visits_per_row=2,
            skew_cycles=900.0,
            compute=self.cycles(30.0),
            row_range=(0.0, 0.62),
        )
        main_a = row_visit_streams(self.space, "A", m, **common)
        main_b = row_visit_streams(self.space, "B", m, **common)
        strays = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(14), lines_per_visit=1, visits_per_row=1,
            row_range=(0.62, 1.0), compute=self.cycles(30.0), shuffle_seed=self.seed,
        )
        strays_b = row_visit_streams(
            self.space, "B", m,
            n_warps=self.warps(14), lines_per_visit=1, visits_per_row=1,
            row_range=(0.62, 1.0), compute=self.cycles(30.0), shuffle_seed=self.seed + 1,
        )
        return interleave(main_a, main_b, strays, strays_b)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        a = arrays["A"].astype(np.float64)
        b = arrays["B"].astype(np.float64)
        return (a * b).reshape(-1, SEGMENT).sum(axis=1)
