"""RAY — ray tracing (GPGPU-Sim benchmark suite).

Table II: Group 3; High thrashing, High delay tolerance, High activation
sensitivity, Low Th_RBL sensitivity, High error tolerance.

Group 3 because its rows are rarely read-only when opened: shading
writes land in the same rows as scene reads, so AMS coverage cannot
reach 10 % even though the (smooth) scene data is very tolerant.
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import smooth_field
from repro.workloads.traces import interleave, row_visit_streams


class Ray(Workload):
    """Sphere-scene ray casting with Lambert shading."""

    name = "RAY"
    description = "ray tracing"
    input_kind = "Matrix"
    group = 3

    N_SPHERES = 64

    def _build(self) -> None:
        side = self.dim2(768, multiple=48, minimum=96)
        self.side = side
        rng = self.rng
        spheres = np.stack(
            [
                rng.uniform(-4, 4, self.N_SPHERES),
                rng.uniform(-4, 4, self.N_SPHERES),
                rng.uniform(4, 14, self.N_SPHERES),
                rng.uniform(0.5, 1.8, self.N_SPHERES),
            ],
            axis=1,
        ).astype(np.float32)
        self.register("scene", smooth_field(rng, (side, side)),
                      approximable=True)
        self.register("spheres", spheres)
        self.register("frame", np.zeros((side, side), dtype=np.float32))

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        # Irregular scene gathers in two skewed waves (delay merges them).
        gathers = row_visit_streams(
            self.space, "scene", m,
            n_warps=self.warps(200), lines_per_visit=3, lines_per_op=1,
            visits_per_row=2, skew_cycles=(300.0, 2400.0),
            compute=self.cycles(25.0), shuffle_seed=self.seed,
        )
        # Shading writes into the same DRAM rows (line-offset apart):
        # these make most opened rows non-read-only, starving AMS.
        shade_writes = row_visit_streams(
            self.space, "scene", m,
            n_warps=self.warps(32), lines_per_visit=2, visits_per_row=1,
            line_offset=6, compute=self.cycles(50.0), write=True,
            shuffle_seed=self.seed + 1,
        )
        frame_out = row_visit_streams(
            self.space, "frame", m,
            n_warps=self.warps(8), lines_per_visit=8, visits_per_row=1,
            compute=self.cycles(50.0), write=True,
        )
        return interleave(gathers, shade_writes, frame_out)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        side = self.side
        scene = arrays["scene"].astype(np.float64)
        spheres = arrays["spheres"].astype(np.float64)
        ys, xs = np.meshgrid(
            np.linspace(-1, 1, side), np.linspace(-1, 1, side),
            indexing="ij",
        )
        # Ray directions through the pixel grid (pinhole at origin).
        dz = np.ones_like(xs)
        norm = np.sqrt(xs**2 + ys**2 + dz**2)
        dirs = np.stack([xs / norm, ys / norm, dz / norm], axis=-1)
        best_t = np.full((side, side), np.inf)
        shade = np.zeros((side, side))
        light = np.array([0.4, 0.7, -0.6])
        light = light / np.linalg.norm(light)
        for cx, cy, cz, r in spheres:
            center = np.array([cx, cy, cz])
            b = dirs @ center
            c = center @ center - r * r
            disc = b * b - c
            hit = disc > 0
            t = b - np.sqrt(np.where(hit, disc, 0.0))
            valid = hit & (t > 0) & (t < best_t)
            if not valid.any():
                continue
            point = dirs * t[..., None]
            normal = (point - center) / r
            lam = np.clip(normal @ light, 0.0, 1.0)
            shade = np.where(valid, lam, shade)
            best_t = np.where(valid, t, best_t)
        # Ambient term modulated by the (approximable) scene texture.
        return (0.2 * scene / scene.max() + 0.8 * shade).astype(np.float64)
