"""ATAX — y = A^T (A x) (Polybench).

Table II: Group 4; High thrashing, Medium delay tolerance, High
activation sensitivity, Low Th_RBL sensitivity, **Low error tolerance**
(zero-mean inputs: the double reduction amplifies mispredicted lines, so
AMS is not applied to this application; DMS-only mode still reduces its
row energy — paper Fig. 15).
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import rough_field
from repro.workloads.traces import interleave, row_visit_streams


class ATAX(Workload):
    """A^T A x with rough (error-intolerant) data."""

    name = "ATAX"
    description = "matrix transpose, vector multiplication"
    input_kind = "Matrix"
    group = 4

    def _build(self) -> None:
        n = self.dim2(1104, multiple=48, minimum=96)
        self.register("A", rough_field(self.rng, (n, n)),
                      approximable=True)
        self.register("x", rough_field(self.rng, n), approximable=True)
        self.n = n

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        forward = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(120), lines_per_visit=2, lines_per_op=1,
            visits_per_row=2, skew_cycles=(600.0, 2000.0),
            compute=self.cycles(30.0), row_range=(0.0, 0.55),
        )
        victims = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(40), lines_per_visit=2, visits_per_row=1,
            row_range=(0.55, 1.0), compute=self.cycles(30.0), shuffle_seed=self.seed,
        )
        vec = row_visit_streams(
            self.space, "x", m,
            n_warps=self.warps(2), lines_per_visit=2, visits_per_row=1, compute=self.cycles(30.0),
        )
        return interleave(forward, victims, vec)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        a = arrays["A"].astype(np.float64)
        x = arrays["x"].astype(np.float64)
        return a.T @ (a @ x)
