"""2MM — two chained matrix multiplications (Polybench).

Table II: Group 4; Medium thrashing, Medium delay tolerance, Medium
activation sensitivity, Low Th_RBL sensitivity, Low error tolerance.

The low-RBL mass sits at RBL(2-4) (tile boundary traffic), so lowering
Th_RBL below 8 buys nothing (Th sensitivity Low).
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import rough_field
from repro.workloads.traces import interleave, row_visit_streams


class MM2(Workload):
    """E = (A B) C with rough matrices."""

    name = "2MM"
    description = "two matrix multiplications"
    input_kind = "Matrices"
    group = 4

    def _build(self) -> None:
        n = self.dim2(672, multiple=48, minimum=96)
        self.register("A", rough_field(self.rng, (n, n)), approximable=True)
        self.register("B", rough_field(self.rng, (n, n)), approximable=True)
        self.register("C", rough_field(self.rng, (n, n)), approximable=True)
        self.n = n

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        panels_a = row_visit_streams(
            self.space, "A", m,
            n_warps=self.warps(36), lines_per_visit=10, visits_per_row=1, compute=self.cycles(40.0),
        )
        panels_b = row_visit_streams(
            self.space, "B", m,
            n_warps=self.warps(36), lines_per_visit=10, visits_per_row=1, compute=self.cycles(40.0),
        )
        boundary = row_visit_streams(
            self.space, "C", m,
            n_warps=self.warps(16), lines_per_visit=2, lines_per_op=1,
            visits_per_row=2, skew_cycles=(500.0, 1800.0),
            compute=self.cycles(40.0), row_range=(0.0, 0.3),
        )
        return interleave(panels_a, panels_b, boundary)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        a = arrays["A"].astype(np.float64)
        b = arrays["B"].astype(np.float64)
        c = arrays["C"].astype(np.float64)
        return (a @ b) @ c
