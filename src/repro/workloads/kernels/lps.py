"""LPS — 3D Laplace solver (GPGPU-Sim benchmark suite).

One Jacobi relaxation sweep of a 3D Laplace equation. Table II: Group 1;
High thrashing, Medium delay tolerance, **Low activation sensitivity**
(Fig. 7a: only ~2 % activation reduction at its MTD), High Th_RBL
sensitivity, High error tolerance.

Trace shape: single-visit rows (x/y-plane streaming) — nothing for DMS
to merge — plus a large population of isolated z-neighbour lines at
RBL(1), which AMS eliminates (the Fig. 7a story: AMS(8) achieves the
reduction DMS cannot).
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import smooth_field
from repro.workloads.traces import interleave, row_visit_streams


class LPS(Workload):
    """3D Laplace relaxation over an annotated potential field."""

    name = "LPS"
    description = "3D Laplace solver"
    input_kind = "Matrix"
    group = 1

    def _build(self) -> None:
        side = self.dim3(120, multiple=12, minimum=24)
        u = smooth_field(self.rng, (side, side, side))
        self.register("U", u, approximable=True)
        self.side = side

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        plane_stream = row_visit_streams(
            self.space, "U", m,
            n_warps=self.warps(180), lines_per_visit=4,
            visits_per_row=1, compute=self.cycles(30.0),
            row_range=(0.0, 0.55),
        )
        z_neighbors = row_visit_streams(
            self.space, "U", m,
            n_warps=self.warps(60), lines_per_visit=1, visits_per_row=1,
            row_range=(0.55, 1.0), compute=self.cycles(30.0), shuffle_seed=self.seed,
        )
        return interleave(plane_stream, z_neighbors)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        u = arrays["U"].astype(np.float64)
        out = u.copy()
        out[1:-1, 1:-1, 1:-1] = (
            u[:-2, 1:-1, 1:-1]
            + u[2:, 1:-1, 1:-1]
            + u[1:-1, :-2, 1:-1]
            + u[1:-1, 2:, 1:-1]
            + u[1:-1, 1:-1, :-2]
            + u[1:-1, 1:-1, 2:]
        ) / 6.0
        return out
