"""blackscholes — Black-Scholes option pricing (AxBench / PARSEC).

Table II: Group 4; Medium thrashing, Medium delay tolerance, High
activation sensitivity, High Th_RBL sensitivity, Low error tolerance.

Deep out-of-the-money options price near zero, so small input
perturbations yield huge *relative* errors (error tolerance Low even
though the math is benign).
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.traces import interleave, row_visit_streams


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    """Abramowitz & Stegun 7.1.26 polynomial approximation of Phi(x)."""
    t = 1.0 / (1.0 + 0.2316419 * np.abs(x))
    poly = t * (
        0.319381530
        + t * (-0.356563782 + t * (1.781477937
                                   + t * (-1.821255978 + t * 1.330274429)))
    )
    pdf = np.exp(-0.5 * x * x) / np.sqrt(2 * np.pi)
    cdf = 1.0 - pdf * poly
    return np.where(x >= 0, cdf, 1.0 - cdf)


class BlackScholes(Workload):
    """European call pricing over annotated parameter arrays."""

    name = "blackscholes"
    description = "Black-Scholes option pricing"
    input_kind = "Matrix"
    group = 4

    def _build(self) -> None:
        n = self.dim(245760, multiple=3072)
        rng = self.rng
        spot = rng.uniform(10.0, 120.0, n).astype(np.float32)
        strike = rng.uniform(40.0, 250.0, n).astype(np.float32)
        expiry = rng.uniform(0.05, 2.0, n).astype(np.float32)
        vol = rng.uniform(0.05, 0.7, n).astype(np.float32)
        self.register("S", spot, approximable=True)
        self.register("K", strike, approximable=True)
        self.register("T", expiry, approximable=True)
        self.register("V", vol, approximable=True)

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        streams = [
            row_visit_streams(
                self.space, nm, m,
                n_warps=self.warps(24), lines_per_visit=10, lines_per_op=2,
                visits_per_row=2, repeat_visits=True,
                skew_cycles=(600.0, 2000.0), compute=self.cycles(40.0),
                row_range=(0.0, 0.75),
            )
            for nm in ("S", "K")
        ]
        streams += [
            row_visit_streams(
                self.space, nm, m,
                n_warps=self.warps(12), lines_per_visit=10, visits_per_row=1,
                compute=self.cycles(40.0), row_range=(0.0, 0.75),
            )
            for nm in ("T", "V")
        ]
        # Mid-RBL remainder rows: candidates that waste Th_RBL(8)
        # coverage, making the threshold reduction of Dyn-AMS pay off.
        mid = row_visit_streams(
            self.space, "K", m,
            n_warps=self.warps(8), lines_per_visit=3, visits_per_row=1,
            row_range=(0.75, 1.0), compute=self.cycles(40.0),
        )
        tail = row_visit_streams(
            self.space, "S", m,
            n_warps=self.warps(12), lines_per_visit=1, visits_per_row=2,
            skew_cycles=1000.0, compute=self.cycles(40.0), row_range=(0.75, 1.0),
        )
        return interleave(*streams, mid, tail)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        s = arrays["S"].astype(np.float64)
        k = arrays["K"].astype(np.float64)
        t = np.maximum(arrays["T"].astype(np.float64), 1e-3)
        v = np.maximum(arrays["V"].astype(np.float64), 1e-3)
        r = 0.02
        d1 = (np.log(s / k) + (r + 0.5 * v * v) * t) / (v * np.sqrt(t))
        d2 = d1 - v * np.sqrt(t)
        return s * _norm_cdf(d1) - k * np.exp(-r * t) * _norm_cdf(d2)
