"""srad — speckle-reducing anisotropic diffusion (Rodinia).

Table II: Group 4; High thrashing, Medium delay tolerance, High
activation sensitivity, Low Th_RBL sensitivity, Low error tolerance.

The kernel's diffusion coefficient divides by local gradients, so
mispredicted lines produce large relative output errors even on image
data (error tolerance Low).
"""

from __future__ import annotations

import numpy as np

from repro.config.gpu import GPUConfig
from repro.workloads.base import Workload
from repro.workloads.data import rough_field
from repro.workloads.traces import interleave, row_visit_streams


class SRAD(Workload):
    """One SRAD iteration on a speckled image."""

    name = "srad"
    description = "speckle reducing anisotropic diffusion"
    input_kind = "Image"
    group = 4

    def _build(self) -> None:
        side = self.dim2(576, multiple=48, minimum=96)
        speckle = np.abs(rough_field(self.rng, (side, side))) + 0.05
        self.register("I", speckle.astype(np.float32), approximable=True)
        self.side = side

    def warp_streams(self, config: GPUConfig):
        m = config.mapping
        rows_pass = row_visit_streams(
            self.space, "I", m,
            n_warps=self.warps(48), lines_per_visit=2, lines_per_op=1, visits_per_row=2,
            skew_cycles=(500.0, 1800.0), compute=self.cycles(45.0),
        )
        neighbor_pass = row_visit_streams(
            self.space, "I", m,
            n_warps=self.warps(32), lines_per_visit=2, lines_per_op=1, visits_per_row=2,
            skew_cycles=(700.0, 2200.0), compute=self.cycles(45.0), line_offset=4,
        )
        return interleave(rows_pass, neighbor_pass)

    def run_kernel(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        img = arrays["I"].astype(np.float64)
        north = np.roll(img, 1, axis=0)
        south = np.roll(img, -1, axis=0)
        west = np.roll(img, 1, axis=1)
        east = np.roll(img, -1, axis=1)
        denom = np.maximum(img, 1e-6)
        grad2 = (
            (north - img) ** 2
            + (south - img) ** 2
            + (west - img) ** 2
            + (east - img) ** 2
        ) / denom**2
        lap = (north + south + west + east - 4 * img) / denom
        num = 0.5 * grad2 - (1.0 / 16.0) * lap**2
        den = (1.0 + 0.25 * lap) ** 2
        q = num / np.maximum(den, 1e-6)
        c = 1.0 / (1.0 + np.maximum(q, 0.0))
        return img + 0.125 * c * (north + south + west + east - 4 * img)
