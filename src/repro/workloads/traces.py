"""Warp-trace pattern builders.

Each of the twenty applications composes these generators over its *own
arrays* (so every emitted address maps back to real kernel data for
approximation replay). The patterns encode the structural properties the
paper's Tables II/III characterise:

================  =====================================================
pattern           property it realises
================  =====================================================
partitioned/      streaming with high immediate row locality
paired stream     (low thrashing; paired variant adds the Fig. 3
                  temporal skew that DMS merges -> activation
                  sensitivity)
row revisit       a warp returns to each DRAM row after a configurable
                  number of ops -> activation sensitivity without
                  inter-warp skew
column sweep      large-stride walks (matrix columns): single-line row
                  visits -> high thrashing, RBL(1)/RBL(2) mass
irregular lines   pseudo-random chunk visits (ray tracing, triangle
                  intersection): high thrashing, delay-insensitive
================  =====================================================

All generators emit 128-byte line-granularity accesses (post-coalescing,
post-L1; see DESIGN.md §5) and tag loads with the programmer's
approximable annotation taken from the array's :class:`ArraySpec`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.gpu.warp import Access, WarpOp
from repro.workloads.layout import AddressSpace

WarpStream = list[WarpOp]


def line_op(
    space: AddressSpace,
    name: str,
    elem_lo: int,
    elem_hi: int,
    *,
    compute: float,
    instructions: int = 16,
    write: bool = False,
) -> WarpOp:
    """One op accessing the lines covering elements [elem_lo, elem_hi)."""
    approx = space.spec(name).approximable
    lines = space.lines_of_range(name, elem_lo, elem_hi)
    accesses = tuple(
        Access(
            addr=line,
            is_write=write,
            approximable=approx and not write,
            tag=(name, elem_lo, elem_hi),
        )
        for line in lines
    )
    return WarpOp(
        compute_cycles=compute, instructions=instructions, accesses=accesses
    )


def idle_op(cycles: float) -> WarpOp:
    """Pure-compute op used to skew a warp's start (Fig. 3's offset)."""
    return WarpOp(compute_cycles=cycles, instructions=1)


def multi_line_op(
    space: AddressSpace,
    parts: list[tuple[str, int, int, bool]],
    *,
    compute: float,
    instructions: int = 16,
) -> WarpOp:
    """One op accessing several (name, elem_lo, elem_hi, write) ranges."""
    accesses: list[Access] = []
    for name, lo, hi, write in parts:
        approx = space.spec(name).approximable
        for line in space.lines_of_range(name, lo, hi):
            accesses.append(
                Access(
                    addr=line,
                    is_write=write,
                    approximable=approx and not write,
                    tag=(name, lo, hi),
                )
            )
    return WarpOp(
        compute_cycles=compute,
        instructions=instructions,
        accesses=tuple(accesses),
    )


# ----------------------------------------------------------------------
# Streaming patterns
# ----------------------------------------------------------------------
def partitioned_stream(
    space: AddressSpace,
    name: str,
    n_elems: int,
    *,
    n_warps: int,
    elems_per_op: int,
    compute: float,
    instructions: int = 16,
    write: bool = False,
    out_name: str | None = None,
    out_elems_per_op: int = 0,
) -> list[WarpStream]:
    """Each warp streams a contiguous slice of the array.

    Optionally writes ``out_elems_per_op`` elements of ``out_name`` per op
    (the usual load-compute-store kernel shape).
    """
    if n_warps <= 0:
        raise WorkloadError("n_warps must be positive")
    streams: list[WarpStream] = []
    per_warp = n_elems // n_warps
    for w in range(n_warps):
        lo = w * per_warp
        hi = lo + per_warp
        ops: WarpStream = []
        out_pos = (out_elems_per_op * lo // max(elems_per_op, 1)
                   if out_name else 0)
        for start in range(lo, hi, elems_per_op):
            stop = min(start + elems_per_op, hi)
            if out_name and out_elems_per_op:
                ops.append(
                    multi_line_op(
                        space,
                        [
                            (name, start, stop, write),
                            (out_name, out_pos,
                             out_pos + out_elems_per_op, True),
                        ],
                        compute=compute,
                        instructions=instructions,
                    )
                )
                out_pos += out_elems_per_op
            else:
                ops.append(
                    line_op(
                        space, name, start, stop,
                        compute=compute, instructions=instructions,
                        write=write,
                    )
                )
        streams.append(ops)
    return streams


def paired_stream(
    space: AddressSpace,
    name: str,
    n_elems: int,
    *,
    n_pairs: int,
    elems_per_op: int,
    compute: float,
    skew_cycles: float,
    instructions: int = 16,
) -> list[WarpStream]:
    """Warp pairs share a slice; the partner starts ``skew_cycles`` later.

    This is exactly the Fig. 3 situation: the partner's requests to each
    row arrive after the leader's, so the baseline reopens every row while
    a sufficient DMS delay serves both waves with one activation.
    """
    streams: list[WarpStream] = []
    per_pair = n_elems // n_pairs
    for p in range(n_pairs):
        lo = p * per_pair
        hi = lo + per_pair
        lead: WarpStream = []
        trail: WarpStream = [idle_op(skew_cycles)]
        for start in range(lo, hi, 2 * elems_per_op):
            mid = min(start + elems_per_op, hi)
            stop = min(start + 2 * elems_per_op, hi)
            lead.append(
                line_op(space, name, start, mid,
                        compute=compute, instructions=instructions)
            )
            if stop > mid:
                trail.append(
                    line_op(space, name, mid, stop,
                            compute=compute, instructions=instructions)
                )
        streams.append(lead)
        streams.append(trail)
    return streams


def row_revisit_stream(
    space: AddressSpace,
    name: str,
    n_elems: int,
    *,
    n_warps: int,
    elems_per_visit: int,
    revisit_stride_ops: int,
    compute: float,
    instructions: int = 16,
) -> list[WarpStream]:
    """Warps walk chunks, returning to each region after N other ops.

    The second visit reads the *following* elements of the same DRAM row,
    so it misses L2 but would row-hit if the row were still open — the
    single-warp analogue of activation sensitivity.
    """
    streams: list[WarpStream] = []
    per_warp = n_elems // n_warps
    for w in range(n_warps):
        base = w * per_warp
        visits: list[tuple[int, int]] = []
        for start in range(base, base + per_warp, 2 * elems_per_visit):
            visits.append((start, min(start + elems_per_visit,
                                      base + per_warp)))
        ops: WarpStream = []
        pending: list[tuple[int, int]] = []
        for i, (lo, hi) in enumerate(visits):
            ops.append(
                line_op(space, name, lo, hi,
                        compute=compute, instructions=instructions)
            )
            pending.append((hi, min(hi + elems_per_visit,
                                    base + per_warp)))
            if len(pending) >= revisit_stride_ops:
                rlo, rhi = pending.pop(0)
                if rhi > rlo:
                    ops.append(
                        line_op(space, name, rlo, rhi,
                                compute=compute, instructions=instructions)
                    )
        for rlo, rhi in pending:
            if rhi > rlo:
                ops.append(
                    line_op(space, name, rlo, rhi,
                            compute=compute, instructions=instructions)
                )
        streams.append(ops)
    return streams


# ----------------------------------------------------------------------
# Large-stride and irregular patterns
# ----------------------------------------------------------------------
def column_sweep(
    space: AddressSpace,
    name: str,
    n_rows: int,
    n_cols: int,
    *,
    n_warps: int,
    cols_per_warp: int,
    rows_per_op: int,
    compute: float,
    instructions: int = 16,
    row_step: int = 1,
    col_step: int = 1,
) -> list[WarpStream]:
    """Column-major walks over a row-major matrix (MVT/ATAX/BICG shape).

    Consecutive ops stride by a full matrix row, so nearly every access
    opens a different DRAM row: the canonical row-thrashing pattern.
    ``col_step`` spaces the walked columns (use the number of elements
    per 128-byte line to visit a distinct line on every access).
    """
    streams: list[WarpStream] = []
    for w in range(n_warps):
        ops: WarpStream = []
        first_col = (w * cols_per_warp * col_step) % max(n_cols, 1)
        for c in range(first_col,
                       first_col + cols_per_warp * col_step, col_step):
            col = c % n_cols
            for r0 in range(0, n_rows, rows_per_op * row_step):
                parts = []
                for k in range(rows_per_op):
                    r = r0 + k * row_step
                    if r >= n_rows:
                        break
                    idx = r * n_cols + col
                    parts.append((name, idx, idx + 1, False))
                if parts:
                    ops.append(
                        multi_line_op(space, parts, compute=compute,
                                      instructions=instructions)
                    )
        streams.append(ops)
    return streams


def irregular_lines(
    space: AddressSpace,
    name: str,
    n_elems: int,
    *,
    n_warps: int,
    ops_per_warp: int,
    compute: float,
    seed: int,
    lines_per_op: int = 1,
    write_fraction: float = 0.0,
    instructions: int = 16,
) -> list[WarpStream]:
    """Pseudo-random line visits (ray tracing / intersection shapes).

    Rows are visited once or twice in no particular order, so delaying
    cannot merge them: the delay-insensitive, high-thrashing corner.
    ``write_fraction`` of ops also store to their line's row — giving the
    mixed read/write rows that block AMS for Group-3 applications.
    """
    rng = np.random.default_rng(seed)
    epl = space.elements_per_line(name)
    n_lines = max(n_elems // epl, 1)
    streams: list[WarpStream] = []
    for _ in range(n_warps):
        picks = rng.integers(0, n_lines, size=ops_per_warp * lines_per_op)
        writes = rng.random(ops_per_warp) < write_fraction
        ops: WarpStream = []
        for i in range(ops_per_warp):
            parts = []
            for j in range(lines_per_op):
                line = int(picks[i * lines_per_op + j])
                lo = line * epl
                parts.append((name, lo, lo + 1, False))
            if writes[i]:
                lo = int(picks[i * lines_per_op]) * epl
                parts.append((name, lo, lo + 1, True))
            ops.append(
                multi_line_op(space, parts, compute=compute,
                              instructions=instructions)
            )
        streams.append(ops)
    return streams


def dram_row_groups(
    space: AddressSpace, name: str, mapping
) -> list[list[int]]:
    """The array's line addresses grouped by DRAM (channel, bank, row).

    Groups are ordered by first appearance in the address walk and lines
    are ascending within a group, so ``groups[i]`` is one DRAM row's worth
    (up to 16 lines) of this array.
    """
    spec = space.spec(name)
    first_line = spec.base - spec.base % space.line_bytes
    grouped: dict[tuple[int, int, int], list[int]] = {}
    for addr in range(first_line, spec.end, space.line_bytes):
        d = mapping.decode(addr)
        grouped.setdefault((d.channel, d.bank, d.row), []).append(addr)
    return list(grouped.values())


def row_visit_streams(
    space: AddressSpace,
    name: str,
    mapping,
    *,
    n_warps: int,
    lines_per_visit: int,
    visits_per_row: int = 1,
    lines_per_op: int | None = None,
    skew_cycles: float | tuple[float, float] = 0.0,
    compute: float,
    instructions: int = 16,
    shuffle_seed: int | None = None,
    row_fraction: float = 1.0,
    row_range: tuple[float, float] | None = None,
    line_offset: int = 0,
    repeat_visits: bool = False,
    write: bool = False,
) -> list[WarpStream]:
    """Precise row-locality control: visit each DRAM row in fixed doses.

    Every DRAM row covered by the array is visited ``visits_per_row``
    times with ``lines_per_visit`` distinct lines per visit (so the
    baseline scheduler sees activations of RBL ``lines_per_visit``).
    With ``visits_per_row > 1`` warps work in pairs: the lead warp
    performs the first visits and its partner — starting ``skew_cycles``
    later — the second, recreating the paper's Fig. 3: a sufficient DMS
    delay merges both visits into a single activation.

    ``row_fraction`` limits coverage to a prefix of the rows;
    ``row_range`` selects a (lo, hi) fraction window of them (use
    disjoint windows to keep two patterns out of each other's rows);
    ``shuffle_seed`` randomises row order (irregular workloads).

    ``repeat_visits=True`` makes every visit re-read the *same* lines
    (data reuse whose refetches miss L2 once the working set exceeds it):
    this is how an application can have high activation sensitivity while
    every activation still serves >8 requests (3MM's Fig. 6(b) shape).

    ``lines_per_op`` splits each visit into consecutive ops of that many
    lines. This matters for delay tolerance: only the *first* op's
    request must age through a DMS gate — the follow-up ops arrive after
    the row has opened and issue as row hits, so a visit occupies queue
    slots for far less than X cycles. Real streaming kernels behave this
    way (a warp issues loads to a row across many instructions), which is
    precisely why the paper's latency-tolerant applications survive
    1024+-cycle delays.
    """
    if visits_per_row > 1 and n_warps % 2:
        raise WorkloadError("paired visits need an even warp count")
    groups = dram_row_groups(space, name, mapping)
    if row_range is not None:
        lo = int(len(groups) * row_range[0])
        hi = max(lo + 1, int(len(groups) * row_range[1]))
        groups = groups[lo:hi]
    if shuffle_seed is not None:
        rng = np.random.default_rng(shuffle_seed)
        rng.shuffle(groups)
    groups = groups[: max(1, int(len(groups) * row_fraction))]
    if line_offset:
        groups = [g[line_offset:] for g in groups]
        groups = [g for g in groups if g]
    approx = space.spec(name).approximable

    chunk = lines_per_op or lines_per_visit

    def visit_ops(lines: list[int]) -> list[WarpOp]:
        ops = []
        for i in range(0, len(lines), chunk):
            accesses = tuple(
                Access(
                    addr=line,
                    is_write=write,
                    approximable=approx and not write,
                    tag=(name, line),
                )
                for line in lines[i:i + chunk]
            )
            ops.append(
                WarpOp(
                    compute_cycles=compute,
                    instructions=instructions,
                    accesses=accesses,
                )
            )
        return ops

    streams: list[WarpStream] = []
    if visits_per_row <= 1:
        for w in range(n_warps):
            ops: WarpStream = []
            for g in range(w, len(groups), n_warps):
                lines = groups[g][:lines_per_visit]
                if lines:
                    ops.extend(visit_ops(lines))
            streams.append(ops)
        return streams

    n_pairs = n_warps // 2
    for p in range(n_pairs):
        # A (lo, hi) skew spreads revisit distances across pairs, so
        # activation reduction grows gradually with the DMS delay (the
        # paper's Fig. 4(a) shape) instead of switching on at one knee.
        if isinstance(skew_cycles, tuple):
            lo, hi = skew_cycles
            skew = lo + (hi - lo) * (p / max(n_pairs - 1, 1))
        else:
            skew = skew_cycles
        lead: WarpStream = []
        trail: WarpStream = [idle_op(skew)] if skew else []
        for g in range(p, len(groups), n_pairs):
            lines = groups[g]
            lead_lines = lines[:lines_per_visit]
            if lead_lines:
                lead.extend(visit_ops(lead_lines))
            for v in range(1, visits_per_row):
                if repeat_visits:
                    part = lines[:lines_per_visit]
                else:
                    lo = v * lines_per_visit
                    part = lines[lo:lo + lines_per_visit]
                if part:
                    trail.extend(visit_ops(part))
        streams.append(lead)
        streams.append(trail)
    return streams


def interleave(*stream_groups: list[WarpStream]) -> list[WarpStream]:
    """Merge several pattern outputs into one warp-stream list,
    round-robin so different patterns land on different SMs."""
    merged: list[WarpStream] = []
    iters = [list(g) for g in stream_groups]
    while any(iters):
        for g in iters:
            if g:
                merged.append(g.pop(0))
    return merged
