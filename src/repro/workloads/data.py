"""Input-data generators with controlled spatial smoothness.

The paper's value predictor approximates a dropped line with the nearest
resident L2 line, so an application's error tolerance is governed by how
predictable its data is from neighbouring addresses (plus how much the
kernel amplifies input perturbations). These generators give each
workload the Table II error-tolerance level:

* :func:`smooth_field` — spatially correlated, strictly positive data:
  neighbour prediction is accurate and reductions do not cancel
  (High tolerance).
* :func:`rough_field` — zero-mean white noise: neighbour prediction is
  uninformative and sums suffer cancellation (Low tolerance).
* :func:`mixed_field` — a blend (Medium tolerance).
"""

from __future__ import annotations

import numpy as np


def smooth_field(
    rng: np.random.Generator,
    shape: tuple[int, ...] | int,
    *,
    low: float = 1.0,
    high: float = 2.0,
    waves: int = 3,
) -> np.ndarray:
    """Positive, slowly varying data (sums of long-wavelength sinusoids)."""
    if isinstance(shape, int):
        shape = (shape,)
    n = int(np.prod(shape))
    t = np.linspace(0.0, 1.0, n, dtype=np.float64)
    field = np.zeros(n)
    for _ in range(waves):
        freq = rng.uniform(0.5, 4.0)
        phase = rng.uniform(0, 2 * np.pi)
        field += rng.uniform(0.3, 1.0) * np.sin(2 * np.pi * freq * t + phase)
    field -= field.min()
    span = field.max() - field.min() or 1.0
    field = low + (high - low) * field / span
    return field.reshape(shape).astype(np.float32)


def rough_field(
    rng: np.random.Generator,
    shape: tuple[int, ...] | int,
    *,
    scale: float = 1.0,
) -> np.ndarray:
    """Zero-mean white noise: hostile to nearest-line prediction."""
    if isinstance(shape, int):
        shape = (shape,)
    return (scale * rng.standard_normal(shape)).astype(np.float32)


def mixed_field(
    rng: np.random.Generator,
    shape: tuple[int, ...] | int,
    *,
    noise: float = 0.25,
) -> np.ndarray:
    """Smooth base plus a noise component (Medium tolerance)."""
    base = smooth_field(rng, shape)
    return (base * (1.0 + noise * rng.standard_normal(base.shape))).astype(
        np.float32
    )


def offset_noise(
    rng: np.random.Generator,
    shape: tuple[int, ...] | int,
    *,
    offset: float,
    scale: float = 1.0,
) -> np.ndarray:
    """White noise around a positive offset.

    The offset directly dials the error-tolerance class under the
    nearest-line VP: offset 0 leaves reductions near zero (huge relative
    errors, Low tolerance), ~0.5 gives Medium, >=1 gives High.
    """
    if isinstance(shape, int):
        shape = (shape,)
    return (offset + scale * rng.standard_normal(shape)).astype(np.float32)


def smooth_image(
    rng: np.random.Generator, height: int, width: int, *, levels: float = 255.0
) -> np.ndarray:
    """A synthetic grayscale photograph: smooth gradients + soft blobs."""
    y = np.linspace(0, 1, height)[:, None]
    x = np.linspace(0, 1, width)[None, :]
    img = 0.4 + 0.3 * np.sin(2 * np.pi * (x + 0.5 * y))
    for _ in range(6):
        cy, cx = rng.uniform(0, 1, 2)
        r = rng.uniform(0.05, 0.25)
        img += rng.uniform(-0.3, 0.5) * np.exp(
            -((y - cy) ** 2 + (x - cx) ** 2) / (2 * r * r)
        )
    img -= img.min()
    img /= img.max() or 1.0
    return (levels * img).astype(np.float32)
