"""Miss-status holding registers (MSHRs) for the L2 slices.

An MSHR tracks one outstanding line fill and the set of consumers waiting
for it. Requests to a line that already has an MSHR merge instead of
generating a second DRAM request (Table I: "inter-warp merging enabled").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


@dataclass(slots=True)
class MSHREntry:
    """One outstanding fill and its waiters (opaque consumer tokens)."""

    line_addr: int
    waiters: list[Any] = field(default_factory=list)


class MSHRFile:
    """A fixed-capacity file of MSHR entries, keyed by line address."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: dict[int, MSHREntry] = {}
        self.peak_occupancy = 0
        self.merges = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no new line miss can be tracked."""
        return len(self._entries) >= self.capacity

    def lookup(self, line_addr: int) -> MSHREntry | None:
        """The entry for ``line_addr``, if a fill is outstanding."""
        return self._entries.get(line_addr)

    def allocate(self, line_addr: int, waiter: Any) -> MSHREntry:
        """Start tracking a new outstanding fill.

        Raises :class:`SimulationError` if the file is full or the line
        already has an entry (callers must merge via :meth:`merge`).
        """
        if line_addr in self._entries:
            raise SimulationError(
                f"MSHR already allocated for line {line_addr:#x}"
            )
        if self.full:
            raise SimulationError("MSHR file is full")
        entry = MSHREntry(line_addr=line_addr, waiters=[waiter])
        self._entries[line_addr] = entry
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def merge(self, line_addr: int, waiter: Any) -> MSHREntry:
        """Attach ``waiter`` to the outstanding fill for ``line_addr``."""
        entry = self._entries.get(line_addr)
        if entry is None:
            raise SimulationError(
                f"no outstanding fill for line {line_addr:#x}"
            )
        entry.waiters.append(waiter)
        self.merges += 1
        return entry

    def complete(self, line_addr: int) -> list[Any]:
        """Retire the fill for ``line_addr`` and return its waiters."""
        entry = self._entries.pop(line_addr, None)
        if entry is None:
            raise SimulationError(
                f"completing a fill with no MSHR: line {line_addr:#x}"
            )
        return entry.waiters
