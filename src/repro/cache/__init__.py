"""GPU L2 cache slices and miss-status holding registers."""

from repro.cache.l2cache import (
    DIRTY_FILL,
    L2AccessResult,
    L2Cache,
    L2Outcome,
    LineState,
)
from repro.cache.mshr import MSHREntry, MSHRFile

__all__ = [
    "DIRTY_FILL",
    "L2AccessResult",
    "L2Cache",
    "L2Outcome",
    "LineState",
    "MSHREntry",
    "MSHRFile",
]
