"""Set-associative write-back L2 cache slice (one per memory partition).

Geometry follows Table I: 128 KB, 8-way, 128-byte lines per memory
channel. Policy choices (documented in DESIGN.md §5):

* write-back, write-allocate;
* a *fully written* line allocates without fetching from DRAM (GPU
  coalesced stores write whole 128-byte sectors), so streaming stores do
  not generate read traffic;
* LRU replacement;
* misses to a line with an outstanding fill merge in the MSHR file.

The cache is indexed by *line address* (byte address // line size). The
set index uses the low bits of the line address **after removing the
channel interleaving**, supplied by the caller as ``local_line_id`` — but
for simplicity and because each slice only ever sees its own channel's
addresses, we hash the global line address directly; the distribution
across sets is equivalent.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.cache.mshr import MSHRFile
from repro.config.gpu import L2Config


class _DirtyFill:
    """Sentinel waiter marking that a pending fill must install dirty
    (a store merged into the outstanding read)."""

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<DIRTY_FILL>"


#: Pass as ``waiter`` for a partial-store miss: on fill, the line installs
#: dirty and the sentinel is filtered out of the returned waiter list.
DIRTY_FILL = _DirtyFill()


class L2Outcome(enum.Enum):
    """Result of an L2 access."""

    HIT = "hit"
    MISS = "miss"  # new fill required -> caller sends a DRAM read
    MISS_MERGED = "merged"  # fill already outstanding -> wait
    MISS_NO_FETCH = "no_fetch"  # full-line store allocate, no DRAM read
    STALL = "stall"  # MSHR file full -> caller must retry


@dataclass(slots=True)
class LineState:
    """Metadata of a resident line."""

    line_addr: int
    dirty: bool = False


@dataclass(slots=True)
class L2AccessResult:
    """Outcome of :meth:`L2Cache.access` plus any side effects."""

    outcome: L2Outcome
    #: Line address of a dirty eviction (a DRAM write-back), if any.
    writeback_line: Optional[int] = None


class L2Cache:
    """One L2 slice."""

    def __init__(self, config: L2Config) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self.line_bytes = config.line_bytes
        # Per-set LRU: OrderedDict maps line_addr -> LineState,
        # most-recently-used at the end.
        self._sets: list[OrderedDict[int, LineState]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.mshrs = MSHRFile(config.mshr_entries)
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.fills = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_of(self, addr: int) -> int:
        """Line address (byte address with the offset bits dropped)."""
        return addr // self.line_bytes

    def set_of(self, line_addr: int) -> int:
        """Set index of a line address."""
        return line_addr % self.num_sets

    # ------------------------------------------------------------------
    # Main access path
    # ------------------------------------------------------------------
    def access(
        self,
        addr: int,
        *,
        is_write: bool,
        full_line: bool = False,
        waiter: Any = None,
    ) -> L2AccessResult:
        """Perform one access; returns the outcome and any write-back.

        ``waiter`` is an opaque token recorded in the MSHR on a miss and
        handed back by :meth:`fill`.
        """
        line = self.line_of(addr)
        way = self._sets[self.set_of(line)]
        state = way.get(line)
        if state is not None:
            way.move_to_end(line)
            if is_write:
                state.dirty = True
            self.hits += 1
            return L2AccessResult(L2Outcome.HIT)

        self.misses += 1
        if self.mshrs.lookup(line) is not None:
            self.mshrs.merge(line, waiter)
            return L2AccessResult(L2Outcome.MISS_MERGED)

        if is_write and full_line:
            # Allocate directly; no fetch needed for a fully written line.
            writeback = self._insert(line, dirty=True)
            return L2AccessResult(L2Outcome.MISS_NO_FETCH, writeback)

        if self.mshrs.full:
            return L2AccessResult(L2Outcome.STALL)
        self.mshrs.allocate(line, waiter)
        return L2AccessResult(L2Outcome.MISS)

    def fill(
        self, addr: int, *, mark_dirty: bool = False
    ) -> tuple[list[Any], Optional[int]]:
        """Complete an outstanding fill.

        Returns ``(waiters, writeback_line)`` where ``writeback_line`` is
        the line address of a dirty victim to send to DRAM, if any. A
        :data:`DIRTY_FILL` sentinel among the waiters forces a dirty
        install and is filtered from the returned list.
        """
        line = self.line_of(addr)
        waiters = self.mshrs.complete(line)
        if any(w is DIRTY_FILL for w in waiters):
            mark_dirty = True
            waiters = [w for w in waiters if w is not DIRTY_FILL]
        writeback = self._insert(line, dirty=mark_dirty)
        self.fills += 1
        return waiters, writeback

    def cancel_fill(self, addr: int) -> list[Any]:
        """Retire an outstanding fill *without* installing the line.

        Used for AMS-dropped requests: the paper's VP answers the waiting
        cores directly and only DRAM-served data ever fills the L2.
        """
        line = self.line_of(addr)
        waiters = self.mshrs.complete(line)
        return [w for w in waiters if w is not DIRTY_FILL]

    def _insert(self, line: int, *, dirty: bool) -> Optional[int]:
        way = self._sets[self.set_of(line)]
        writeback = None
        if len(way) >= self.assoc:
            victim_addr, victim = way.popitem(last=False)
            if victim.dirty:
                self.writebacks += 1
                writeback = victim_addr
        way[line] = LineState(line_addr=line, dirty=dirty)
        return writeback

    # ------------------------------------------------------------------
    # Queries used by the value-prediction unit
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is resident."""
        line = self.line_of(addr)
        return line in self._sets[self.set_of(line)]

    def resident_lines(self) -> Iterable[int]:
        """All resident line addresses (test/diagnostic helper)."""
        for way in self._sets:
            yield from way.keys()

    def find_nearest_resident(
        self, addr: int, radius_sets: int
    ) -> Optional[int]:
        """Nearest-address resident line within ``radius_sets`` of home.

        Implements the paper's VP search (Section IV-D): look in the home
        set and ``radius_sets`` sets on each side, exploiting the existing
        associative search within each set, and return the line address
        with the smallest absolute address distance to ``addr``'s line.
        Returns ``None`` when no candidate is resident.
        """
        target = self.line_of(addr)
        home = self.set_of(target)
        best: Optional[int] = None
        best_dist = float("inf")
        for delta in range(-radius_sets, radius_sets + 1):
            way = self._sets[(home + delta) % self.num_sets]
            for line in way:
                dist = abs(line - target)
                if dist < best_dist:
                    best, best_dist = line, dist
        return best

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of resident lines across all sets."""
        return sum(len(way) for way in self._sets)
