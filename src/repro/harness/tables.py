"""Fixed-width text tables for experiment output."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                      for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's normalized-metric aggregate)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
