"""Fairness and slowdown metrics for multi-tenant runs.

Pure math, kept free of simulator imports so the property tests
(`tests/test_tenants.py`) can exercise it exhaustively with Hypothesis.
"""

from __future__ import annotations

from typing import Sequence


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Bounded in ``[1/n, 1]`` for non-negative, not-all-zero inputs and
    invariant under permutation and positive scaling; 1.0 means every
    tenant got an identical share. Degenerate inputs (empty, or all
    zero) return 1.0 — nothing was shared, so nothing was unfair.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    if any(v < 0.0 for v in xs):
        raise ValueError("jain_index is defined for non-negative values")
    total = sum(xs)
    square_sum = sum(v * v for v in xs)
    if square_sum <= 0.0:
        return 1.0
    return (total * total) / (len(xs) * square_sum)


def slowdown(shared_cycles: float, solo_cycles: float) -> float:
    """A tenant's slowdown: shared-run finish time over its solo time.

    1.0 means the tenant ran as if alone; values above 1.0 quantify the
    interference it suffered. A non-positive solo baseline (a tenant
    that did nothing) reports 1.0 rather than dividing by zero.
    """
    if solo_cycles <= 0.0:
        return 1.0
    return shared_cycles / solo_cycles
