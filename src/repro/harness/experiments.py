"""One entry point per table/figure of the paper's evaluation.

Every function returns an :class:`ExperimentResult` whose ``text`` is a
printable table matching the figure's rows/series, and whose ``data``
holds the raw numbers for the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.config.gpu import GPUConfig, L2Config
from repro.dram.energy import project_memory_system_energy
from repro.config.energy import hbm1_energy, hbm2_energy
from repro.harness.runner import Runner
from repro.harness.schemes import (
    ams_only,
    dms_only,
    dms_plus_ams,
    evaluation_schemes,
)
from repro.harness.tables import format_table, geomean
from repro.workloads.characteristics import GROUPS, TABLE_II

#: Delay sweep of Figs. 4/5 (memory cycles).
DELAY_SWEEP = (64, 128, 256, 512, 1024, 2048)
#: Pending-queue sizes of Figs. 2/13.
QUEUE_SIZES = (16, 32, 64, 128, 192, 256)

ALL_APPS = tuple(sorted(TABLE_II))
#: Error-tolerant applications (groups 1-3): the Fig. 12 population.
TOLERANT_APPS = GROUPS[1] + GROUPS[2] + GROUPS[3]


@dataclass
class ExperimentResult:
    """Formatted text plus raw data for one experiment."""

    experiment: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _queue_config(base: Optional[GPUConfig], size: int) -> GPUConfig:
    import dataclasses

    cfg = base or GPUConfig()
    return dataclasses.replace(cfg, pending_queue_size=size)


def _sub_runner(runner: Runner, config: GPUConfig) -> Runner:
    """A runner with a different GPU config inheriting the parent's
    parallelism, cache, and fault-tolerance layers (content keys
    disambiguate configs). ``failures`` and ``metrics`` are shared *by
    reference* so quarantined cells and retry counters from sub-sweeps
    surface in the parent's manifest (and the CLI's exit code)."""
    return Runner(
        scale=runner.scale,
        seed=runner.seed,
        config=config,
        verbose=runner.verbose,
        jobs=runner.jobs,
        cache=runner.cache,
        retries=runner.retries,
        retry_backoff=runner.retry_backoff,
        cell_timeout=runner.cell_timeout,
        keep_going=runner.keep_going,
        faults=runner.faults,
        metrics=runner.metrics,
        failures=runner.failures,
    )


def _prefetch(
    runner: Runner,
    apps: Sequence[str],
    schemes: dict,
    *,
    measure_error: bool = False,
) -> None:
    """Fill the runner's memo for a sweep using the parallel path.

    The figure functions below iterate cells one at a time (their table
    layout needs per-cell access anyway); with ``jobs > 1`` this
    populates every cell concurrently first, turning those loops into
    memo hits. With ``jobs == 1`` it is a no-op — the serial loops
    already simulate on demand.
    """
    if runner.jobs > 1:
        runner.run_matrix(apps, schemes, measure_error=measure_error)


def _delay_sweep_schemes() -> dict:
    """Baseline plus the Fig. 4/5/10 DMS delay sweep."""
    schemes = {"Baseline": evaluation_schemes()["Baseline"]}
    for delay in DELAY_SWEEP:
        schemes[f"DMS({delay})"] = dms_only(delay)
    return schemes


# ----------------------------------------------------------------------
# Fig. 2 — pending queue size vs activations (baseline FR-FCFS)
# ----------------------------------------------------------------------
def fig02(
    runner: Runner, apps: Sequence[str] = ALL_APPS
) -> ExperimentResult:
    """Activations vs queue size, normalized to the 128-entry baseline."""
    acts: dict[str, dict[int, int]] = {app: {} for app in apps}
    for size in QUEUE_SIZES:
        sub = _sub_runner(runner, _queue_config(runner.config, size))
        reports = sub.run_matrix(
            apps, {f"q{size}": evaluation_schemes()["Baseline"]}
        )
        for app in apps:
            acts[app][size] = reports[(app, f"q{size}")].activations
    data: dict[str, dict[int, float]] = {}
    for app in apps:
        ref = acts[app][128] or 1
        data[app] = {s: acts[app][s] / ref for s in QUEUE_SIZES}
    rows = [
        [app] + [data[app][s] for s in QUEUE_SIZES] for app in apps
    ]
    rows.append(
        ["GEOMEAN"]
        + [geomean(data[a][s] for a in apps) for s in QUEUE_SIZES]
    )
    text = format_table(
        ["App"] + [f"q={s}" for s in QUEUE_SIZES],
        rows,
        title="Fig. 2: activations vs pending-queue size "
        "(normalized to 128)",
    )
    return ExperimentResult("fig02", text, {"normalized_acts": data})


# ----------------------------------------------------------------------
# Fig. 4 — DMS delay sweep: activations and IPC
# ----------------------------------------------------------------------
def fig04(
    runner: Runner, apps: Sequence[str] = ALL_APPS
) -> ExperimentResult:
    """Normalized activations (a) and IPC (b) for DMS(64..2048)."""
    _prefetch(runner, apps, _delay_sweep_schemes())
    acts: dict[str, dict[int, float]] = {}
    ipcs: dict[str, dict[int, float]] = {}
    for app in apps:
        base = runner.run(app, evaluation_schemes()["Baseline"],
                          label="Baseline")
        acts[app], ipcs[app] = {}, {}
        for delay in DELAY_SWEEP:
            r = runner.run(app, dms_only(delay), label=f"DMS({delay})")
            acts[app][delay] = r.normalized_activations(base)
            ipcs[app][delay] = r.normalized_ipc(base)
    rows_a = [[a] + [acts[a][d] for d in DELAY_SWEEP] for a in apps]
    rows_a.append(
        ["GEOMEAN"] + [geomean(acts[a][d] for a in apps)
                       for d in DELAY_SWEEP]
    )
    rows_b = [[a] + [ipcs[a][d] for d in DELAY_SWEEP] for a in apps]
    rows_b.append(
        ["GEOMEAN"] + [geomean(ipcs[a][d] for a in apps)
                       for d in DELAY_SWEEP]
    )
    headers = ["App"] + [f"DMS({d})" for d in DELAY_SWEEP]
    text = (
        format_table(headers, rows_a,
                     title="Fig. 4(a): normalized activations")
        + "\n\n"
        + format_table(headers, rows_b, title="Fig. 4(b): normalized IPC")
    )
    return ExperimentResult(
        "fig04", text, {"activations": acts, "ipc": ipcs}
    )


# ----------------------------------------------------------------------
# Fig. 5 — RBL distribution of activations vs delay
# ----------------------------------------------------------------------
RBL_BUCKETS = ((1, 1), (2, 2), (3, 4), (5, 8), (9, 10**9))


def _bucket_shares(hist) -> list[float]:
    total = sum(hist.values()) or 1
    shares = []
    for lo, hi in RBL_BUCKETS:
        shares.append(
            sum(c for r, c in hist.items() if lo <= r <= hi) / total
        )
    return shares


def fig05(
    runner: Runner, apps: Sequence[str] = ("GEMM", "newtonraph")
) -> ExperimentResult:
    """Activation-count shares per RBL bucket as the delay grows."""
    _prefetch(runner, apps, _delay_sweep_schemes())
    data: dict[str, dict[int, list[float]]] = {}
    for app in apps:
        data[app] = {}
        base = runner.run(app, evaluation_schemes()["Baseline"],
                          label="Baseline")
        data[app][0] = _bucket_shares(base.rbl_histogram)
        for delay in DELAY_SWEEP:
            r = runner.run(app, dms_only(delay), label=f"DMS({delay})")
            data[app][delay] = _bucket_shares(r.rbl_histogram)
    headers = ["Delay"] + [
        f"RBL({lo})" if lo == hi else f"RBL({lo}-{'inf' if hi > 100 else hi})"
        for lo, hi in RBL_BUCKETS
    ]
    blocks = []
    for app in apps:
        rows = [[str(d)] + shares for d, shares in data[app].items()]
        blocks.append(
            format_table(headers, rows,
                         title=f"Fig. 5: {app} activation RBL shares")
        )
    return ExperimentResult("fig05", "\n\n".join(blocks), {"shares": data})


# ----------------------------------------------------------------------
# Fig. 6 — cumulative activations vs requests sorted by RBL
# ----------------------------------------------------------------------
def fig06(
    runner: Runner, apps: Sequence[str] = ("GEMM", "3MM")
) -> ExperimentResult:
    """CDF: x = fraction of read requests (sorted by their activation's
    RBL), y = fraction of total activations."""
    _prefetch(runner, apps,
              {"Baseline": evaluation_schemes()["Baseline"]})
    curves: dict[str, list[tuple[float, float]]] = {}
    for app in apps:
        base = runner.run(app, evaluation_schemes()["Baseline"],
                          label="Baseline")
        read_only = [
            rec for rec in _all_activations(base) if rec.reads_only
        ]
        total_reqs = sum(rec.rbl for rec in _all_activations(base)) or 1
        total_acts = len(_all_activations(base)) or 1
        by_rbl: dict[int, int] = {}
        for rec in read_only:
            by_rbl[rec.rbl] = by_rbl.get(rec.rbl, 0) + 1
        cum_req = cum_act = 0.0
        points = [(0.0, 0.0)]
        for rbl in sorted(by_rbl):
            count = by_rbl[rbl]
            cum_req += rbl * count / total_reqs
            cum_act += count / total_acts
            points.append((cum_req, cum_act))
        curves[app] = points
    blocks = []
    for app, points in curves.items():
        rows = [[f"{x:.4f}", f"{y:.4f}"] for x, y in points[:12]]
        blocks.append(
            format_table(
                ["req fraction", "act fraction"],
                rows,
                title=(
                    f"Fig. 6 ({app}): cumulative activations vs requests "
                    "(read-only rows, RBL ascending)"
                ),
            )
        )
    return ExperimentResult("fig06", "\n\n".join(blocks), {"curves": curves})


def _all_activations(report):
    return [rec for s in report.channel_stats for rec in s.activation_log]


# ----------------------------------------------------------------------
# Fig. 7 — LPS and SCP case studies
# ----------------------------------------------------------------------
def fig07(runner: Runner) -> ExperimentResult:
    """(a) LPS: DMS cannot reduce activations, AMS can.
    (b) SCP: AMS compensates DMS's IPC loss, enabling a larger delay."""
    result_rows = {}
    lps_cases = {
        "DMS(256)": dms_only(256),
        "DMS(512)": dms_only(512),
        "AMS(8)": ams_only(8),
    }
    scp_cases = {
        "DMS(128)": dms_only(128),
        "DMS(256)": dms_only(256),
        "AMS(8)": ams_only(8),
        "DMS(256)+AMS(8)": dms_plus_ams(256, 8),
    }
    baseline = {"Baseline": evaluation_schemes()["Baseline"]}
    _prefetch(runner, ("LPS",), {**baseline, **lps_cases},
              measure_error=True)
    _prefetch(runner, ("SCP",), {**baseline, **scp_cases},
              measure_error=True)
    blocks = []
    for app, cases in (("LPS", lps_cases), ("SCP", scp_cases)):
        base = runner.run(app, evaluation_schemes()["Baseline"],
                          label="Baseline")
        rows = []
        for label, scheme in cases.items():
            r = runner.run(app, scheme, label=label,
                           measure_error=scheme.ams.mode.value != "off")
            rows.append(
                [
                    label,
                    r.normalized_activations(base),
                    r.normalized_ipc(base),
                    r.coverage,
                    r.application_error if r.application_error is not None
                    else 0.0,
                ]
            )
            result_rows[(app, label)] = rows[-1][1:]
        blocks.append(
            format_table(
                ["Scheme", "norm acts", "norm IPC", "coverage", "app error"],
                rows,
                title=f"Fig. 7: {app} case study",
            )
        )
    return ExperimentResult("fig07", "\n\n".join(blocks),
                            {"rows": result_rows})


# ----------------------------------------------------------------------
# Fig. 10 — IPC vs BWUTIL linearity
# ----------------------------------------------------------------------
def fig10(
    runner: Runner,
    apps: Sequence[str] = ("SCP", "MVT", "CONS", "newtonraph"),
) -> ExperimentResult:
    """Per-app (BWUTIL, IPC) across delays + Pearson correlation."""
    _prefetch(runner, apps, _delay_sweep_schemes())
    data: dict[str, list[tuple[float, float]]] = {}
    corr: dict[str, float] = {}
    for app in apps:
        points = []
        base = runner.run(app, evaluation_schemes()["Baseline"],
                          label="Baseline")
        points.append((base.bwutil, base.ipc))
        for delay in DELAY_SWEEP:
            r = runner.run(app, dms_only(delay), label=f"DMS({delay})")
            points.append((r.bwutil, r.ipc))
        data[app] = points
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        corr[app] = float(np.corrcoef(xs, ys)[0, 1])
    rows = [[app, corr[app]] + [f"{x:.2f}/{y:.2f}" for x, y in data[app]]
            for app in apps]
    text = format_table(
        ["App", "pearson r"] + ["base"] + [f"DMS({d})" for d in DELAY_SWEEP],
        rows,
        title="Fig. 10: BWUTIL/IPC pairs across delays "
        "(expect r close to 1)",
    )
    return ExperimentResult("fig10", text, {"points": data, "corr": corr})


# ----------------------------------------------------------------------
# Fig. 11 — effect of reducing Th_RBL (SCP)
# ----------------------------------------------------------------------
def fig11(runner: Runner, app: str = "SCP") -> ExperimentResult:
    """Normalized activations for AMS(Th) as Th_RBL drops 8 -> 1."""
    _prefetch(
        runner,
        (app,),
        {"Baseline": evaluation_schemes()["Baseline"],
         **{f"AMS({th})": ams_only(th) for th in range(8, 0, -1)}},
    )
    base = runner.run(app, evaluation_schemes()["Baseline"],
                      label="Baseline")
    acts, covs = {}, {}
    for th in range(8, 0, -1):
        r = runner.run(app, ams_only(th), label=f"AMS({th})")
        acts[th] = r.normalized_activations(base)
        covs[th] = r.coverage
    hist = base.rbl_histogram
    total_reqs = sum(r * c for r, c in hist.items()) or 1
    rbl1_request_share = hist.get(1, 0) / total_reqs
    rows = [[f"AMS({th})", acts[th], covs[th]] for th in range(8, 0, -1)]
    text = format_table(
        ["Scheme", "norm acts", "coverage"],
        rows,
        title=(
            f"Fig. 11: {app} activations vs Th_RBL "
            f"(RBL(1) request share {rbl1_request_share:.1%})"
        ),
    )
    return ExperimentResult(
        "fig11",
        text,
        {"acts": acts, "coverage": covs,
         "rbl1_request_share": rbl1_request_share},
    )


# ----------------------------------------------------------------------
# Fig. 12 — main results (groups 1-3)
# ----------------------------------------------------------------------
def fig12(
    runner: Runner, apps: Sequence[str] = TOLERANT_APPS
) -> ExperimentResult:
    """Row energy, IPC, application error, coverage across schemes."""
    schemes = evaluation_schemes()
    results = runner.run_matrix(apps, schemes, measure_error=True)
    labels = [l for l in schemes if l != "Baseline"]
    metrics: dict[str, dict[tuple[str, str], float]] = {
        "row_energy": {},
        "ipc": {},
        "error": {},
        "coverage": {},
    }
    for app in apps:
        base = results[(app, "Baseline")]
        for label in labels:
            r = results[(app, label)]
            metrics["row_energy"][(app, label)] = r.normalized_row_energy(
                base
            )
            metrics["ipc"][(app, label)] = r.normalized_ipc(base)
            metrics["error"][(app, label)] = (
                r.application_error or 0.0
            )
            metrics["coverage"][(app, label)] = r.coverage
    blocks = []
    for metric, agg in (
        ("row_energy", geomean),
        ("ipc", geomean),
        ("error", lambda v: float(np.mean(list(v)))),
        ("coverage", lambda v: float(np.mean(list(v)))),
    ):
        rows = [
            [app] + [metrics[metric][(app, l)] for l in labels]
            for app in apps
        ]
        rows.append(
            ["MEAN"] + [agg(metrics[metric][(a, l)] for a in apps)
                        for l in labels]
        )
        blocks.append(
            format_table(
                ["App"] + labels, rows,
                title=f"Fig. 12: normalized {metric} (groups 1-3)",
            )
        )
    return ExperimentResult("fig12", "\n\n".join(blocks),
                            {"metrics": metrics, "labels": labels})


# ----------------------------------------------------------------------
# HBM projections (Section V, "Effect on Memory Energy")
# ----------------------------------------------------------------------
def hbm_projection(
    runner: Runner, apps: Sequence[str] = TOLERANT_APPS
) -> ExperimentResult:
    """Memory-system energy on HBM1/HBM2 for Dyn-DMS + Dyn-AMS."""
    schemes = evaluation_schemes()
    _prefetch(
        runner, apps,
        {"Baseline": schemes["Baseline"],
         "Dyn-DMS+Dyn-AMS": schemes["Dyn-DMS+Dyn-AMS"]},
    )
    rows = []
    ratios1, ratios2 = [], []
    for app in apps:
        base = runner.run(app, schemes["Baseline"], label="Baseline")
        combo = runner.run(app, schemes["Dyn-DMS+Dyn-AMS"],
                           label="Dyn-DMS+Dyn-AMS")
        h1 = project_memory_system_energy(
            base.row_energy_nj, combo.row_energy_nj, hbm1_energy()
        )
        h2 = project_memory_system_energy(
            base.row_energy_nj, combo.row_energy_nj, hbm2_energy()
        )
        ratios1.append(h1)
        ratios2.append(h2)
        rows.append([app, combo.normalized_row_energy(base), h1, h2])
    rows.append(["GEOMEAN", "", geomean(ratios1), geomean(ratios2)])
    text = format_table(
        ["App", "row energy", "HBM1 system", "HBM2 system"],
        rows,
        title=(
            "HBM memory-system energy (normalized; paper: ~0.78 HBM1, "
            "~0.89 HBM2)"
        ),
    )
    return ExperimentResult(
        "hbm", text, {"hbm1": ratios1, "hbm2": ratios2}
    )


# ----------------------------------------------------------------------
# Fig. 13 — queue size under DMS(2048)
# ----------------------------------------------------------------------
def fig13(
    runner: Runner, apps: Sequence[str] = ALL_APPS
) -> ExperimentResult:
    """Activations vs queue size with DMS(2048), normalized to the
    128-entry baseline (no delay)."""
    base_reports = runner.run_matrix(
        apps, {"Baseline": evaluation_schemes()["Baseline"]}
    )
    acts: dict[str, dict[int, int]] = {app: {} for app in apps}
    for size in QUEUE_SIZES:
        sub = _sub_runner(runner, _queue_config(runner.config, size))
        reports = sub.run_matrix(apps, {f"DMS2048/q{size}": dms_only(2048)})
        for app in apps:
            acts[app][size] = reports[(app, f"DMS2048/q{size}")].activations
    data: dict[str, dict[int, float]] = {}
    for app in apps:
        base = base_reports[(app, "Baseline")]
        data[app] = {
            s: (acts[app][s] / base.activations
                if base.activations else 1.0)
            for s in QUEUE_SIZES
        }
    rows = [[a] + [data[a][s] for s in QUEUE_SIZES] for a in apps]
    rows.append(
        ["GEOMEAN"]
        + [geomean(data[a][s] for a in apps) for s in QUEUE_SIZES]
    )
    text = format_table(
        ["App"] + [f"q={s}" for s in QUEUE_SIZES],
        rows,
        title="Fig. 13: activations under DMS(2048) vs queue size "
        "(normalized to baseline q=128)",
    )
    return ExperimentResult("fig13", text, {"normalized_acts": data})


# ----------------------------------------------------------------------
# Fig. 14 — laplacian output quality
# ----------------------------------------------------------------------
def fig14(runner: Runner) -> ExperimentResult:
    """Exact vs approximate sharpened image under Dyn-DMS + Dyn-AMS."""
    from repro.approx.quality import psnr
    from repro.approx.replay import build_perturbed_inputs
    from repro.workloads.registry import get_workload

    schemes = evaluation_schemes()
    combo = runner.run(
        "laplacian", schemes["Dyn-DMS+Dyn-AMS"],
        label="Dyn-DMS+Dyn-AMS", measure_error=True
    )
    workload = get_workload("laplacian", scale=runner.scale,
                            seed=runner.seed)
    exact = workload.run_exact()
    perturbed = build_perturbed_inputs(
        workload.space, workload.arrays, combo.drops
    )
    approx = workload.run_approx(perturbed)
    quality = psnr(exact, approx)
    text = format_table(
        ["metric", "value"],
        [
            ["application error", combo.application_error or 0.0],
            ["coverage", combo.coverage],
            ["PSNR (dB)", quality],
            ["dropped lines", len(combo.drops)],
        ],
        title="Fig. 14: laplacian output quality "
        "(Dyn-DMS + Dyn-AMS)",
    )
    return ExperimentResult(
        "fig14",
        text,
        {
            "error": combo.application_error,
            "psnr": quality,
            "exact": exact,
            "approx": approx,
        },
    )


# ----------------------------------------------------------------------
# Fig. 15 — delay-only mode for Group-4 applications
# ----------------------------------------------------------------------
def fig15(
    runner: Runner, apps: Sequence[str] = GROUPS[4]
) -> ExperimentResult:
    """Row energy and IPC of Static-/Dyn-DMS on low-error-tolerance apps."""
    schemes = evaluation_schemes(include_ams=False)
    results = runner.run_matrix(apps, schemes)
    labels = ["Static-DMS", "Dyn-DMS"]
    rows = []
    energies = {l: [] for l in labels}
    ipcs = {l: [] for l in labels}
    for app in apps:
        base = results[(app, "Baseline")]
        row = [app]
        for label in labels:
            r = results[(app, label)]
            e = r.normalized_row_energy(base)
            i = r.normalized_ipc(base)
            energies[label].append(e)
            ipcs[label].append(i)
            row += [e, i]
        rows.append(row)
    rows.append(
        ["GEOMEAN"]
        + [
            v
            for label in labels
            for v in (geomean(energies[label]), geomean(ipcs[label]))
        ]
    )
    text = format_table(
        ["App", "S-DMS energy", "S-DMS IPC", "D-DMS energy", "D-DMS IPC"],
        rows,
        title="Fig. 15: delay-only mode, Group-4 applications",
    )
    return ExperimentResult(
        "fig15", text, {"energy": energies, "ipc": ipcs}
    )


# ----------------------------------------------------------------------
# Table II characterization
# ----------------------------------------------------------------------
def table2(
    runner: Runner, apps: Sequence[str] = ALL_APPS
) -> ExperimentResult:
    """Measure and classify every Table II/III feature on our traces."""
    from repro.workloads.characteristics import (
        classify_act_sensitivity,
        classify_delay_tolerance,
        classify_error_tolerance,
        classify_th_rbl_sensitivity,
        classify_thrashing,
    )

    _prefetch(
        runner, apps,
        {**_delay_sweep_schemes(), "AMS(8)": ams_only(8)},
        measure_error=True,
    )
    _prefetch(
        runner, apps,
        {f"AMS({th})": ams_only(th) for th in (4, 2, 1)},
    )
    rows = []
    matches = 0
    total = 0
    measured: dict[str, dict[str, str]] = {}
    for app in apps:
        base = runner.run(app, evaluation_schemes()["Baseline"],
                          label="Baseline")
        hist = base.rbl_histogram
        reqs = sum(r * c for r, c in hist.items()) or 1
        low = sum(r * c for r, c in hist.items() if 1 <= r <= 8)
        thrash_pct = 100 * low / reqs
        mtd = 0
        act_red_2048 = 0.0
        for delay in DELAY_SWEEP:
            r = runner.run(app, dms_only(delay), label=f"DMS({delay})")
            if r.normalized_ipc(base) >= 0.95:
                mtd = delay
            if delay == 2048:
                act_red_2048 = 100 * (1 - r.normalized_activations(base))
        r8 = runner.run(app, ams_only(8), label="AMS(8)",
                        measure_error=True)
        red8 = 100 * (1 - r8.normalized_activations(base))
        best_low = red8
        for th in (4, 2, 1):
            rt = runner.run(app, ams_only(th), label=f"AMS({th})")
            best_low = max(
                best_low, 100 * (1 - rt.normalized_activations(base))
            )
        err_pct = 100 * (r8.application_error or 0.0)
        got = {
            "thrashing": classify_thrashing(thrash_pct),
            "delay_tolerance": classify_delay_tolerance(mtd),
            "act_sensitivity": classify_act_sensitivity(act_red_2048),
            "th_rbl_sensitivity": classify_th_rbl_sensitivity(
                best_low - red8
            ),
            "error_tolerance": classify_error_tolerance(err_pct),
        }
        measured[app] = got
        want = TABLE_II[app]
        wants = {
            "thrashing": want.thrashing,
            "delay_tolerance": want.delay_tolerance,
            "act_sensitivity": want.act_sensitivity,
            "th_rbl_sensitivity": want.th_rbl_sensitivity,
            "error_tolerance": want.error_tolerance,
        }
        for k in got:
            total += 1
            if got[k] == wants[k]:
                matches += 1
        rows.append(
            [
                app,
                f"{got['thrashing']}/{wants['thrashing']}",
                f"{got['delay_tolerance']}/{wants['delay_tolerance']}",
                f"{got['act_sensitivity']}/{wants['act_sensitivity']}",
                f"{got['th_rbl_sensitivity']}/"
                f"{wants['th_rbl_sensitivity']}",
                f"{got['error_tolerance']}/{wants['error_tolerance']}",
            ]
        )
    text = format_table(
        ["App", "Thrash", "DelayTol", "ActSens", "ThSens", "ErrTol"],
        rows,
        title=(
            "Table II characterization (measured/paper) — "
            f"{matches}/{total} features match"
        ),
    )
    return ExperimentResult(
        "table2", text,
        {"measured": measured, "matches": matches, "total": total},
    )


#: Registry used by the CLI and the benchmarks.
EXPERIMENTS = {
    "fig02": fig02,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "hbm": hbm_projection,
    "table2": table2,
}
