"""Command-line entry point: regenerate any table or figure.

Examples::

    repro-harness fig04 --apps SCP,LPS --scale 0.5
    repro-harness fig12
    repro-harness all --scale 0.25
    python -m repro.harness.cli table2
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import EXPERIMENTS
from repro.harness.runner import Runner


def main(argv: list[str] | None = None) -> int:
    """Run one experiment (or ``all``) and print its tables."""
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the paper's tables and figures on the simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper figure/table) or 'all'",
    )
    parser.add_argument(
        "--apps",
        default=None,
        help="comma-separated subset of Table II applications",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (smaller = faster)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload data/trace seed"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )
    args = parser.parse_args(argv)

    runner = Runner(scale=args.scale, seed=args.seed,
                    verbose=not args.quiet)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    for name in names:
        fn = EXPERIMENTS[name]
        if args.apps:
            apps = tuple(a.strip() for a in args.apps.split(","))
            try:
                result = fn(runner, apps)
            except TypeError:
                result = fn(runner)  # experiment with fixed app set
        else:
            result = fn(runner)
        print(result.text)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
