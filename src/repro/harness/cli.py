"""Command-line entry point: regenerate any table or figure.

Examples::

    repro-harness fig04 --apps SCP,LPS --scale 0.5
    repro-harness fig12 --jobs 4
    repro-harness all --scale 0.25 --no-cache
    repro-harness cache info
    repro-harness cache clear
    repro-harness trace Dyn-DMS SCP --scale 0.5 --out-dir traces
    repro-harness table --device hbm --schemes frfcfs,fcfs,frfcfs-cap
    repro-harness matrix --devices gddr5,hbm --apps SCP
    repro-harness report ingest
    repro-harness report render --out report.md --html report.html
    repro-harness report diff --baseline snapshot.json
    repro-harness serve --port 8732 --workers 2
    repro-harness submit SCP --scheme dyn-dms --telemetry --wait
    repro-harness status j0123456789ab --json
    repro-harness watch j0123456789ab
    python -m repro.harness.cli table2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.dram.devices import device_names, get_device
from repro.errors import CellFailedError, ConfigError
from repro.harness.cache import ResultCache
from repro.harness.experiments import EXPERIMENTS
from repro.harness.faults import FaultPlan, failure_manifest
from repro.harness.runner import Runner
from repro.harness.schemes import (
    WINDOW_CYCLES,
    evaluation_schemes,
    scheme_def,
    scheme_ids,
)

#: Exit codes of the main experiment command (documented in README):
#: every requested cell produced a report.
EXIT_OK = 0
#: ``--keep-going`` salvaged a partial run; the manifest lists the rest.
EXIT_PARTIAL = 3
#: a cell failed all its attempts and ``--keep-going`` was off.
EXIT_FAILED = 4
#: ``report diff`` found a statistically significant regression.
EXIT_REGRESSION = 5


def _cache_main(argv: list[str]) -> int:
    """The ``repro-harness cache <action>`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-harness cache",
        description="Manage the persistent simulation result cache.",
    )
    parser.add_argument(
        "action",
        choices=["clear", "info"],
        help="clear: delete all cached results; info: show size and count",
    )
    parser.add_argument(
        "--dir",
        default=None,
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the info snapshot as machine-readable JSON",
    )
    args = parser.parse_args(argv)
    cache = ResultCache(args.dir, enabled=True)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
    else:
        # One atomic snapshot: entry count and byte total describe the
        # same listing even while another process mutates the cache.
        # The JSON form rides the same iter_blobs traversal as the
        # warehouse ingest, adding per-workload/per-scheme counts.
        info = cache.info(deep=args.json)
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
        else:
            print(
                f"{info['root']}: {info['entries']} cached result(s), "
                f"{info['size_bytes'] / 1e6:.2f} MB "
                f"(format v{info['format_version']})"
            )
    return 0


def _safe_label(label: str) -> str:
    """Scheme label as a filename fragment."""
    return (
        label.replace("+", "_plus_").replace("(", "").replace(")", "")
        .replace(" ", "_")
    )


def _trace_main(argv: list[str]) -> int:
    """The ``repro-harness trace <scheme> <workload>`` subcommand."""
    schemes = evaluation_schemes()
    parser = argparse.ArgumentParser(
        prog="repro-harness trace",
        description=(
            "Run one (scheme, workload) cell with windowed telemetry and "
            "export a JSONL time series plus a Perfetto-loadable Chrome "
            "trace-event JSON."
        ),
    )
    parser.add_argument(
        "scheme",
        choices=sorted(schemes),
        help="scheduling scheme (paper Fig. 12 legend label)",
    )
    parser.add_argument(
        "workload",
        help="Table II application abbreviation (e.g. SCP) or 'synthetic'",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size multiplier (smaller = faster)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload data/trace seed"
    )
    parser.add_argument(
        "--window", type=int, default=WINDOW_CYCLES,
        help="telemetry window length, memory cycles",
    )
    parser.add_argument(
        "--out-dir", default="traces",
        help="directory receiving the exported files",
    )
    parser.add_argument(
        "--no-chrome", action="store_true",
        help="skip the Chrome trace (JSONL only; much smaller)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the report summary"
    )
    args = parser.parse_args(argv)

    from repro.telemetry.export import system_chrome_trace, write_chrome_trace
    from repro.telemetry.export import write_jsonl

    runner = Runner(
        scale=args.scale, seed=args.seed, verbose=not args.quiet, cache=None
    )
    report, system, hub = runner.run_traced(
        args.workload,
        schemes[args.scheme],
        window_cycles=args.window,
        log_commands=not args.no_chrome,
    )
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{args.workload}_{_safe_label(args.scheme)}"
    jsonl_path = out_dir / f"{stem}.telemetry.jsonl"
    windows = write_jsonl(report.timeline, jsonl_path)
    if not args.quiet:
        print(report.summary())
    print(f"wrote {jsonl_path} ({windows} windows)")
    if not args.no_chrome:
        trace_path = out_dir / f"{stem}.trace.json"
        document = system_chrome_trace(
            system, drops=report.drops, timeline=report.timeline
        )
        n_events = write_chrome_trace(document, trace_path)
        print(
            f"wrote {trace_path} ({n_events} events; open in "
            "https://ui.perfetto.dev)"
        )
    return 0


def _parse_scheme_ids(spec: str | None) -> list[str]:
    """Comma-separated scheme ids -> validated id list (None = all)."""
    if spec is None:
        return scheme_ids()
    ids = [token.strip() for token in spec.split(",") if token.strip()]
    for scheme_id in ids:
        scheme_def(scheme_id)  # raises ConfigError on unknown ids
    return ids


def _scheme_table(
    runner: Runner,
    apps: list[str],
    ids: list[str],
    *,
    device: str | None,
    measure_error: bool,
) -> str:
    """Table-III-style comparison: every scheme vs. the FR-FCFS baseline.

    The ``frfcfs`` baseline is always simulated (it is the normalisation
    reference) even when absent from ``ids``, but only requested schemes
    appear as rows.
    """
    sim_ids = ids if "frfcfs" in ids else ["frfcfs", *ids]
    schemes = {scheme_def(i).label: scheme_def(i).build() for i in sim_ids}
    result = runner.run_matrix(apps, schemes, measure_error=measure_error)
    device_line = "default (config-embedded GDDR5)"
    if device is not None:
        model = get_device(device)
        device_line = f"{device} — {model.description}"
    lines = [
        f"Scheme comparison on device: {device_line}",
        f"(scale={runner.scale}, seed={runner.seed}; "
        "normalised to Baseline=FR-FCFS per app)",
    ]
    header = (
        f"{'app':<12} {'scheme':<24} {'IPC':>8} {'IPC/b':>6} "
        f"{'acts':>9} {'acts/b':>6} {'rowE(uJ)':>9} {'rowE/b':>6} "
        f"{'cov%':>6}"
    )
    for app in apps:
        base = result[(app, "Baseline")]
        lines.append("")
        lines.append(header)
        lines.append("-" * len(header))
        for scheme_id in sim_ids:
            label = scheme_def(scheme_id).label
            report = result[(app, label)]
            err = report.application_error
            cov = 100.0 * report.coverage
            lines.append(
                f"{app:<12} {label:<24} {report.ipc:>8.3f} "
                f"{report.normalized_ipc(base):>6.3f} "
                f"{report.activations:>9d} "
                f"{report.normalized_activations(base):>6.3f} "
                f"{report.row_energy_nj / 1e3:>9.2f} "
                f"{report.normalized_row_energy(base):>6.3f} "
                f"{cov:>6.2f}"
                + (f"  err={err:.4g}" if err is not None else "")
            )
    return "\n".join(lines)


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by the ``table`` and ``matrix`` subcommands."""
    parser.add_argument(
        "--apps", default="SCP",
        help="comma-separated Table II applications (default: SCP)",
    )
    parser.add_argument(
        "--schemes", "--scheme", dest="schemes", default=None,
        metavar="IDS",
        help="comma-separated scheme ids from the catalogue "
        f"({', '.join(scheme_ids())}); default: all",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="workload size multiplier (default 0.25: quick tables)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload data/trace seed"
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="simulate up to N matrix cells in parallel",
    )
    parser.add_argument(
        "--threads", action="store_true",
        help="fan --jobs out over worker threads instead of processes "
        "(no serialization; best for cache-dominated sweeps)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache",
    )
    parser.add_argument(
        "--measure-error", action="store_true",
        help="replay AMS drops through the kernels and report the "
        "application error",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )


def _table_main(argv: list[str]) -> int:
    """The ``repro-harness table`` subcommand: one device, all schemes."""
    parser = argparse.ArgumentParser(
        prog="repro-harness table",
        description=(
            "Compare scheduling schemes (including the fcfs and "
            "frfcfs-cap baselines) on one DRAM device, Table-III style: "
            "IPC, activations, and row energy normalised to FR-FCFS."
        ),
    )
    parser.add_argument(
        "--device", default=None, choices=device_names(),
        help="DRAM device preset (default: config-embedded GDDR5)",
    )
    _add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    try:
        ids = _parse_scheme_ids(args.schemes)
    except ConfigError as exc:
        parser.error(str(exc))
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    runner = Runner(
        scale=args.scale, seed=args.seed, device=args.device,
        verbose=not args.quiet, jobs=args.jobs, threads=args.threads,
        cache=None if args.no_cache else ResultCache(),
    )
    try:
        print(
            _scheme_table(
                runner, apps, ids,
                device=args.device, measure_error=args.measure_error,
            )
        )
    except CellFailedError as exc:
        _emit_failures(runner.failures or exc.failures, None)
        return EXIT_FAILED
    return EXIT_OK


def _matrix_main(argv: list[str]) -> int:
    """The ``repro-harness matrix`` subcommand: device x scheme sweep."""
    parser = argparse.ArgumentParser(
        prog="repro-harness matrix",
        description=(
            "Cross-device sensitivity sweep: the scheme comparison of "
            "'table' repeated on every requested DRAM device preset."
        ),
    )
    parser.add_argument(
        "--devices", default=",".join(device_names()),
        help="comma-separated device presets "
        f"(default: {','.join(device_names())})",
    )
    _add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    try:
        ids = _parse_scheme_ids(args.schemes)
    except ConfigError as exc:
        parser.error(str(exc))
    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    for device in devices:
        if device not in device_names():
            parser.error(
                f"unknown device {device!r}; "
                f"registered: {', '.join(device_names())}"
            )
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    cache = None if args.no_cache else ResultCache()
    exit_code = EXIT_OK
    for device in devices:
        runner = Runner(
            scale=args.scale, seed=args.seed, device=device,
            verbose=not args.quiet, jobs=args.jobs, threads=args.threads,
            cache=cache,
        )
        try:
            print(
                _scheme_table(
                    runner, apps, ids,
                    device=device, measure_error=args.measure_error,
                )
            )
            print()
        except CellFailedError as exc:
            _emit_failures(runner.failures or exc.failures, None)
            exit_code = EXIT_FAILED
    return exit_code


def _pareto_main(argv: list[str]) -> int:
    """The ``repro-harness pareto`` subcommand: reliability sweep.

    Sweeps scheme x device x ECC code with the bit-flip fault injector
    enabled and prints the row-energy x application-error x FIT
    frontier table (plus the carbon-per-GiB-year estimate per cell).
    """
    from repro.dram.ecc import ecc_names
    from repro.harness.pareto import (
        DEFAULT_SWEEP_P_BIT,
        format_pareto_table,
        mark_frontier,
        resolve_scheme_token,
        run_pareto,
    )

    parser = argparse.ArgumentParser(
        prog="repro-harness pareto",
        description=(
            "Reliability Pareto sweep: schemes x DRAM devices x ECC "
            "codes with timing-dependent bit-flip injection; emits the "
            "row-energy x app-error x FIT frontier with carbon "
            "estimates."
        ),
    )
    parser.add_argument(
        "--schemes", default="base,dms2,ams", metavar="TOKENS",
        help="comma-separated scheme tokens: catalogue ids plus "
        "aliases base / dms / ams / dmsN (N x 128-cycle delay); "
        "default base,dms2,ams",
    )
    parser.add_argument(
        "--devices", default="gddr5,lpddr4",
        help="comma-separated device presets "
        f"(registered: {','.join(device_names())}; "
        "default gddr5,lpddr4)",
    )
    parser.add_argument(
        "--ecc", default="none,secded,bch",
        help="comma-separated ECC codes "
        f"(registered: {','.join(ecc_names())}; "
        "default none,secded,bch)",
    )
    parser.add_argument(
        "--apps", default="SCP",
        help="comma-separated Table II applications (default: SCP)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="workload size multiplier (default 0.25: quick sweeps)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload data/trace seed"
    )
    parser.add_argument(
        "--p-bit", type=float, default=DEFAULT_SWEEP_P_BIT,
        help="per-bit flip probability at nominal timings "
        f"(default {DEFAULT_SWEEP_P_BIT:g}; elevated so scaled-down "
        "traces still see flips)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="simulate up to N cells in parallel per (device, ecc) group",
    )
    parser.add_argument(
        "--threads", action="store_true",
        help="fan --jobs out over worker threads instead of processes",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the rows as machine-readable JSON instead of a table",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )
    args = parser.parse_args(argv)
    scheme_tokens = [t for t in args.schemes.split(",") if t.strip()]
    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    ecc_codes = [c.strip() for c in args.ecc.split(",") if c.strip()]
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    try:
        for token in scheme_tokens:
            resolve_scheme_token(token)
        for code in ecc_codes:
            if code not in ecc_names():
                raise ConfigError(
                    f"unknown ECC code {code!r}; "
                    f"registered: {', '.join(ecc_names())}"
                )
        for device in devices:
            get_device(device)
    except ConfigError as exc:
        parser.error(str(exc))
    if not (scheme_tokens and devices and ecc_codes and apps):
        parser.error("schemes, devices, ecc, and apps must be non-empty")
    try:
        rows = run_pareto(
            apps=apps,
            scheme_tokens=scheme_tokens,
            devices=devices,
            ecc_codes=ecc_codes,
            scale=args.scale,
            seed=args.seed,
            p_bit=args.p_bit,
            jobs=args.jobs,
            threads=args.threads,
            cache=None if args.no_cache else ResultCache(),
            verbose=not args.quiet,
        )
    except CellFailedError as exc:
        _emit_failures(exc.failures, None)
        return EXIT_FAILED
    mark_frontier(rows)
    if args.json:
        print(json.dumps([row.to_dict() for row in rows], indent=2))
    else:
        print(format_pareto_table(rows))
    return EXIT_OK


def _report_main(argv: list[str]) -> int:
    """The ``repro-harness report <action>`` subcommand.

    ``ingest`` walks the result cache (plus optional failure manifests
    and BENCH histories) into the sqlite warehouse; ``query`` filters
    the flattened rows; ``render`` emits the templated markdown/HTML
    report and an optional pinnable snapshot; ``diff`` gates the
    current warehouse against a pinned snapshot, exiting
    ``EXIT_REGRESSION`` (5) on a significant regression.
    """
    from repro.analytics.report import (
        render_diff_markdown,
        render_html,
        render_markdown,
    )
    from repro.analytics.results import ExperimentResults, load_snapshot
    from repro.analytics.warehouse import (
        FILTER_COLUMNS,
        Warehouse,
        ingest_sources,
    )
    from repro.config.warehouse import WarehouseSpec

    parser = argparse.ArgumentParser(
        prog="repro-harness report",
        description="Query and render the experiment results warehouse.",
    )
    parser.add_argument(
        "action",
        choices=["ingest", "query", "render", "diff"],
        help=(
            "ingest: walk cache/manifests/bench into the warehouse; "
            "query: filter flattened experiment rows; "
            "render: emit the templated sweep report; "
            "diff: gate against a pinned baseline snapshot"
        ),
    )
    parser.add_argument(
        "--db",
        default=None,
        help=(
            "warehouse sqlite file (default: $REPRO_WAREHOUSE or "
            ".repro-warehouse.sqlite)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root to ingest (default: $REPRO_CACHE_DIR or "
        ".repro-cache)",
    )
    parser.add_argument(
        "--failures",
        action="append",
        default=[],
        metavar="MANIFEST",
        help="failure manifest JSON to ingest (repeatable)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="BENCH_JSON",
        help="BENCH_*.json history to ingest (repeatable)",
    )
    for column in FILTER_COLUMNS:
        parser.add_argument(
            f"--{column}",
            default=None,
            help=f"query filter: exact {column} match",
        )
    parser.add_argument(
        "--out",
        default=None,
        metavar="REPORT_MD",
        help="render: write the markdown report here (default: stdout)",
    )
    parser.add_argument(
        "--html",
        default=None,
        metavar="REPORT_HTML",
        help="render: also write a self-contained HTML report here",
    )
    parser.add_argument(
        "--snapshot-out",
        default=None,
        metavar="SNAPSHOT_JSON",
        help="render: pin the raw per-seed samples for future diffs",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="SNAPSHOT_JSON",
        help="diff: pinned snapshot to gate against (required)",
    )
    spec_defaults = WarehouseSpec()
    parser.add_argument(
        "--baseline-scheme",
        default=spec_defaults.baseline_scheme,
        help="scheme label savings are computed against",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=spec_defaults.confidence,
        help="bootstrap CI confidence level",
    )
    parser.add_argument(
        "--resamples",
        type=int,
        default=spec_defaults.resamples,
        help="bootstrap resample count",
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=spec_defaults.alpha,
        help="diff: significance level (Holm-adjusted)",
    )
    parser.add_argument(
        "--min-effect",
        type=float,
        default=spec_defaults.min_effect,
        help="diff: minimum worse-direction relative mean delta",
    )
    parser.add_argument(
        "--min-samples",
        type=int,
        default=spec_defaults.min_samples,
        help="diff: seeds per side below which the gate is delta-only",
    )
    parser.add_argument(
        "--metrics",
        default=",".join(spec_defaults.metrics),
        help="diff: comma-separated metrics to gate",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    args = parser.parse_args(argv)
    spec = WarehouseSpec(
        db_path=args.db,
        cache_dir=args.cache_dir,
        baseline_scheme=args.baseline_scheme,
        confidence=args.confidence,
        resamples=args.resamples,
        alpha=args.alpha,
        min_effect=args.min_effect,
        min_samples=args.min_samples,
        metrics=tuple(
            m.strip() for m in args.metrics.split(",") if m.strip()
        ),
    )
    try:
        spec.validate()
    except ConfigError as exc:
        parser.error(str(exc))

    with Warehouse(spec.db_path) as warehouse:
        if args.action == "ingest":
            cache = ResultCache(spec.cache_dir, enabled=True)
            try:
                ingested = ingest_sources(
                    warehouse,
                    cache=cache,
                    failure_manifests=args.failures,
                    bench_files=args.bench,
                )
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"ingest failed: {exc}", file=sys.stderr)
                return EXIT_FAILED
            doc = {"ingested": ingested, "totals": warehouse.counts()}
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
            else:
                print(
                    f"ingested {ingested['experiments']} experiment(s), "
                    f"{ingested['failures']} failure(s), "
                    f"{ingested['bench']} bench entr(ies) "
                    f"into {warehouse.path}"
                )
            return EXIT_OK

        if args.action == "query":
            filters = {
                column: getattr(args, column)
                for column in FILTER_COLUMNS
                if getattr(args, column) is not None
            }
            if "seed" in filters:
                filters["seed"] = int(filters["seed"])
            rows = warehouse.rows(**filters)
            if args.json:
                print(json.dumps(rows, indent=2, sort_keys=True))
            else:
                for row in rows:
                    print(
                        f"{row['app']:<6} {row['scheme']:<24} "
                        f"dev={row['device'] or '-':<8} "
                        f"ecc={row['ecc'] or '-':<10} "
                        f"seed={row['seed'] if row['seed'] is not None else '-'} "
                        f"rowE={row['row_energy_nj']:.4g}nJ "
                        f"ipc={row['ipc']:.3f}"
                    )
                print(f"{len(rows)} row(s)")
            return EXIT_OK

        results = ExperimentResults(
            warehouse,
            baseline_scheme=spec.baseline_scheme,
            confidence=spec.confidence,
            resamples=spec.resamples,
            alpha=spec.alpha,
            min_effect=spec.min_effect,
            min_samples=spec.min_samples,
            gate_metrics=spec.metrics,
        )
        if args.action == "render":
            summary = results.summary()
            markdown = render_markdown(summary)
            if args.out:
                Path(args.out).write_text(markdown, encoding="utf-8")
                print(f"wrote {args.out}")
            else:
                print(markdown)
            if args.html:
                Path(args.html).write_text(
                    render_html(summary), encoding="utf-8"
                )
                print(f"wrote {args.html}")
            if args.snapshot_out:
                Path(args.snapshot_out).write_text(
                    json.dumps(results.snapshot(), indent=2, sort_keys=True),
                    encoding="utf-8",
                )
                print(f"wrote {args.snapshot_out}")
            return EXIT_OK

        # diff
        if not args.baseline:
            parser.error("report diff requires --baseline SNAPSHOT_JSON")
        try:
            baseline = load_snapshot(args.baseline)
            regressions = [
                r.to_dict() for r in results.regressions_against(baseline)
            ]
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"diff failed: {exc}", file=sys.stderr)
            return EXIT_FAILED
        if args.json:
            print(json.dumps(regressions, indent=2, sort_keys=True))
        else:
            print(render_diff_markdown(regressions), end="")
        return EXIT_REGRESSION if regressions else EXIT_OK


def _add_endpoint_arguments(parser: argparse.ArgumentParser) -> None:
    """Host/port options shared by the service client subcommands."""
    from repro.service.server import DEFAULT_PORT

    parser.add_argument(
        "--host", default="127.0.0.1", help="daemon host to contact"
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"daemon port (default {DEFAULT_PORT})",
    )


def _serve_main(argv: list[str]) -> int:
    """The ``repro-harness serve`` subcommand: run the job daemon."""
    from repro.service.server import (
        DEFAULT_JOURNAL,
        DEFAULT_PORT,
        DEFAULT_RING_EVENTS,
        ServiceDaemon,
    )

    parser = argparse.ArgumentParser(
        prog="repro-harness serve",
        description=(
            "Run the simulation-as-a-service daemon: accepts JSON "
            "SimSpec jobs over HTTP, coalesces duplicates, serves warm "
            "results from the persistent cache, and streams per-window "
            "telemetry over SSE."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port, 0 = pick a free one (default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="supervised simulator worker processes (default 2)",
    )
    parser.add_argument(
        "--in-process", action="store_true",
        help="run jobs on daemon threads instead of the supervised "
        "process tier (no crash isolation; PR 5 behaviour)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded queue depth before 429 backpressure (default 64)",
    )
    parser.add_argument(
        "--journal", default=DEFAULT_JOURNAL, metavar="PATH",
        help="JSONL job journal for restart recovery "
        f"(default {DEFAULT_JOURNAL})",
    )
    parser.add_argument(
        "--journal-fsync", choices=("always", "batch"),
        default="always",
        help="journal durability: fsync every record (always) or "
        "amortised every few dozen records (batch; default always)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive terminal failures of one spec before its "
        "circuit opens (default 3)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=60.0,
        metavar="SECONDS",
        help="seconds a tripped circuit stays open before one "
        "half-open probe is admitted (default 60)",
    )
    parser.add_argument(
        "--shed-watermark", type=float, default=0.75,
        metavar="FRACTION",
        help="queue-depth fraction above which submissions are shed "
        "with 429 while all workers are busy (default 0.75)",
    )
    parser.add_argument(
        "--sse-ring-events", type=int, default=None, metavar="N",
        help="bounded per-job SSE replay ring size (events kept for "
        "Last-Event-ID reconnects; default 512)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="PLAN",
        help="deterministic fault plan injected into the worker tier "
        "(kind@cell[/stride][:seconds][xN]; e.g. exit@0/5 kills the "
        "worker of every 5th dispatch) — for drills and tests",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or "
        ".repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without the persistent result cache",
    )
    parser.add_argument(
        "--warehouse", default=None, metavar="DB",
        help="results-warehouse sqlite file served by the read-only "
        "/v1/experiments routes (default: $REPRO_WAREHOUSE or "
        ".repro-warehouse.sqlite)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per failing job (default 1)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="kill any non-telemetry job attempt exceeding this "
        "wall-clock bound (supervised pool)",
    )
    parser.add_argument(
        "--window", type=int, default=None, metavar="CYCLES",
        help="telemetry window for streaming jobs (default: harness "
        "profiling window)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress daemon logging"
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.queue_size < 1:
        parser.error("--queue-size must be >= 1")
    if not 0.0 < args.shed_watermark <= 1.0:
        parser.error("--shed-watermark must be in (0, 1]")
    if args.sse_ring_events is not None and args.sse_ring_events < 1:
        parser.error("--sse-ring-events must be >= 1")
    chaos = None
    if args.chaos:
        from repro.harness.faults import FaultPlan

        try:
            chaos = FaultPlan.parse(args.chaos)
        except ValueError as exc:
            parser.error(str(exc))
    daemon = ServiceDaemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        cache=ResultCache(args.cache_dir, enabled=not args.no_cache),
        journal_path=args.journal,
        journal_fsync=args.journal_fsync,
        sse_ring_events=args.sse_ring_events or DEFAULT_RING_EVENTS,
        retries=args.retries,
        cell_timeout=args.cell_timeout,
        window_cycles=args.window or WINDOW_CYCLES,
        process_tier=not args.in_process,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        shed_watermark=args.shed_watermark,
        chaos=chaos,
        warehouse_path=args.warehouse,
        verbose=not args.quiet,
    )
    try:
        daemon.run()
    except KeyboardInterrupt:
        pass
    return 0


def _submit_main(argv: list[str]) -> int:
    """The ``repro-harness submit`` subcommand: one job over HTTP."""
    from repro.errors import ServiceBusyError, ServiceError
    from repro.service.client import ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro-harness submit",
        description="Submit one (workload, scheme) job to a running "
        "repro-harness daemon.",
    )
    parser.add_argument(
        "workload",
        help="Table II application abbreviation (e.g. SCP) or "
        "'synthetic'",
    )
    parser.add_argument(
        "--scheme", default="frfcfs",
        help="scheme id from the catalogue "
        f"({', '.join(scheme_ids())}; default frfcfs)",
    )
    parser.add_argument(
        "--device", default=None, choices=device_names(),
        help="DRAM device preset (default: config-embedded GDDR5)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size multiplier",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload data/trace seed"
    )
    parser.add_argument(
        "--priority", type=int, default=0,
        help="larger runs earlier (default 0)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="run with windowed telemetry (enables live SSE windows)",
    )
    parser.add_argument(
        "--measure-error", action="store_true",
        help="replay AMS drops through the kernel and report the "
        "application error",
    )
    parser.add_argument(
        "--retry-busy", type=int, default=0, metavar="N",
        help="on 429, retry up to N times honouring Retry-After",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its summary",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait timeout in seconds (default 600)",
    )
    _add_endpoint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        definition = scheme_def(args.scheme)
    except ConfigError as exc:
        parser.error(str(exc))
    from repro.sim.spec import SimSpec

    spec = SimSpec(
        scheduler=definition.build(),
        device=args.device,
        measure_error=args.measure_error,
        telemetry=args.telemetry,
    )
    client = ServiceClient(args.host, args.port)
    try:
        job = client.submit(
            args.workload,
            spec=spec,
            scale=args.scale,
            seed=args.seed,
            priority=args.priority,
            retry_busy=args.retry_busy,
        )
    except ServiceBusyError as exc:
        print(
            f"queue full; retry in {exc.retry_after:.0f}s",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    except (ConfigError, ServiceError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return EXIT_FAILED
    print(
        f"{job['id']}  {job['outcome']}  state={job['state']}"
    )
    if not args.wait:
        return EXIT_OK
    try:
        report = client.wait_for_report(
            job["id"], timeout=args.timeout
        )
    except (ServiceError, TimeoutError) as exc:
        print(f"{exc}", file=sys.stderr)
        return EXIT_FAILED
    print(report.summary())
    return EXIT_OK


def _status_main(argv: list[str]) -> int:
    """The ``repro-harness status [JOB_ID]`` subcommand."""
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro-harness status",
        description="Show a job's status, or (without an id) the "
        "daemon's health and stats.",
    )
    parser.add_argument(
        "job_id", nargs="?", default=None, help="job id from submit"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the raw JSON document",
    )
    _add_endpoint_arguments(parser)
    args = parser.parse_args(argv)
    client = ServiceClient(args.host, args.port)
    try:
        if args.job_id is None:
            doc = {
                "healthz": client.healthz(),
                "stats": client.stats(),
            }
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
            else:
                health = doc["healthz"]
                stats = doc["stats"]
                print(
                    f"serving={health['serving']} "
                    f"queued={health['queued']} "
                    f"running={health['running']} "
                    f"uptime={health['uptime_seconds']:.0f}s"
                )
                for name, value in stats["service"]["counters"].items():
                    print(f"  {name} = {value:g}")
            return EXIT_OK
        doc = client.job(args.job_id)
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            line = (
                f"{doc['id']}  {doc['state']}  app={doc['app']} "
                f"attempts={doc['attempts']} cached={doc['cached']}"
            )
            if doc.get("coalesced_into"):
                line += f" coalesced_into={doc['coalesced_into']}"
            print(line)
            if doc.get("error"):
                print(
                    f"  error: {doc['error'].get('error_type')}: "
                    f"{doc['error'].get('message')}"
                )
        return EXIT_OK
    except (ServiceError, OSError) as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return EXIT_FAILED


def _watch_main(argv: list[str]) -> int:
    """The ``repro-harness watch JOB_ID`` subcommand: follow SSE."""
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro-harness watch",
        description="Stream a job's per-window telemetry (SSE) until "
        "it finishes.",
    )
    parser.add_argument("job_id", help="job id from submit")
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="stream read timeout in seconds",
    )
    _add_endpoint_arguments(parser)
    args = parser.parse_args(argv)
    client = ServiceClient(args.host, args.port)
    try:
        for event, data in client.events(
            args.job_id, timeout=args.timeout
        ):
            if event == "window" and isinstance(data, dict):
                dms_x = ",".join(f"{x:g}" for x in data.get("dms_x", []))
                th = ",".join(str(t) for t in data.get("th_rbl", []))
                print(
                    f"window {data.get('index'):>4}  "
                    f"bwutil={data.get('bwutil', 0.0):.3f}  "
                    f"acts={data.get('activations', 0):>6}  "
                    f"drops={data.get('drops', 0):>5}  "
                    f"X=[{dms_x}]  Th_RBL=[{th}]"
                )
            elif event == "state" and isinstance(data, dict):
                print(f"state: {data.get('state')}")
            else:
                print(f"{event}: {json.dumps(data)}")
    except (ServiceError, OSError) as exc:
        print(f"watch failed: {exc}", file=sys.stderr)
        return EXIT_FAILED
    return EXIT_OK


def _parse_tenant_token(token: str):
    """Parse one ``--tenant NAME=WORKLOAD[:CLASS[:SCALE[:SEED]]]``."""
    from repro.config.tenants import TENANT_CLASSES, TenantSpec

    name, sep, rest = token.partition("=")
    if not sep or not name or not rest:
        raise ConfigError(
            f"bad tenant {token!r}; expected "
            "NAME=WORKLOAD[:CLASS[:SCALE[:SEED]]]"
        )
    parts = rest.split(":")
    workload = parts[0]
    tenant_class = parts[1] if len(parts) > 1 and parts[1] else "bandwidth"
    if tenant_class not in TENANT_CLASSES:
        raise ConfigError(
            f"bad tenant class {tenant_class!r} in {token!r}; "
            f"known: {', '.join(TENANT_CLASSES)}"
        )
    try:
        scale = float(parts[2]) if len(parts) > 2 and parts[2] else 1.0
        seed = int(parts[3]) if len(parts) > 3 and parts[3] else None
    except ValueError as exc:
        raise ConfigError(f"bad tenant {token!r}: {exc}") from None
    if len(parts) > 4:
        raise ConfigError(
            f"bad tenant {token!r}; expected "
            "NAME=WORKLOAD[:CLASS[:SCALE[:SEED]]]"
        )
    return TenantSpec(
        name=name, workload=workload, tenant_class=tenant_class,
        scale=scale, seed=seed,
    )


def _tenants_main(argv: list[str]) -> int:
    """The ``repro-harness tenants`` subcommand: shared-memory mix.

    Simulates one multi-tenant mix under one scheme, runs (or
    cache-loads) each tenant's class-scoped solo baseline, and prints
    the per-tenant slowdown / drop / row-energy-share table with the
    mix-wide Jain fairness index.
    """
    from repro.config.tenants import TenantMixSpec
    from repro.harness.tenants import attach_slowdowns, fairness_table
    from repro.sched.policies import arbiter_names

    parser = argparse.ArgumentParser(
        prog="repro-harness tenants",
        description=(
            "Simulate a multi-tenant shared-memory mix and report "
            "per-tenant slowdown, fairness, and row-energy shares."
        ),
    )
    parser.add_argument(
        "--tenant", action="append", default=[], metavar="SPEC",
        help="NAME=WORKLOAD[:CLASS[:SCALE[:SEED]]] (repeatable; "
        "CLASS is latency, bandwidth, or approx-batch)",
    )
    parser.add_argument(
        "--arbiter", default="shared-frfcfs", choices=arbiter_names(),
        help="multi-tenant channel arbiter (default: shared-frfcfs)",
    )
    parser.add_argument(
        "--scheme", default="static-dms+static-ams",
        choices=scheme_ids(),
        help="scheduling scheme shared by all tenants",
    )
    parser.add_argument(
        "--device", default=None, choices=device_names(),
        help="DRAM device preset (default: config-embedded GDDR5)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="global workload size multiplier applied to every tenant",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="default data/trace seed (per-tenant seeds override)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="parallel workers for the solo-baseline sweep",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache",
    )
    parser.add_argument(
        "--no-baselines", action="store_true",
        help="skip the solo baselines (no slowdown/fairness columns)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full report as machine-readable JSON",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress per-cell progress logging",
    )
    args = parser.parse_args(argv)
    if not args.tenant:
        parser.error("at least one --tenant is required")
    try:
        tenants = tuple(_parse_tenant_token(t) for t in args.tenant)
        mix = TenantMixSpec(tenants=tenants, arbiter=args.arbiter)
        mix.validate()
    except ConfigError as exc:
        parser.error(str(exc))
    scheme = scheme_def(args.scheme).build()
    runner = Runner(
        scale=args.scale, seed=args.seed, device=args.device,
        tenants=mix, verbose=not args.quiet, jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(),
    )
    label = "+".join(t.workload for t in tenants)
    try:
        report = runner.run(label, scheme)
        if report.tenants is not None and not args.no_baselines:
            attach_slowdowns(report, runner, mix, scheme)
    except CellFailedError as exc:
        _emit_failures(runner.failures or exc.failures, None)
        return EXIT_FAILED
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return EXIT_OK
    print(f"mix {label}  scheme {scheme.name}"
          + (f"  device {args.device}" if args.device else ""))
    if report.tenants is None:
        # Single-tenant passthrough: the report has no tenant section
        # by design (it is field-identical to a plain run).
        print(report.summary())
    else:
        print(fairness_table(report.tenants))
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    """Run one experiment (or ``all``) and print its tables."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "tenants":
        return _tenants_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "table":
        return _table_main(argv[1:])
    if argv and argv[0] == "matrix":
        return _matrix_main(argv[1:])
    if argv and argv[0] == "pareto":
        return _pareto_main(argv[1:])
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "submit":
        return _submit_main(argv[1:])
    if argv and argv[0] == "status":
        return _status_main(argv[1:])
    if argv and argv[0] == "watch":
        return _watch_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the paper's tables and figures on the simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper figure/table) or 'all' "
        "(also: 'cache clear|info' to manage the result cache, "
        "'trace <scheme> <workload>' to export telemetry, "
        "'table'/'matrix' for scheme and device comparisons)",
    )
    parser.add_argument(
        "--device",
        default=None,
        choices=device_names(),
        help="DRAM device preset for every cell "
        "(default: config-embedded GDDR5)",
    )
    parser.add_argument(
        "--apps",
        default=None,
        help="comma-separated subset of Table II applications",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (smaller = faster)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload data/trace seed"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="simulate up to N matrix cells in parallel worker processes",
    )
    parser.add_argument(
        "--threads",
        action="store_true",
        help="fan --jobs out over worker threads instead of processes "
        "(no serialization; best for cache-dominated sweeps)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile every simulated cell with cProfile and report the "
        "top cumulative frames (forces serial execution)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="write the per-cell profile report here (default: stderr)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent result cache (same as REPRO_NO_CACHE=1)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts for a failing matrix cell (default 1)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill any matrix cell exceeding this wall-clock time per "
        "attempt (forces the supervised pool even with --jobs 1)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="quarantine failing cells and finish the sweep with the "
        f"healthy ones (exit code {EXIT_PARTIAL} on partial results)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan, e.g. 'crash@0;hang@1:30' "
        "(default: $REPRO_CHAOS); for testing the recovery paths",
    )
    parser.add_argument(
        "--failures-out",
        default=None,
        metavar="PATH",
        help="write the structured failure manifest (JSON) here when any "
        "cell is quarantined",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error("--cell-timeout must be positive")
    try:
        faults = (
            FaultPlan.parse(args.chaos) if args.chaos
            else FaultPlan.from_env()
        )
    except ValueError as exc:
        parser.error(str(exc))
    runner = Runner(
        scale=args.scale,
        seed=args.seed,
        device=args.device,
        verbose=not args.quiet,
        jobs=args.jobs,
        threads=args.threads,
        profile=args.profile,
        cache=None if args.no_cache else ResultCache(),
        retries=args.retries,
        cell_timeout=args.cell_timeout,
        keep_going=args.keep_going,
        faults=faults,
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    exit_code = EXIT_OK
    for name in names:
        fn = EXPERIMENTS[name]
        try:
            if args.apps:
                apps = tuple(a.strip() for a in args.apps.split(","))
                try:
                    result = fn(runner, apps)
                except TypeError:
                    result = fn(runner)  # experiment with fixed app set
            else:
                result = fn(runner)
        except CellFailedError as exc:
            if not args.keep_going:
                _emit_failures(
                    runner.failures or exc.failures, args.failures_out
                )
                return EXIT_FAILED
            print(
                f"[partial] {name} incomplete: {exc}",
                file=sys.stderr,
            )
            exit_code = EXIT_PARTIAL
            continue
        print(result.text)
        print()
    if runner.profiles:
        _emit_profiles(runner.profiles, args.profile_out)
    if runner.failures:
        _emit_failures(runner.failures, args.failures_out)
        exit_code = EXIT_PARTIAL if args.keep_going else EXIT_FAILED
    return exit_code


def _emit_profiles(profiles: list[dict], out_path: str | None) -> None:
    """Write the per-cell cProfile report (``--profile``)."""
    sections = [
        f"== {p['app']} / {p['label']} ==\n{p['stats']}" for p in profiles
    ]
    text = "\n".join(sections)
    if out_path:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(
            f"profile report ({len(profiles)} cell(s)) written to {path}",
            file=sys.stderr,
        )
    else:
        print(text, file=sys.stderr)


def _emit_failures(failures, out_path: str | None) -> None:
    """Report quarantined cells: summary to stderr, manifest to disk."""
    manifest = failure_manifest(list(failures))
    print(
        f"{manifest['failed_cells']} cell(s) failed after retries:",
        file=sys.stderr,
    )
    for failure in failures:
        print(f"  {failure.summary()}", file=sys.stderr)
    if out_path:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        print(f"failure manifest written to {path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
