"""Persistent warm-worker pool for matrix execution.

The seed harness paid the full worker start-up price on every
``run_matrix`` call: a fresh :class:`~concurrent.futures.ProcessPoolExecutor`,
one pickled ``(CellSpec, FaultPlan)`` round trip per cell, and the whole
pool torn down at the end of the sweep.  :class:`WarmPool` replaces that
with workers that outlive individual matrices:

* **Warm workers** — each worker process imports the simulation stack
  once, at start-up, then sits on a duplex pipe waiting for cells.  The
  pool itself is owned by the :class:`~repro.harness.runner.Runner` and
  reused across ``run_matrix`` calls, so a benchmark loop or a sweep of
  sweeps pays the spawn/import cost once.
* **Batched dispatch** — :meth:`submit_many` groups cells into one
  message per worker; the worker streams one result message back per
  cell as it completes, so batching costs no latency at the tail.
* **Codec wire format** — cells travel as the JSON-shaped dicts of
  :mod:`repro.config.codec` (the same encoding the disk cache and the
  service API use), and reports come back as ``SimReport.to_dict()``
  payloads.  Nothing on the hot path depends on pickling repro classes;
  only a *failing* cell's exception object rides the pipe's native
  pickle so the supervisor sees the real type (e.g. ``ChaosCrash``).
* **Surgical supervision** — the pool knows which worker runs which
  future.  A dead worker fails only *its* in-flight futures (with
  :class:`~repro.errors.WorkerCrashError`) and is respawned alone;
  :meth:`kill_owner` lets the runner kill exactly the worker hosting a
  timed-out cell.  The seed executor could only declare the whole pool
  broken.  Every respawn notifies ``on_rebuild`` (the runner wires this
  to the ``harness.pool_rebuilds`` metric).
* **Thread mode** — ``threads=True`` runs the same loop in daemon
  threads instead of processes: no serialization at all, ideal for
  cache-dominated sweeps or small matrices where process fan-out costs
  more than the GIL does.  Determinism holds because the request-id
  counter is thread-local (see :mod:`repro.dram.request`).  Threads
  cannot be preempted, so the runner falls back to processes whenever a
  ``cell_timeout`` is armed.

The pool resolves plain :class:`concurrent.futures.Future` objects, so
the supervising runner keeps using ``concurrent.futures.wait``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
import time
import traceback
from concurrent.futures import Future
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Optional

from repro.errors import WorkerCrashError

#: A work item, exactly the tuple the seed pool entry point took:
#: ``(cache key, CellSpec, FaultPlan | None, cell index, attempt)``.
WorkItem = tuple


class _RemoteTraceback(Exception):
    """Carrier for a worker-side traceback text.

    Attached as ``__cause__`` of the re-raised worker exception (the
    same trick ``concurrent.futures.process`` uses), so the supervisor's
    ``traceback.format_exception`` output contains the *worker's* frames
    — chaos tests grep that text for the injected exception.
    """

    def __init__(self, tb: str) -> None:
        super().__init__()
        self.tb = tb

    def __str__(self) -> str:
        return self.tb


def _encode_item(item: WorkItem) -> dict:
    """Work item -> codec-shaped wire payload."""
    from repro.config import codec

    key, spec, faults, index, attempt = item
    return {
        "key": key,
        "cell": codec.encode(spec),
        "faults": codec.encode(faults) if faults is not None else None,
        "index": index,
        "attempt": attempt,
    }


def _run_payload(payload: dict) -> tuple[str, dict, float]:
    """Decode and simulate one cell; returns (key, report dict, secs).

    Runs inside a worker process. Chaos faults fire inside
    ``_simulate_cell`` with ``in_worker=True``, so an injected ``exit``
    genuinely kills this process.
    """
    from repro.config import codec
    from repro.harness import runner as runner_mod
    from repro.harness.faults import FaultPlan

    spec = codec.decode(runner_mod.CellSpec, payload["cell"])
    faults = (
        codec.decode(FaultPlan, payload["faults"])
        if payload["faults"] is not None
        else None
    )
    report, elapsed = runner_mod._simulate_cell(
        spec,
        faults=faults,
        cell_index=payload["index"],
        attempt=payload["attempt"],
        in_worker=True,
    )
    return payload["key"], report.to_dict(), elapsed


def _worker_main(conn) -> None:
    """Worker process body: drain batches from ``conn`` until EOF/None.

    The simulation stack is imported up front — that is the "warm" in
    warm pool.  Under the fork start method the import is free (copy-on-
    write from the parent); under spawn it is paid once per worker
    instead of once per cell.

    Besides cell batches the pipe carries ``("ping", seq)`` heartbeat
    probes, answered with ``("pong", seq, pid)``.  A worker only reads
    the pipe between batches, so a pong certifies *idle* liveness; a
    worker busy simulating answers late, which is exactly why busy
    workers are supervised by per-job deadlines instead.
    """
    import os as os_mod

    import repro.harness.runner  # noqa: F401  (pre-import the stack)
    import repro.sim.system  # noqa: F401

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        if isinstance(msg, tuple) and msg and msg[0] == "ping":
            try:
                conn.send(("pong", msg[1], os_mod.getpid()))
            except (OSError, ValueError):
                return
            continue
        for task_id, payload in msg:
            try:
                key, report_dict, elapsed = _run_payload(payload)
            except Exception as exc:
                tb = traceback.format_exc()
                try:
                    conn.send(("err", task_id, exc, tb))
                except Exception:
                    # The exception itself would not pickle; degrade to
                    # a plain carrier keeping the original type's name.
                    conn.send((
                        "err", task_id,
                        RuntimeError(f"{type(exc).__name__}: {exc}"), tb,
                    ))
            else:
                conn.send(("ok", task_id, key, report_dict, elapsed))


def _thread_main(jobs: "queue_mod.SimpleQueue") -> None:
    """Thread-mode worker body: same loop, no wire format."""
    from repro.harness import runner as runner_mod

    while True:
        job = jobs.get()
        if job is None:
            return
        future, item = job
        key, spec, faults, index, attempt = item
        try:
            # ``in_worker=False``: an injected ``exit`` must degrade to
            # an exception here — ``os._exit`` would kill the harness.
            report, elapsed = runner_mod._simulate_cell(
                spec,
                faults=faults,
                cell_index=index,
                attempt=attempt,
                in_worker=False,
            )
        except Exception as exc:
            future.set_exception(exc)
        else:
            future.set_result((key, report, elapsed))


class _ProcessWorker:
    """Parent-side handle of one worker process."""

    __slots__ = (
        "conn", "proc", "inflight", "dead",
        "spawned_at", "last_pong", "tasks_done", "crashes_seen",
    )

    def __init__(self, conn, proc) -> None:
        self.conn = conn
        self.proc = proc
        #: task_id -> Future of every cell dispatched but unresolved.
        self.inflight: dict[int, Future] = {}
        self.dead = False
        self.spawned_at = time.time()
        #: Wall time of the last heartbeat answer (spawn counts as one).
        self.last_pong = self.spawned_at
        #: Cells this worker resolved (ok or err) over its lifetime.
        self.tasks_done = 0
        #: Failed cells resolved by this worker (chaos/errors).
        self.crashes_seen = 0


class WarmPool:
    """A self-healing pool of persistent simulation workers."""

    def __init__(
        self,
        workers: int,
        *,
        threads: bool = False,
        on_rebuild: Optional[Callable[[], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"pool needs >= 1 worker, got {workers}")
        self.size = workers
        self.threads = threads
        self.closed = False
        self._on_rebuild = on_rebuild
        self._lock = threading.Lock()
        self._next_id = 0
        self._rr = 0  # round-robin cursor for batch/thread dispatch
        self._ping_seq = 0
        #: Workers respawned in place over the pool's lifetime.
        self.respawns = 0
        if threads:
            self._queues: list[queue_mod.SimpleQueue] = []
            self._threads: list[threading.Thread] = []
            for _ in range(workers):
                q: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
                t = threading.Thread(
                    target=_thread_main, args=(q,),
                    name="repro-warm-thread", daemon=True,
                )
                t.start()
                self._queues.append(q)
                self._threads.append(t)
        else:
            methods = multiprocessing.get_all_start_methods()
            self._ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._workers = [self._spawn() for _ in range(workers)]
            self._collector = threading.Thread(
                target=self._collect_loop,
                name="repro-warm-collector", daemon=True,
            )
            self._collector.start()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def submit(self, item: WorkItem) -> Future:
        """Dispatch one cell; the future resolves to (key, report, s)."""
        return self.submit_many([item])[0]

    def submit_many(self, items: list[WorkItem]) -> list[Future]:
        """Dispatch cells batched per worker, one pipe message each.

        Assignment is least-loaded: while the supervising runner keeps
        at most ``size`` cells in flight (the timeout mode), every cell
        is guaranteed its own worker — which is what makes the runner's
        ``submit time + timeout`` deadline accurate and its kill
        surgical.
        """
        if self.threads:
            return self._submit_threads(items)
        futures: list[Future] = []
        batches: dict[int, list[tuple[int, dict]]] = {}
        with self._lock:
            if self.closed:
                raise RuntimeError("warm pool is shut down")
            workers = self._workers
            for item in items:
                task_id = self._next_id
                self._next_id += 1
                future: Future = Future()
                target = min(
                    range(len(workers)),
                    key=lambda i: (len(workers[i].inflight), i),
                )
                workers[target].inflight[task_id] = future
                batches.setdefault(target, []).append(
                    (task_id, _encode_item(item))
                )
                futures.append(future)
        for target, batch in batches.items():
            worker = workers[target]
            try:
                worker.conn.send(batch)
            except (OSError, ValueError):
                self._worker_died(worker)
        return futures

    def _submit_threads(self, items: list[WorkItem]) -> list[Future]:
        futures: list[Future] = []
        with self._lock:
            if self.closed:
                raise RuntimeError("warm pool is shut down")
            for item in items:
                future = Future()
                self._queues[self._rr % self.size].put((future, item))
                self._rr += 1
                futures.append(future)
        return futures

    # ------------------------------------------------------------------
    # Supervision hooks
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(future: Future, *, result=None, exc=None) -> None:
        """Resolve a future, tolerating one already cancelled/resolved.

        The service tier awaits pool futures through ``asyncio.wait_for``,
        whose timeout path *cancels* the (still pending) future before
        the supervisor gets to :meth:`kill_owner`.  A result racing in
        from the collector thread must not kill the collector with an
        ``InvalidStateError``.
        """
        try:
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(result)
        except Exception:
            pass  # cancelled or already resolved: the waiter moved on

    def ping(self) -> int:
        """Send one heartbeat probe to every live worker (process mode).

        Returns the number of probes sent.  Answers arrive on the
        collector thread and update each worker's ``last_pong``; read
        them back through :meth:`worker_states`.  A worker that is busy
        simulating answers only after finishing its current batch — the
        heartbeat certifies *idle* liveness, per-job deadlines cover
        busy workers.
        """
        if self.threads:
            return 0
        with self._lock:
            if self.closed:
                return 0
            self._ping_seq += 1
            seq = self._ping_seq
            targets = [w for w in self._workers if not w.dead]
        sent = 0
        for worker in targets:
            try:
                worker.conn.send(("ping", seq))
                sent += 1
            except (OSError, ValueError):
                self._worker_died(worker)
        return sent

    def worker_states(self) -> list[dict]:
        """Introspection snapshot of every worker slot (for healthz).

        Thread mode reports thread liveness only; process mode adds
        pid, in-flight load, heartbeat age, and lifetime counters.
        """
        now = time.time()
        if self.threads:
            return [
                {"mode": "thread", "alive": t.is_alive()}
                for t in self._threads
            ]
        with self._lock:
            workers = list(self._workers)
        return [
            {
                "mode": "process",
                "pid": w.proc.pid,
                "alive": (not w.dead) and w.proc.is_alive(),
                "busy": len(w.inflight) > 0,
                "inflight": len(w.inflight),
                "heartbeat_age_seconds": max(0.0, now - w.last_pong),
                "uptime_seconds": max(0.0, now - w.spawned_at),
                "tasks_done": w.tasks_done,
                "tasks_failed": w.crashes_seen,
            }
            for w in workers
        ]

    def reap_stale(self, max_age: float) -> int:
        """Kill and respawn *idle* workers whose heartbeat went silent.

        A worker with cells in flight is never touched here (its
        supervisor's per-job deadline covers it); an idle worker that
        has not answered a ping — nor delivered any message — for
        ``max_age`` seconds is wedged and gets its slot respawned.
        Returns the number of workers replaced.
        """
        if self.threads:
            return 0
        now = time.time()
        stale: list[_ProcessWorker] = []
        with self._lock:
            if self.closed:
                return 0
            for i, worker in enumerate(self._workers):
                if (
                    not worker.dead
                    and not worker.inflight
                    and now - worker.last_pong > max_age
                ):
                    worker.dead = True
                    stale.append(worker)
                    self._workers[i] = self._spawn()
        for worker in stale:
            self._reap(worker, terminate=True)
            self._note_rebuild()
        return len(stale)

    def kill_owner(self, future: Future) -> bool:
        """Kill and respawn the worker hosting ``future`` (timed out).

        The future itself is detached *without* being resolved — the
        caller has already charged it a timeout.  Any other in-flight
        future on the same worker (none in timeout mode, where the
        runner keeps one cell per worker) fails with
        :class:`WorkerCrashError`.  Returns False in thread mode, where
        preemption is impossible.
        """
        if self.threads:
            return False
        with self._lock:
            owner = None
            for worker in self._workers:
                if worker.dead:
                    continue
                if any(f is future for f in worker.inflight.values()):
                    owner = worker
                    break
            if owner is None:
                return False
            owner.dead = True
            victims = [
                f for f in owner.inflight.values() if f is not future
            ]
            owner.inflight = {}
            self._workers[self._workers.index(owner)] = self._spawn()
        self._reap(owner, terminate=True)
        for victim in victims:
            self._resolve(victim, exc=WorkerCrashError(
                "warm-pool worker killed while a neighbouring cell "
                "was in flight"
            ))
        self._note_rebuild()
        return True

    def close(self) -> None:
        """Stop every worker; idempotent — safe to call any number of
        times, from user code and the runner's ``weakref.finalize``
        both.  The first call tears the pool down (failing in-flight
        cells with :class:`WorkerCrashError`); later calls see the
        ``closed`` flag under the lock and return without touching the
        already-reaped pipes or processes."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            if self.threads:
                for q in self._queues:
                    q.put(None)
                return
            workers = list(self._workers)
            self._workers = []
        victims: list[Future] = []
        for worker in workers:
            victims.extend(worker.inflight.values())
            worker.inflight = {}
            worker.dead = True
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
            self._reap(worker, terminate=True)
        for victim in victims:
            self._resolve(victim, exc=WorkerCrashError(
                "warm pool shut down with cells in flight"
            ))

    #: Historical name; :meth:`close` is the canonical spelling.
    shutdown = close

    # ------------------------------------------------------------------
    # Internals (process mode)
    # ------------------------------------------------------------------
    def _spawn(self) -> _ProcessWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,),
            name="repro-warm-worker", daemon=True,
        )
        proc.start()
        child_conn.close()
        return _ProcessWorker(parent_conn, proc)

    def _reap(self, worker: _ProcessWorker, *, terminate: bool) -> None:
        if terminate:
            try:
                worker.proc.terminate()
            except Exception:
                pass
        try:
            worker.proc.join(timeout=2.0)
        except Exception:
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    def _note_rebuild(self) -> None:
        self.respawns += 1
        if self._on_rebuild is not None:
            try:
                self._on_rebuild()
            except Exception:
                pass

    def _worker_died(self, worker: _ProcessWorker) -> None:
        """A worker's pipe hit EOF: fail its cells, respawn its slot."""
        with self._lock:
            if worker.dead or self.closed:
                return
            worker.dead = True
            victims = list(worker.inflight.values())
            worker.inflight = {}
            self._workers[self._workers.index(worker)] = self._spawn()
        self._reap(worker, terminate=True)
        for victim in victims:
            self._resolve(victim, exc=WorkerCrashError(
                "warm-pool worker died while a cell was in flight"
            ))
        self._note_rebuild()

    def _collect_loop(self) -> None:
        """Collector thread: resolve futures as result messages arrive."""
        while True:
            with self._lock:
                if self.closed:
                    return
                live = {
                    w.conn: w for w in self._workers if not w.dead
                }
            if not live:
                time.sleep(0.01)
                continue
            try:
                ready = mp_connection.wait(list(live), timeout=0.2)
            except OSError:
                continue
            for conn in ready:
                worker = live[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._worker_died(worker)
                    continue
                self._deliver(worker, msg)

    def _deliver(self, worker: _ProcessWorker, msg: tuple) -> None:
        from repro.sim.report import SimReport

        kind = msg[0]
        # Any message off the pipe proves the worker alive — refresh the
        # heartbeat so a long simulation is not misread as a wedge.
        worker.last_pong = time.time()
        if kind == "pong":
            return
        task_id = msg[1]
        with self._lock:
            future = worker.inflight.pop(task_id, None)
        if future is None:  # detached by kill_owner/close
            return
        worker.tasks_done += 1
        if kind == "ok":
            _, _, key, report_dict, elapsed = msg
            try:
                report = SimReport.from_dict(report_dict)
            except Exception as exc:
                self._resolve(future, exc=exc)
            else:
                self._resolve(future, result=(key, report, elapsed))
        else:
            worker.crashes_seen += 1
            _, _, exc, tb = msg
            exc.__cause__ = _RemoteTraceback(tb)
            self._resolve(future, exc=exc)


__all__ = ["WarmPool", "WorkItem"]
