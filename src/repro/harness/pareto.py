"""Reliability Pareto sweep: scheme x device x ECC code.

The paper trades DRAM energy against application-level error; the ECC
layer adds the third axis — reliability. This experiment sweeps
scheduling schemes x DRAM devices x ECC codes with the bit-flip fault
injector enabled and emits one row per cell: total DRAM energy,
application error (AMS replay), the analytic silent-corruption FIT, and
the carbon-per-GiB-year estimate. Rows no other row dominates on
(energy, app-error, FIT) form the Pareto frontier (marked ``*``).

Scheme tokens accept the catalogue ids of
:mod:`repro.harness.schemes` plus sweep-friendly aliases:

* ``base`` — the FR-FCFS baseline;
* ``dms`` / ``ams`` — the static DMS / AMS schemes;
* ``dmsN`` (e.g. ``dms2``) — Static-DMS with an ``N x 128``-cycle
  activation delay.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.config.faults import FaultConfig
from repro.config.scheduler import SchedulerConfig, static_dms
from repro.errors import ConfigError
from repro.harness.cache import ResultCache
from repro.harness.runner import Runner
from repro.harness.schemes import scheme_def
from repro.sim.report import SimReport

#: Default per-bit flip probability for sweeps: high enough that a
#: scaled-down trace still sees a statistically meaningful number of
#: flips, low enough that SEC-DED keeps multi-flip words rare.
DEFAULT_SWEEP_P_BIT = 2e-6


def resolve_scheme_token(token: str) -> tuple[str, SchedulerConfig]:
    """One ``--schemes`` token -> (label, scheduler configuration)."""
    t = token.strip()
    if not t:
        raise ConfigError("empty scheme token")
    lowered = t.lower()
    if lowered == "base":
        base = scheme_def("frfcfs")
        return base.label, base.build()
    if lowered == "dms":
        sd = scheme_def("static-dms")
        return sd.label, sd.build()
    if lowered == "ams":
        sd = scheme_def("static-ams")
        return sd.label, sd.build()
    match = re.fullmatch(r"dms(\d+)", lowered)
    if match:
        delay = int(match.group(1)) * 128
        return f"Static-DMS({delay})", static_dms(delay)
    sd = scheme_def(t)  # raises ConfigError on unknown ids
    return sd.label, sd.build()


@dataclass
class ParetoRow:
    """One (app, scheme, device, ecc) cell of the sweep."""

    app: str
    scheme: str
    device: str
    ecc: str
    energy_nj: float
    row_energy_nj: float
    app_error: float
    fit: float
    carbon_g_per_gib_year: float
    flips_injected: int
    words_silent: int
    #: Set by :func:`mark_frontier`.
    frontier: bool = False

    @classmethod
    def from_report(
        cls, app: str, scheme: str, device: str, ecc: str,
        report: SimReport,
    ) -> "ParetoRow":
        summary = report.ecc
        return cls(
            app=app,
            scheme=scheme,
            device=device,
            ecc=ecc,
            energy_nj=report.energy.total_nj,
            row_energy_nj=report.energy.row_nj,
            app_error=report.application_error or 0.0,
            fit=summary.fit if summary is not None else 0.0,
            carbon_g_per_gib_year=(
                summary.carbon_g_per_gib_year if summary is not None else 0.0
            ),
            flips_injected=(
                summary.flips_injected if summary is not None else 0
            ),
            words_silent=(
                summary.words_silent if summary is not None else 0
            ),
        )

    def objectives(self) -> tuple[float, float, float]:
        """The minimised axes: (row energy, app error, FIT)."""
        return (self.row_energy_nj, self.app_error, self.fit)

    def to_dict(self) -> dict:
        """JSON row for ``--json`` output."""
        return {
            "app": self.app,
            "scheme": self.scheme,
            "device": self.device,
            "ecc": self.ecc,
            "energy_nj": self.energy_nj,
            "row_energy_nj": self.row_energy_nj,
            "app_error": self.app_error,
            "fit": self.fit,
            "carbon_g_per_gib_year": self.carbon_g_per_gib_year,
            "flips_injected": self.flips_injected,
            "words_silent": self.words_silent,
            "frontier": self.frontier,
        }


def _dominates(a: ParetoRow, b: ParetoRow) -> bool:
    """Whether ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere (all objectives minimised)."""
    ao, bo = a.objectives(), b.objectives()
    return all(x <= y for x, y in zip(ao, bo)) and any(
        x < y for x, y in zip(ao, bo)
    )


def mark_frontier(rows: list[ParetoRow]) -> list[ParetoRow]:
    """Set ``frontier`` on every non-dominated row (per app) in place."""
    by_app: dict[str, list[ParetoRow]] = {}
    for row in rows:
        by_app.setdefault(row.app, []).append(row)
    for group in by_app.values():
        for row in group:
            row.frontier = not any(
                _dominates(other, row)
                for other in group if other is not row
            )
    return rows


def run_pareto(
    *,
    apps: list[str],
    scheme_tokens: list[str],
    devices: list[str],
    ecc_codes: list[str],
    scale: float = 0.25,
    seed: int = 7,
    p_bit: float = DEFAULT_SWEEP_P_BIT,
    fault_scale: float = 1.0,
    jobs: int = 1,
    threads: bool = False,
    cache: Optional[ResultCache] = None,
    verbose: bool = True,
) -> list[ParetoRow]:
    """Simulate the whole sweep and return frontier-marked rows.

    Cells are grouped per (device, ecc) into one :class:`Runner` matrix
    each (sharing ``cache``), so ``--jobs`` parallelism applies within
    every group and identical cells are deduplicated by content key.
    AMS application error is always measured — it is one of the
    frontier axes.
    """
    from repro.dram.ecc import get_ecc

    schemes = dict(resolve_scheme_token(t) for t in scheme_tokens)
    for code in ecc_codes:
        get_ecc(code)  # raises ConfigError on unknown codes
    faults = FaultConfig(enabled=True, p_bit=p_bit, scale=fault_scale)
    rows: list[ParetoRow] = []
    for device in devices:
        for code in ecc_codes:
            runner = Runner(
                scale=scale,
                seed=seed,
                device=device,
                ecc=code,
                fault_model=faults,
                verbose=verbose,
                jobs=jobs,
                threads=threads,
                cache=cache,
            )
            try:
                results = runner.run_matrix(
                    apps, schemes, measure_error=True
                )
            finally:
                runner.close()
            for app in apps:
                for label in schemes:
                    rows.append(
                        ParetoRow.from_report(
                            app, label, device, code,
                            results[(app, label)],
                        )
                    )
    # Deterministic row order regardless of device/ecc loop structure or
    # --jobs level, so `pareto --json` diffs cleanly against a pinned
    # baseline.
    rows.sort(key=lambda r: (r.app, r.scheme, r.device, r.ecc))
    return mark_frontier(rows)


def format_pareto_table(rows: list[ParetoRow]) -> str:
    """The frontier table: one line per cell, ``*`` marks the frontier."""
    headers = (
        "app", "scheme", "device", "ecc",
        "energy_uJ", "row_uJ", "app_err", "FIT", "carbon_g/GiB-yr",
        "front",
    )
    body = [
        (
            row.app,
            row.scheme,
            row.device,
            row.ecc,
            f"{row.energy_nj / 1e3:.2f}",
            f"{row.row_energy_nj / 1e3:.2f}",
            f"{row.app_error:.2%}",
            f"{row.fit:.3g}",
            f"{row.carbon_g_per_gib_year:.1f}",
            "*" if row.frontier else "",
        )
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body))
        if body else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(line: tuple) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(line)
        ).rstrip()

    out = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    out.extend(fmt(line) for line in body)
    frontier = sum(1 for row in rows if row.frontier)
    out.append("")
    out.append(
        f"{frontier} of {len(rows)} cells on the "
        "(row-energy x app-error x FIT) frontier"
    )
    return "\n".join(out)
