"""Deterministic chaos injection and structured failure records.

Every recovery path of the supervised runner — retry after a worker
exception, pool rebuild after a worker death, kill-and-retry after a
hang, cache self-healing after a corrupt blob — is exercised by
*injected* faults rather than trusted.  A :class:`FaultPlan` describes
exactly which matrix cells misbehave, on which attempts, and how:

============  =====================================================
kind          effect at the injection point
============  =====================================================
``crash``     raise :class:`ChaosCrash` inside ``_simulate_cell``
``exit``      ``os._exit(17)`` in a pool worker (kills the process,
              breaking the pool); raises
              :class:`~repro.errors.WorkerCrashError` when the cell
              runs in-process, where exiting would kill the harness
``hang``      ``time.sleep(seconds)`` before simulating (exceeds the
              per-cell timeout)
``corrupt``   garble the cache blob just written for the cell, so a
              later warm run must self-heal
============  =====================================================

Plans are deterministic by construction: a fault names a *cell ordinal*
(the position of the cell among the cache-missing, content-deduplicated
cells of one ``run_matrix`` call, in dispatch order — identical for
serial and pooled execution) and fires on attempts ``1..attempts``
(default 1), so a bounded retry always observes the same faults and
then a clean cell.  There is no randomness anywhere.

The service daemon reuses the same grammar for its worker tier: there
the ordinal is the tier-wide *dispatch number* (jobs in first-dispatch
order; retries keep their job's ordinal and advance only the attempt),
so a plan written for a sweep reads identically for a job stream.

Plan syntax (``REPRO_CHAOS`` env var or ``--chaos``)::

    spec  := kind '@' cell ['/' stride] [':' seconds] ['x' attempts]
    plan  := spec (';' spec)*

Examples: ``crash@0`` (cell 0 raises once), ``hang@1:30`` (cell 1
sleeps 30 s on its first attempt), ``exit@2x2`` (cell 2 kills its
worker on attempts 1 and 2), ``crash@0;corrupt@1``.  A stride turns
one ordinal into a deterministic *rate*: ``exit@0/5`` fires on cells
0, 5, 10, ... — the "kill every 5th dispatch" load tests of the
service tier are written exactly like that.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import HarnessError, WorkerCrashError

#: Environment variable holding the default fault plan.
ENV_CHAOS = "REPRO_CHAOS"

#: Exit status used by ``exit`` faults; distinctive in worker post-mortems.
CHAOS_EXIT_STATUS = 17

FAULT_KINDS = ("crash", "exit", "hang", "corrupt")


class ChaosCrash(RuntimeError):
    """The exception raised by ``crash`` faults.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the retry
    machinery must survive arbitrary third-party exceptions, so the
    injected one lives outside the package hierarchy.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` applied to cell ``cell``.

    The fault is active while ``attempt <= attempts``; ``seconds`` is
    the sleep duration for ``hang`` faults.  A non-zero ``stride``
    widens the match from one ordinal to the arithmetic progression
    ``cell, cell + stride, cell + 2*stride, ...`` — a deterministic
    fault *rate* for load tests.
    """

    kind: str
    cell: int
    seconds: float = 0.0
    attempts: int = 1
    #: 0 = exact-ordinal match; N > 0 = every Nth cell from ``cell`` on.
    stride: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        if self.cell < 0:
            raise ValueError(f"fault cell must be >= 0, got {self.cell}")
        if self.attempts < 1:
            raise ValueError(
                f"fault attempts must be >= 1, got {self.attempts}"
            )
        if self.seconds < 0:
            raise ValueError(
                f"fault seconds must be >= 0, got {self.seconds}"
            )
        if self.stride < 0:
            raise ValueError(
                f"fault stride must be >= 0, got {self.stride}"
            )

    def matches(self, cell: int) -> bool:
        """Whether this spec targets the given cell ordinal."""
        if self.stride <= 0:
            return cell == self.cell
        return cell >= self.cell and (cell - self.cell) % self.stride == 0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind@cell[/stride][:seconds][xN]`` fragment."""
        spec = text.strip()
        try:
            kind, _, rest = spec.partition("@")
            if not rest:
                raise ValueError("missing '@cell'")
            attempts = 1
            if "x" in rest:
                rest, _, reps = rest.rpartition("x")
                attempts = int(reps)
            seconds = 0.0
            if ":" in rest:
                rest, _, secs = rest.partition(":")
                seconds = float(secs)
            stride = 0
            if "/" in rest:
                rest, _, step = rest.partition("/")
                stride = int(step)
                if stride < 1:
                    raise ValueError("stride must be >= 1")
            return cls(
                kind=kind.strip(), cell=int(rest),
                seconds=seconds, attempts=attempts, stride=stride,
            )
        except ValueError as exc:
            raise ValueError(f"bad fault spec {text!r}: {exc}") from None


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable set of :class:`FaultSpec` injections.

    Picklability matters: the plan rides along with every work item into
    pool workers so faults fire inside the worker process, exactly where
    a real failure would.
    """

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``;``-separated plan (see module docstring)."""
        specs = tuple(
            FaultSpec.parse(part)
            for part in text.replace(",", ";").split(";")
            if part.strip()
        )
        return cls(specs=specs)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Plan from ``$REPRO_CHAOS``, or None when unset/empty."""
        text = os.environ.get(ENV_CHAOS, "").strip()
        return cls.parse(text) if text else None

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------------------
    def active(self, cell: int, attempt: int) -> Iterator[FaultSpec]:
        """Faults that fire for this (cell ordinal, 1-based attempt)."""
        for spec in self.specs:
            if spec.matches(cell) and attempt <= spec.attempts:
                yield spec

    def fire_pre_simulation(
        self, cell: int, attempt: int, *, in_worker: bool
    ) -> None:
        """Apply crash/exit/hang faults at the top of ``_simulate_cell``."""
        for spec in self.active(cell, attempt):
            if spec.kind == "hang":
                time.sleep(spec.seconds)
            elif spec.kind == "crash":
                raise ChaosCrash(
                    f"injected crash (cell {cell}, attempt {attempt})"
                )
            elif spec.kind == "exit":
                if in_worker:
                    os._exit(CHAOS_EXIT_STATUS)
                raise WorkerCrashError(
                    f"injected worker exit (cell {cell}, attempt {attempt}) "
                    "degraded to an exception: cell ran in-process"
                )

    def should_corrupt(self, cell: int) -> bool:
        """Whether the freshly stored blob for ``cell`` must be garbled."""
        return any(
            spec.kind == "corrupt" and spec.matches(cell)
            for spec in self.specs
        )


def corrupt_blob(path: Path) -> None:
    """Deterministically garble a cache blob in place.

    The blob keeps its JSON framing and current format version but loses
    the ``report`` payload, so a reader passes ``json.load`` and the
    version check and fails inside ``SimReport.from_dict`` — the deepest
    self-healing path (a version mismatch would merely be a polite miss).
    """
    from repro.harness.cache import CACHE_FORMAT_VERSION

    path.write_text(
        json.dumps(
            {"format_version": CACHE_FORMAT_VERSION, "report": "chaos"}
        ),
        encoding="utf-8",
    )


# ----------------------------------------------------------------------
# Structured failure records
# ----------------------------------------------------------------------
@dataclass
class CellFailure:
    """Post-mortem of one quarantined matrix cell.

    Everything needed to diagnose the failure without re-running it:
    identity (app/label/content key), the final error's type, message
    and traceback, how many attempts were made, and the wall-clock time
    burned across all of them.
    """

    app: str
    label: str
    key: str
    error_type: str
    message: str
    traceback: str
    attempts: int
    elapsed: float

    def to_dict(self) -> dict:
        """JSON-ready form for the failure manifest."""
        return dataclasses.asdict(self)

    def summary(self) -> str:
        """One-line description for logs and exception messages."""
        return (
            f"{self.app}/{self.label}: {self.error_type}: {self.message} "
            f"({self.attempts} attempt(s), {self.elapsed:.1f}s)"
        )


def failure_manifest(failures: list[CellFailure]) -> dict:
    """The structured manifest serialized by the CLI (``--failures-out``)."""
    return {
        "failed_cells": len(failures),
        "failures": [f.to_dict() for f in failures],
    }


__all__ = [
    "CHAOS_EXIT_STATUS",
    "CellFailure",
    "ChaosCrash",
    "ENV_CHAOS",
    "FaultPlan",
    "FaultSpec",
    "HarnessError",
    "corrupt_blob",
    "failure_manifest",
]
