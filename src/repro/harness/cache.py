"""Persistent, content-addressed simulation result cache.

Every (workload, scale, seed, scheduler, GPU config, measure_error) cell
maps to a deterministic cache key: the SHA-256 of a canonical JSON
rendering of *all* configuration contents plus :data:`CACHE_FORMAT_VERSION`.
Results are stored as JSON blobs (``SimReport.to_dict``) under
``.repro-cache/<first-two-hex>/<key>.json``; a hit deserializes the report
and skips simulation entirely — across processes and sessions.

Invalidation is structural: changing any field of
:class:`~repro.config.scheduler.SchedulerConfig` or
:class:`~repro.config.gpu.GPUConfig` (including nested timing, energy,
mapping, and L2 sub-configs), the workload scale/seed, or the cache format
version yields a different key, so stale hits are impossible by
construction.

Controls:

* ``REPRO_NO_CACHE=1`` disables both lookups and stores;
* ``REPRO_CACHE_DIR`` relocates the cache root (default ``.repro-cache``);
* ``repro-harness cache clear`` wipes it from the command line.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from repro.config.gpu import GPUConfig
from repro.config.scheduler import SchedulerConfig
from repro.sim.report import SimReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.spec import SimSpec

#: Bump whenever the on-disk blob layout or simulator semantics change in
#: a way that invalidates previously stored results.
#: v2: BusUtilizationTracker serialises retained intervals + cursor index
#: (telemetry-safe windowed queries), and reports carry an optional
#: ``timeline`` section.
#: v3: keys carry the DRAM device name and the scheduler fingerprint
#: gained the composable-pipeline fields (``arbiter`` registry names,
#: ``hit_streak_cap``); v2 entries are plain misses.
#: v4: keys embed the *entire* ``SimSpec.to_dict()`` payload (closing
#: the silent-stale-cache class: every present and future spec field —
#: including the new ``ecc``/``faults`` sections and the previously
#: uncovered ``record_activations``/``telemetry`` flags — is hashed
#: automatically); v3 entries are plain misses.
CACHE_FORMAT_VERSION = 4

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_ENV_DISABLE = "REPRO_NO_CACHE"
_ENV_DIR = "REPRO_CACHE_DIR"


def _jsonable(value: Any) -> Any:
    """Canonical JSON-serializable form of a config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return value


def config_fingerprint(
    scheduler: SchedulerConfig, config: Optional[GPUConfig]
) -> dict:
    """Canonical dict of every field of both configuration trees."""
    return {
        "scheduler": _jsonable(scheduler),
        "gpu": _jsonable(config if config is not None else GPUConfig()),
    }


def cache_key(
    *,
    app: str,
    scale: float,
    seed: int,
    spec: Optional["SimSpec"] = None,
    scheduler: Optional[SchedulerConfig] = None,
    config: Optional[GPUConfig] = None,
    device: Optional[str] = None,
    measure_error: bool = False,
    version: int = CACHE_FORMAT_VERSION,
) -> str:
    """Content hash identifying one simulation cell.

    Preferred form: pass the full :class:`~repro.sim.spec.SimSpec` via
    ``spec=`` — the key embeds ``spec.to_dict()`` wholesale, so every
    spec field (present and future) is covered by construction; a field
    omitted from ``to_dict`` is the only way to miss, and
    ``tests/test_spec.py`` audits exactly that. The legacy keyword form
    (``scheduler``/``config``/``device``/``measure_error``) builds the
    equivalent spec and hashes identically.

    ``config=None`` hashes identically to the default :class:`GPUConfig`
    (that is what the simulator instantiates for it). ``device`` is the
    named DRAM device overlaying the config (None = config-embedded
    timings); it is part of the key even though a named device also
    changes the resolved config, so ``--device gddr5`` and the bare
    default stay distinguishable in the cache.
    """
    from repro.sim.spec import SimSpec

    if spec is None:
        if scheduler is None:
            raise TypeError(
                "cache_key requires either spec= or scheduler="
            )
        spec = SimSpec(
            scheduler=scheduler,
            device=device,
            config=config,
            measure_error=measure_error,
        )
    spec_payload = spec.to_dict()
    if spec_payload.get("config") is None:
        # Preserve the documented equivalence: config=None keys the
        # same as an explicit default GPUConfig.
        from repro.config.codec import encode

        spec_payload["config"] = encode(GPUConfig())
    payload = {
        "version": version,
        "app": app,
        "scale": scale,
        "seed": seed,
        "spec": spec_payload,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cache_disabled_by_env() -> bool:
    """Whether ``REPRO_NO_CACHE`` requests bypassing the disk cache."""
    return os.environ.get(_ENV_DISABLE, "").strip() not in ("", "0")


class ResultCache:
    """Content-addressed store of :class:`SimReport` blobs on disk.

    Instantiating the cache does not touch the filesystem; directories
    are created lazily on the first store.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        *,
        enabled: Optional[bool] = None,
    ) -> None:
        if root is None:
            root = os.environ.get(_ENV_DIR) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        if enabled is None:
            enabled = not cache_disabled_by_env()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Corrupt blobs discarded by :meth:`load` (self-healing events).
        self.quarantined = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Blob path for a cache key (two-level fan-out by key prefix)."""
        return self.root / key[:2] / f"{key}.json"

    def _discard_corrupt(self, path: Path) -> None:
        """Unlink a malformed blob so it cannot poison future runs.

        A corrupt entry (torn write survived a crash, disk error, or an
        injected ``corrupt`` fault) would otherwise turn *every*
        subsequent run of its cell into a hard failure; deleting it
        converts the damage into one extra simulation.
        """
        try:
            path.unlink()
        except OSError:
            pass
        self.quarantined += 1
        self.misses += 1

    def load(self, key: str) -> Optional[SimReport]:
        """Return the cached report for ``key``, or None on a miss.

        Malformed blobs self-heal: undecodable JSON, non-dict documents,
        a missing ``report`` section, or payloads
        :meth:`SimReport.from_dict` rejects are unlinked and counted in
        :attr:`quarantined`, then reported as a plain miss. A
        format-version mismatch is a miss but is *kept* on disk — the
        blob is healthy, just written by a different build.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                blob = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self._discard_corrupt(path)
            return None
        if not isinstance(blob, dict):
            self._discard_corrupt(path)
            return None
        if blob.get("format_version") != CACHE_FORMAT_VERSION:
            self.misses += 1
            return None
        try:
            report = SimReport.from_dict(blob["report"])
        except (KeyError, TypeError, ValueError, AttributeError):
            self._discard_corrupt(path)
            return None
        self.hits += 1
        return report

    def store(
        self,
        key: str,
        report: SimReport,
        *,
        meta: Optional[dict] = None,
    ) -> Optional[Path]:
        """Persist ``report`` under ``key``; returns the blob path.

        The blob is written to a temp file and atomically renamed so a
        concurrent reader never sees a torn write.

        ``meta`` is an optional JSON-serializable sidecar recorded next
        to the report (``{"app", "scale", "seed", "spec"}`` from the
        runner). The content key is a one-way hash, so without it the
        warehouse ingest could not recover which seed or device produced
        a blob. :meth:`load` ignores the extra key, so old and new blobs
        interoperate without a format-version bump.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = {
            "format_version": CACHE_FORMAT_VERSION,
            "workload": report.workload,
            "scheme": report.scheme,
            "report": report.to_dict(),
        }
        if meta is not None:
            blob["meta"] = meta
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(blob, fh, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """All blob paths currently in the cache.

        Tolerates another process mutating the cache concurrently (e.g.
        ``repro-harness cache clear`` mid-sweep): shard directories or
        blobs vanishing between listing steps are simply skipped, as are
        in-flight ``.tmp-*`` files from concurrent writers.
        """
        found: list[Path] = []
        try:
            shards = list(self.root.iterdir())
        except OSError:
            return []
        for shard in shards:
            try:
                found.extend(
                    p for p in shard.iterdir()
                    if p.suffix == ".json" and not p.name.startswith(".")
                )
            except (NotADirectoryError, OSError):
                continue
        return sorted(found)

    def iter_blobs(self):
        """Lazily yield ``(key, blob_dict, mtime, size_bytes)`` tuples.

        One blob is resident at a time, so a multi-thousand-entry cache
        can be traversed in constant memory — this is the shared walk
        under both :meth:`iter_entries` and the warehouse ingest.
        Corrupt blobs are quarantined exactly as in :meth:`load`;
        format-version mismatches are skipped but kept on disk (healthy,
        just written by a different build). Session hit/miss counters
        are *not* touched: a traversal is not a lookup.
        """
        for path in self.entries():
            try:
                stat = path.stat()
                with open(path, "r", encoding="utf-8") as fh:
                    blob = json.load(fh)
            except FileNotFoundError:
                continue  # concurrently cleared
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                try:
                    path.unlink()
                except OSError:
                    pass
                self.quarantined += 1
                continue
            if not isinstance(blob, dict):
                try:
                    path.unlink()
                except OSError:
                    pass
                self.quarantined += 1
                continue
            if blob.get("format_version") != CACHE_FORMAT_VERSION:
                continue
            yield path.stem, blob, stat.st_mtime, stat.st_size

    def iter_entries(self):
        """Lazily yield ``(content_key, SimReport, mtime)`` tuples.

        Blobs whose ``report`` section no longer deserializes are
        quarantined (unlinked + counted), matching :meth:`load`.
        """
        for key, blob, mtime, _size in self.iter_blobs():
            try:
                report = SimReport.from_dict(blob["report"])
            except (KeyError, TypeError, ValueError, AttributeError):
                try:
                    self.path_for(key).unlink()
                except OSError:
                    pass
                self.quarantined += 1
                continue
            yield key, report, mtime

    def size_bytes(self) -> int:
        """Total bytes occupied by cached blobs.

        Blobs deleted between listing and ``stat`` (concurrent clear)
        count as zero instead of raising ``FileNotFoundError``.
        """
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def info(self, *, deep: bool = False) -> dict:
        """Machine-readable snapshot of the cache (one atomic listing).

        ``entries`` and ``size_bytes`` are derived from a *single*
        traversal, so they describe the same instant even when another
        process is storing or clearing concurrently — calling
        :meth:`entries` and :meth:`size_bytes` separately could report a
        count and a byte total from two different cache states. Session
        counters (hits/misses/stores/quarantined) describe this
        process's cache object, not the directory.

        ``deep=True`` rides the same :meth:`iter_blobs` walk the
        warehouse ingest uses and additionally reports per-workload and
        per-scheme entry counts (``workloads``/``schemes`` maps, sorted
        keys); entries written under a different format version are
        excluded, so deep counts reflect what ingest would see.
        """
        total = 0
        count = 0
        if deep:
            workloads: dict[str, int] = {}
            schemes: dict[str, int] = {}
            for _key, blob, _mtime, size in self.iter_blobs():
                count += 1
                total += size
                workload = str(blob.get("workload", "?"))
                scheme = str(blob.get("scheme", "?"))
                workloads[workload] = workloads.get(workload, 0) + 1
                schemes[scheme] = schemes.get(scheme, 0) + 1
        else:
            for path in self.entries():
                count += 1
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        doc = {
            "root": str(self.root),
            "enabled": self.enabled,
            "format_version": CACHE_FORMAT_VERSION,
            "entries": count,
            "size_bytes": total,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
        }
        if deep:
            doc["workloads"] = dict(sorted(workloads.items()))
            doc["schemes"] = dict(sorted(schemes.items()))
        return doc

    def clear(self) -> int:
        """Delete every cached blob; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        # Prune now-empty shard directories (ignore stray files).
        if self.root.is_dir():
            for shard in self.root.iterdir():
                if shard.is_dir():
                    try:
                        shard.rmdir()
                    except OSError:
                        pass
        return removed
