"""Experiment harness: schemes, runner, and per-figure experiments."""

from repro.harness.experiments import EXPERIMENTS, ExperimentResult
from repro.harness.runner import Runner
from repro.harness.schemes import (
    ams_only,
    dms_only,
    dms_plus_ams,
    evaluation_schemes,
)
from repro.harness.tables import format_table, geomean

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "Runner",
    "ams_only",
    "dms_only",
    "dms_plus_ams",
    "evaluation_schemes",
    "format_table",
    "geomean",
]
