"""Experiment runner: simulate (workload x scheme) matrices fast — and
survive partial failure while doing it.

Three layers keep repeated figure reproductions cheap:

1. **In-process memoization** — results are keyed by the *content* of the
   cell (workload, scale, seed, full scheduler + GPU config,
   measure_error), so two experiments that request the same baseline
   under different labels share one simulation.
2. **Persistent disk cache** (:mod:`repro.harness.cache`) — the same
   content key addresses a JSON blob under ``.repro-cache/``; a warm
   cache replays a whole matrix with zero simulations, across processes
   and sessions. ``REPRO_NO_CACHE=1`` bypasses it.
3. **Parallel execution** — ``Runner(jobs=N)`` fans the independent
   cells of :meth:`Runner.run_matrix` out over a persistent
   :class:`~repro.harness.pool.WarmPool`: workers import the simulation
   stack once, receive cells *batched* over the codec wire format, and
   survive across ``run_matrix`` calls (so a benchmark loop pays the
   spawn cost once — :meth:`Runner.prewarm` pays it ahead of timing).
   ``Runner(threads=True)`` runs the same fan-out on threads instead of
   processes — no serialization at all, useful for cache-dominated or
   tiny matrices. Cells are deduplicated by content key before
   dispatch, and every cell (serial or parallel) resets its thread's
   request-id counter first, so serial, process-parallel, thread-
   parallel, and cached runs produce field-identical reports.

On top of those sits the **fault-tolerance layer** (DESIGN goal: a
single crashed or hung worker must not throw away a whole sweep):

* every cell gets up to ``1 + retries`` attempts, retried after a
  deterministic (jitter-free) exponential backoff of
  ``retry_backoff * 2**(attempt-1)`` seconds;
* ``cell_timeout`` bounds each attempt's wall-clock time — the pool
  kills *exactly* the worker hosting the expired cell and respawns it;
  innocent in-flight cells keep running undisturbed (the seed executor
  could only tear down the whole pool);
* a dead worker fails its own in-flight cells with a
  :class:`~repro.errors.WorkerCrashError` attempt each and its slot is
  respawned automatically (counted in ``harness.pool_rebuilds``);
  other workers are untouched;
* cells that exhaust their retries are quarantined into structured
  :class:`~repro.harness.faults.CellFailure` records. With
  ``keep_going`` the matrix still returns every healthy cell (a
  :class:`MatrixResult` carrying the failure manifest); without it the
  run raises :class:`~repro.errors.CellFailedError` at the end of the
  sweep;
* the whole layer is exercised by deterministic fault injection
  (:class:`~repro.harness.faults.FaultPlan`, ``REPRO_CHAOS``) threaded
  through :func:`_simulate_cell` into the worker processes, and audited
  by :class:`~repro.telemetry.hub.MetricsHub` counters
  (``harness.retries``, ``harness.timeouts``, ``harness.pool_rebuilds``,
  ``harness.cells.quarantined``, ...).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
import time
import traceback as traceback_mod
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from typing import Deque, Iterable, Optional

from repro.config.faults import FaultConfig
from repro.config.gpu import GPUConfig
from repro.config.scheduler import SchedulerConfig
from repro.dram.request import reset_request_ids
from repro.errors import CellFailedError, CellTimeoutError, WorkerCrashError
from repro.harness.cache import ResultCache, cache_key
from repro.harness.faults import CellFailure, FaultPlan, corrupt_blob
from repro.harness.pool import WarmPool
from repro.config.tenants import TenantMixSpec
from repro.sim.report import SimReport
from repro.sim.spec import SimSpec
from repro.sim.system import GPUSystem, simulate_spec
from repro.telemetry.hub import (
    DEFAULT_WINDOW_CYCLES,
    HARNESS_CHAOS_CORRUPTED,
    HARNESS_FAILED_ATTEMPTS,
    HARNESS_POOL_REBUILDS,
    HARNESS_QUARANTINED,
    HARNESS_RETRIES,
    HARNESS_SIMULATED,
    HARNESS_TIMEOUTS,
    HARNESS_WORKER_CRASHES,
    MetricsHub,
)
from repro.workloads.registry import get_workload

#: Stack frames kept per cell by the ``--profile`` capture (sorted by
#: cumulative time; enough to see the scheduler/engine split without
#: drowning the report).
PROFILE_TOP_N = 30


@dataclass(frozen=True)
class CellSpec:
    """Everything needed to simulate one matrix cell in any process:
    the workload coordinates plus a :class:`~repro.sim.spec.SimSpec`."""

    app: str
    scale: float
    seed: int
    config: Optional[GPUConfig]
    scheme: SchedulerConfig
    measure_error: bool
    device: Optional[str] = None
    #: Registered ECC code protecting DRAM reads.
    ecc: str = "none"
    #: DRAM bit-flip fault model (None = disabled).
    faults: Optional[FaultConfig] = None
    #: Keep per-channel activation logs on the report (service jobs may
    #: turn this off; the CLI runner always leaves it on).
    record_activations: bool = True
    #: Multi-tenant mix; when set, ``app`` only labels the cell — the
    #: simulated trace is the mix's own workload roster.
    tenants: Optional[TenantMixSpec] = None

    @property
    def sim_spec(self) -> SimSpec:
        """The :class:`SimSpec` describing how this cell simulates."""
        return SimSpec(
            scheduler=self.scheme,
            device=self.device,
            config=self.config,
            measure_error=self.measure_error,
            record_activations=self.record_activations,
            ecc=self.ecc,
            faults=self.faults if self.faults is not None else FaultConfig(),
            tenants=self.tenants,
        )

    @property
    def key(self) -> str:
        """Content-addressed cache key of this cell."""
        return cache_key(
            app=self.app,
            scale=self.scale,
            seed=self.seed,
            spec=self.sim_spec,
        )

    @property
    def cache_meta(self) -> dict:
        """Sidecar metadata stored next to the report blob.

        The cache key is a one-way hash, so this is the only record of
        which (app, scale, seed, spec) produced a blob — the results
        warehouse ingests it to fill its seed/device/ecc columns.
        """
        return {
            "app": self.app,
            "scale": self.scale,
            "seed": self.seed,
            "spec": self.sim_spec.to_dict(),
        }


def _simulate_cell(
    spec: CellSpec,
    *,
    faults: Optional[FaultPlan] = None,
    cell_index: Optional[int] = None,
    attempt: int = 1,
    in_worker: bool = False,
) -> tuple[SimReport, float]:
    """Simulate one cell from scratch; returns (report, elapsed seconds).

    Runs identically in the parent process and in pool workers: the
    global request-id counter is re-seeded so request/drop ids — and
    therefore the full report — depend only on the cell itself, not on
    what simulated before it in the same process.

    When a :class:`FaultPlan` is threaded through (chaos testing), its
    crash/exit/hang faults fire here — before any simulation state is
    touched — so an injected failure is indistinguishable from a real
    one to the supervising runner.
    """
    if faults is not None and cell_index is not None:
        faults.fire_pre_simulation(cell_index, attempt, in_worker=in_worker)
    reset_request_ids()
    if spec.tenants is not None:
        from repro.workloads.tenant_mix import TenantMix

        workload = TenantMix(
            spec.tenants, scale=spec.scale, seed=spec.seed
        )
    else:
        workload = get_workload(spec.app, scale=spec.scale, seed=spec.seed)
    start = time.perf_counter()
    report = simulate_spec(workload, spec.sim_spec)
    return report, time.perf_counter() - start


@dataclass
class _CellTask:
    """Mutable supervision state of one deduplicated matrix cell."""

    key: str
    spec: CellSpec
    label: str
    index: int
    #: Completed (failed) attempts so far; the next attempt is +1.
    attempts: int = 0
    #: Monotonic time before which the task must not be (re)dispatched.
    next_ready: float = 0.0
    #: Wall-clock seconds burned across all failed attempts.
    elapsed: float = 0.0
    last_error: Optional[BaseException] = None
    last_traceback: str = ""

    def record_error(self, exc: BaseException, elapsed: float) -> None:
        self.attempts += 1
        self.elapsed += elapsed
        self.last_error = exc
        self.last_traceback = "".join(
            traceback_mod.format_exception(type(exc), exc, exc.__traceback__)
        )

    def to_failure(self) -> CellFailure:
        exc = self.last_error
        return CellFailure(
            app=self.spec.app,
            label=self.label,
            key=self.key,
            error_type=type(exc).__name__ if exc is not None else "Unknown",
            message=str(exc) if exc is not None else "",
            traceback=self.last_traceback,
            attempts=self.attempts,
            elapsed=self.elapsed,
        )


class MatrixResult(dict):
    """``run_matrix`` result: a cell->report mapping plus failures.

    Behaves exactly like the plain dict it used to be for healthy
    matrices. Under ``keep_going`` quarantined cells are *absent* from
    the mapping and described in :attr:`failures`; indexing a failed
    cell raises :class:`~repro.errors.CellFailedError` (so experiment
    code fails loudly and specifically, not with a bare ``KeyError``),
    while ``.get()`` still returns ``None`` for callers that probe.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Quarantined cells of this call, in dispatch order.
        self.failures: list[CellFailure] = []
        #: (app, label) -> CellFailure for every missing cell.
        self.failed_cells: dict[tuple[str, str], CellFailure] = {}

    @property
    def ok(self) -> bool:
        """True when every requested cell produced a report."""
        return not self.failures

    def __missing__(self, cell):
        failure = self.failed_cells.get(cell)
        if failure is not None:
            raise CellFailedError(
                f"matrix cell {cell} was quarantined: {failure.summary()}",
                failures=[failure],
            )
        raise KeyError(cell)


@dataclass
class Runner:
    """Runs simulations with memoization, disk caching, parallelism, and
    supervised fault tolerance.

    ``jobs`` controls matrix fan-out (1 = serial in-process; N > 1 uses a
    persistent :class:`~repro.harness.pool.WarmPool` of N workers that
    survives across ``run_matrix`` calls — :meth:`prewarm` spins it up
    ahead of time). ``threads=True`` swaps the worker processes for
    threads (no pickling/fork cost; ignored while a ``cell_timeout`` is
    armed, because a thread cannot be killed). ``profile=True`` wraps
    every in-process cell in :mod:`cProfile` and collects the top
    cumulative frames into :attr:`profiles` (forces serial execution —
    a worker process cannot be profiled from the parent).
    ``cache=None`` disables the persistent disk layer; the default
    honours ``REPRO_NO_CACHE``/``REPRO_CACHE_DIR``.

    Fault-tolerance knobs (see the module docstring):

    * ``retries`` — extra attempts per failing cell (total ``1+retries``);
    * ``retry_backoff`` — base of the deterministic exponential backoff;
    * ``cell_timeout`` — per-attempt wall-clock bound in seconds.
      Setting it forces matrix cells through the supervised pool even at
      ``jobs=1`` (an in-process cell cannot be preempted);
    * ``keep_going`` — return partial :class:`MatrixResult` instead of
      raising :class:`~repro.errors.CellFailedError`;
    * ``faults`` — chaos plan (defaults to ``$REPRO_CHAOS``).
    """

    scale: float = 1.0
    seed: int = 7
    config: Optional[GPUConfig] = None
    #: Named DRAM device overlaying ``config`` (None = config-embedded).
    device: Optional[str] = None
    #: Registered ECC code protecting DRAM reads in every cell.
    ecc: str = "none"
    #: DRAM bit-flip fault model for every cell (None = disabled).
    #: Distinct from :attr:`faults`, which is the harness *chaos* plan.
    fault_model: Optional[FaultConfig] = None
    #: Multi-tenant mix applied to every cell (None = single-workload).
    tenants: Optional[TenantMixSpec] = None
    verbose: bool = True
    jobs: int = 1
    #: Use worker threads instead of processes for matrix fan-out.
    threads: bool = False
    #: Capture a cProfile per simulated cell (serial runs only).
    profile: bool = False
    cache: Optional[ResultCache] = field(default_factory=ResultCache)
    retries: int = 1
    retry_backoff: float = 0.05
    cell_timeout: Optional[float] = None
    keep_going: bool = False
    faults: Optional[FaultPlan] = field(default_factory=FaultPlan.from_env)
    metrics: MetricsHub = field(default_factory=MetricsHub)
    #: Cells simulated (not served from memo/disk) over this runner's life.
    simulations_run: int = 0
    #: Every quarantined cell over this runner's life (the manifest the
    #: CLI serializes). Sub-runners share the parent's list.
    failures: list[CellFailure] = field(default_factory=list)
    #: ``--profile`` captures: {"app", "label", "stats"} per cell.
    profiles: list[dict] = field(default_factory=list)
    _memo: dict[str, SimReport] = field(default_factory=dict)
    _pool: Optional[WarmPool] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def _spec(
        self, app: str, scheme: SchedulerConfig, measure_error: bool
    ) -> CellSpec:
        return CellSpec(
            app=app,
            scale=self.scale,
            seed=self.seed,
            config=self.config,
            scheme=scheme,
            measure_error=measure_error,
            device=self.device,
            ecc=self.ecc,
            faults=self.fault_model,
            tenants=self.tenants,
        )

    def _log(self, app: str, label: str, detail: str) -> None:
        if self.verbose:
            print(f"  [{app} / {label}] {detail}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Warm worker pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self, workers: int) -> WarmPool:
        """The persistent pool, (re)built only when it must grow or
        change mode — a larger pool than requested is reused as-is,
        since idle warm workers are cheaper than a rebuild."""
        threads = self.threads and self.cell_timeout is None
        pool = self._pool
        if pool is not None and (
            pool.closed or pool.size < workers or pool.threads != threads
        ):
            pool.shutdown()
            pool = None
        if pool is None:
            inc = self.metrics.inc
            pool = WarmPool(
                workers,
                threads=threads,
                on_rebuild=lambda: inc(HARNESS_POOL_REBUILDS),
            )
            self._pool = pool
            # The pool outlives individual matrices by design; tie its
            # lifetime to the runner's so an abandoned runner does not
            # leak worker processes.
            weakref.finalize(self, pool.shutdown)
        return pool

    def prewarm(self, jobs: Optional[int] = None) -> None:
        """Spawn the worker pool ahead of ``run_matrix`` so the first
        timed sweep does not pay process start-up and import costs."""
        jobs = self.jobs if jobs is None else jobs
        if jobs > 1 or self.cell_timeout is not None:
            self._ensure_pool(max(1, jobs))

    def close(self) -> None:
        """Shut the warm pool down (idempotent). The runner stays
        usable — the next pooled matrix simply rebuilds the pool."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # ------------------------------------------------------------------
    def _simulate_inline(
        self,
        spec: CellSpec,
        label: str,
        *,
        faults: Optional[FaultPlan] = None,
        cell_index: Optional[int] = None,
        attempt: int = 1,
    ) -> tuple[SimReport, float]:
        """In-process simulation, optionally under the profiler."""
        if not self.profile:
            return _simulate_cell(
                spec, faults=faults, cell_index=cell_index, attempt=attempt
            )
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _simulate_cell(
                spec, faults=faults, cell_index=cell_index, attempt=attempt
            )
        finally:
            profiler.disable()
            buffer = io.StringIO()
            stats = pstats.Stats(profiler, stream=buffer)
            stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
            self.profiles.append(
                {"app": spec.app, "label": label,
                 "stats": buffer.getvalue()}
            )

    def _finish(
        self, key: str, spec: CellSpec, label: str,
        report: SimReport, elapsed: float,
        chaos_index: Optional[int] = None,
    ) -> SimReport:
        """Account, log, memoize, and persist one freshly simulated cell."""
        self.simulations_run += 1
        self.metrics.inc(HARNESS_SIMULATED)
        self._log(
            spec.app, label,
            f"{elapsed:.1f}s, acts={report.activations}, "
            f"ipc={report.ipc:.2f}",
        )
        self._memo[key] = report
        if self.cache is not None:
            path = self.cache.store(key, report, meta=spec.cache_meta)
            if (
                path is not None
                and self.faults is not None
                and chaos_index is not None
                and self.faults.should_corrupt(chaos_index)
            ):
                corrupt_blob(path)
                self.metrics.inc(HARNESS_CHAOS_CORRUPTED)
                self._log(spec.app, label, "chaos: corrupted cache blob")
        return report

    # ------------------------------------------------------------------
    def run(
        self,
        app: str,
        scheme: SchedulerConfig,
        *,
        label: Optional[str] = None,
        measure_error: bool = False,
    ) -> SimReport:
        """Simulate one (app, scheme) cell, using every cache layer."""
        label = label or scheme.name
        spec = self._spec(app, scheme, measure_error)
        key = spec.key
        report = self._memo.get(key)
        if report is not None:
            return report
        if self.cache is not None:
            report = self.cache.load(key)
            if report is not None:
                self._log(app, label, "disk cache hit")
                self._memo[key] = report
                return report
        report, elapsed = self._simulate_inline(spec, label)
        return self._finish(key, spec, label, report, elapsed)

    # ------------------------------------------------------------------
    def run_traced(
        self,
        app: str,
        scheme: SchedulerConfig,
        *,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        log_commands: bool = True,
    ) -> tuple[SimReport, GPUSystem, MetricsHub]:
        """Simulate one cell with full observability attached.

        Returns ``(report, system, hub)``: the report carries the
        windowed ``timeline``, the system retains the per-channel DRAM
        command logs (for the Chrome trace exporter), and the hub holds
        the named counters/gauges. Traced runs always simulate from
        scratch — command logs live on the system, not in the report,
        so neither the memo nor the disk cache can serve them — but the
        report itself is still deterministic and field-identical (minus
        ``timeline``) to an untraced run of the same cell.
        """
        reset_request_ids()
        if self.tenants is not None:
            from repro.workloads.tenant_mix import TenantMix

            workload = TenantMix(
                self.tenants, scale=self.scale, seed=self.seed
            )
        else:
            workload = get_workload(app, scale=self.scale, seed=self.seed)
        hub = MetricsHub(window_cycles=window_cycles)
        system = GPUSystem.from_spec(
            SimSpec(
                scheduler=scheme, device=self.device, config=self.config,
                ecc=self.ecc,
                faults=(
                    self.fault_model if self.fault_model is not None
                    else FaultConfig()
                ),
                tenants=self.tenants,
            ),
            log_commands=log_commands,
            telemetry=hub,
        )
        start = time.perf_counter()
        report = system.run(
            workload.warp_streams(system.config),
            workload_name=workload.name,
            stream_tenants=getattr(workload, "stream_tenants", None),
        )
        self.simulations_run += 1
        self._log(
            app, scheme.name,
            f"traced in {time.perf_counter() - start:.1f}s, "
            f"{len(report.timeline or [])} windows",
        )
        return report, system, hub

    # ------------------------------------------------------------------
    def run_matrix(
        self,
        apps: Iterable[str],
        schemes: dict[str, SchedulerConfig],
        *,
        measure_error: bool = False,
        jobs: Optional[int] = None,
        keep_going: Optional[bool] = None,
    ) -> MatrixResult:
        """Simulate every (app, scheme) pair.

        Cells sharing a content key (e.g. a baseline reused by several
        experiments) are deduplicated before dispatch and simulated once.
        With ``jobs > 1`` the deduplicated cells run concurrently in a
        process pool; results are identical to a serial run — including
        after retries, timeouts, and pool rebuilds, because every
        attempt re-seeds the request-id counter and simulates from
        scratch.

        A cell that fails all ``1 + retries`` attempts is quarantined.
        With ``keep_going`` (argument overrides the runner default) the
        returned :class:`MatrixResult` carries every healthy cell plus
        the failure manifest; otherwise the sweep still *completes* the
        remaining cells and then raises
        :class:`~repro.errors.CellFailedError`.
        """
        jobs = self.jobs if jobs is None else jobs
        keep_going = self.keep_going if keep_going is None else keep_going
        cells: dict[tuple[str, str], str] = {}
        specs: dict[str, tuple[CellSpec, str]] = {}
        for app in apps:
            for label, scheme in schemes.items():
                error = measure_error and scheme.ams.mode.value != "off"
                spec = self._spec(app, scheme, error)
                key = spec.key
                cells[(app, label)] = key
                # First label wins for logging; the report is identical.
                specs.setdefault(key, (spec, label))
        todo: dict[str, tuple[CellSpec, str]] = {}
        for key, (spec, label) in specs.items():
            if key in self._memo:
                continue
            if self.cache is not None:
                cached = self.cache.load(key)
                if cached is not None:
                    self._log(spec.app, label, "disk cache hit")
                    self._memo[key] = cached
                    continue
            todo[key] = (spec, label)
        failures: list[CellFailure] = []
        if todo:
            tasks = [
                _CellTask(key=key, spec=spec, label=label, index=i)
                for i, (key, (spec, label)) in enumerate(todo.items())
            ]
            use_pool = (
                not self.profile  # workers cannot be profiled from here
                and (
                    (jobs > 1 and len(tasks) > 1)
                    or self.cell_timeout is not None
                )
            )
            if use_pool:
                failures = self._run_supervised(tasks, max(jobs, 1))
            else:
                failures = self._run_serial(tasks)
            self.failures.extend(failures)
        result = MatrixResult()
        result.failures = failures
        failed_by_key = {f.key: f for f in failures}
        for cell, key in cells.items():
            if key in self._memo:
                result[cell] = self._memo[key]
            elif key in failed_by_key:
                result.failed_cells[cell] = failed_by_key[key]
        if failures and not keep_going:
            raise CellFailedError(
                f"{len(failures)} matrix cell(s) failed after retries: "
                + "; ".join(f.summary() for f in failures),
                failures=failures,
            )
        return result

    # ------------------------------------------------------------------
    # Attempt bookkeeping shared by the serial and pooled paths
    # ------------------------------------------------------------------
    def _backoff_delay(self, task: _CellTask) -> float:
        """Deterministic exponential backoff — no jitter, by design:
        reproducibility of a chaos run matters more here than the
        thundering-herd protection jitter buys on shared services."""
        return self.retry_backoff * (2.0 ** (task.attempts - 1))

    def _charge_attempt(
        self,
        task: _CellTask,
        exc: BaseException,
        elapsed: float,
        failures: list[CellFailure],
    ) -> bool:
        """Record a failed attempt; returns True when the cell should be
        retried (False = quarantined into ``failures``)."""
        task.record_error(exc, elapsed)
        self.metrics.inc(HARNESS_FAILED_ATTEMPTS)
        if isinstance(exc, CellTimeoutError):
            self.metrics.inc(HARNESS_TIMEOUTS)
        if isinstance(exc, WorkerCrashError):
            self.metrics.inc(HARNESS_WORKER_CRASHES)
        if task.attempts > self.retries:
            failure = task.to_failure()
            failures.append(failure)
            self.metrics.inc(HARNESS_QUARANTINED)
            self._log(
                task.spec.app, task.label,
                f"quarantined: {failure.error_type}: {failure.message}",
            )
            return False
        self.metrics.inc(HARNESS_RETRIES)
        self._log(
            task.spec.app, task.label,
            f"attempt {task.attempts} failed ({type(exc).__name__}: {exc}); "
            f"retrying in {self._backoff_delay(task):.2f}s",
        )
        return True

    def _run_serial(self, tasks: list[_CellTask]) -> list[CellFailure]:
        """In-process execution with retries (no preemption, no timeout)."""
        failures: list[CellFailure] = []
        for task in tasks:
            while True:
                start = time.perf_counter()
                try:
                    report, elapsed = self._simulate_inline(
                        task.spec,
                        task.label,
                        faults=self.faults,
                        cell_index=task.index,
                        attempt=task.attempts + 1,
                    )
                except Exception as exc:
                    wasted = time.perf_counter() - start
                    if not self._charge_attempt(
                        task, exc, wasted, failures
                    ):
                        break
                    time.sleep(self._backoff_delay(task))
                else:
                    self._finish(
                        task.key, task.spec, task.label, report, elapsed,
                        chaos_index=task.index,
                    )
                    break
        return failures

    # ------------------------------------------------------------------
    # Supervised warm-worker pool
    # ------------------------------------------------------------------
    def _run_supervised(
        self, tasks: list[_CellTask], jobs: int
    ) -> list[CellFailure]:
        """Fan cells out over the persistent, self-healing warm pool.

        Two dispatch regimes:

        * no ``cell_timeout`` — the whole queue is dispatched at once,
          batched one pipe message per worker, and results stream back
          as they complete;
        * with a ``cell_timeout`` — at most ``workers`` cells are in
          flight, each on its own worker (the pool assigns
          least-loaded), so every submitted future is actually
          *running* and ``submit time + cell_timeout`` is an accurate
          kill deadline. A breached deadline kills exactly the worker
          hosting the expired cell; innocent in-flight neighbours keep
          running undisturbed.

        A worker that dies fails only its own in-flight futures (as
        :class:`~repro.errors.WorkerCrashError` attempts, charged here
        through the ordinary retry path) and its slot respawns inside
        the pool — there is no whole-pool teardown to recover from.
        """
        failures: list[CellFailure] = []
        workers = max(1, min(jobs, len(tasks)))
        pool = self._ensure_pool(workers)
        queue: Deque[_CellTask] = deque(tasks)
        running: dict = {}  # future -> (task, submit_time, deadline)
        limit = workers if self.cell_timeout is not None else len(tasks)

        def submit_ready(now: float) -> None:
            batch: list[_CellTask] = []
            scanned = 0
            while (
                queue
                and len(running) + len(batch) < limit
                and scanned < len(queue)
            ):
                task = queue.popleft()
                if task.next_ready > now:
                    queue.append(task)
                    scanned += 1
                    continue
                batch.append(task)
            if not batch:
                return
            futures = pool.submit_many([
                (
                    task.key, task.spec, self.faults,
                    task.index, task.attempts + 1,
                )
                for task in batch
            ])
            deadline = (
                now + self.cell_timeout
                if self.cell_timeout is not None else None
            )
            for task, future in zip(batch, futures):
                running[future] = (task, now, deadline)

        def requeue(task: _CellTask, delay: float) -> None:
            task.next_ready = time.monotonic() + delay
            queue.append(task)

        def fail_attempt(
            task: _CellTask, exc: BaseException, elapsed: float
        ) -> None:
            if self._charge_attempt(task, exc, elapsed, failures):
                requeue(task, self._backoff_delay(task))

        while queue or running:
            now = time.monotonic()
            submit_ready(now)
            if not running:
                # Nothing in flight: sleep until the earliest retry.
                wake = min(task.next_ready for task in queue)
                time.sleep(max(0.0, wake - now))
                continue
            wait_for: list[float] = []
            deadlines = [
                dl for (_, _, dl) in running.values() if dl is not None
            ]
            if deadlines:
                wait_for.append(min(deadlines) - now)
            if queue and len(running) < limit:
                wait_for.append(
                    min(t.next_ready for t in queue) - now
                )
            timeout = max(0.0, min(wait_for)) if wait_for else None
            done, _ = wait(
                set(running), timeout=timeout,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            for future in done:
                task, submitted, _ = running.pop(future)
                try:
                    key, report, elapsed = future.result()
                except Exception as exc:
                    # Includes WorkerCrashError set by the pool when a
                    # worker died: only that worker's cells land here,
                    # and its slot has already respawned.
                    fail_attempt(task, exc, now - submitted)
                else:
                    self._finish(
                        key, task.spec, task.label, report, elapsed,
                        chaos_index=task.index,
                    )
            if not done:
                expired = [
                    (future, task, submitted)
                    for future, (task, submitted, dl) in running.items()
                    if dl is not None and dl <= now and not future.done()
                ]
                for future, task, submitted in expired:
                    del running[future]
                    # Surgical kill: only the hung cell's worker dies
                    # (and respawns); the future was detached above, so
                    # the one charged attempt is the timeout below.
                    pool.kill_owner(future)
                    fail_attempt(
                        task,
                        CellTimeoutError(
                            f"{task.spec.app}/{task.label} exceeded "
                            f"the {self.cell_timeout:.1f}s per-cell "
                            "wall-clock timeout"
                        ),
                        now - submitted,
                    )
        return failures
