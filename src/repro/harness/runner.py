"""Experiment runner: simulate (workload x scheme) matrices fast.

Three layers keep repeated figure reproductions cheap:

1. **In-process memoization** — results are keyed by the *content* of the
   cell (workload, scale, seed, full scheduler + GPU config,
   measure_error), so two experiments that request the same baseline
   under different labels share one simulation.
2. **Persistent disk cache** (:mod:`repro.harness.cache`) — the same
   content key addresses a JSON blob under ``.repro-cache/``; a warm
   cache replays a whole matrix with zero simulations, across processes
   and sessions. ``REPRO_NO_CACHE=1`` bypasses it.
3. **Parallel execution** — ``Runner(jobs=N)`` fans the independent
   cells of :meth:`Runner.run_matrix` out over a
   :class:`~concurrent.futures.ProcessPoolExecutor`. Cells are
   deduplicated by content key before dispatch, and every cell (serial
   or parallel) resets the global request-id counter first, so serial,
   parallel, and cached runs produce field-identical reports.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.config.gpu import GPUConfig
from repro.config.scheduler import SchedulerConfig
from repro.dram.request import reset_request_ids
from repro.harness.cache import ResultCache, cache_key
from repro.sim.report import SimReport
from repro.sim.system import GPUSystem, simulate
from repro.telemetry.hub import DEFAULT_WINDOW_CYCLES, MetricsHub
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class CellSpec:
    """Everything needed to simulate one matrix cell in any process."""

    app: str
    scale: float
    seed: int
    config: Optional[GPUConfig]
    scheme: SchedulerConfig
    measure_error: bool

    @property
    def key(self) -> str:
        """Content-addressed cache key of this cell."""
        return cache_key(
            app=self.app,
            scale=self.scale,
            seed=self.seed,
            scheduler=self.scheme,
            config=self.config,
            measure_error=self.measure_error,
        )


def _simulate_cell(spec: CellSpec) -> tuple[SimReport, float]:
    """Simulate one cell from scratch; returns (report, elapsed seconds).

    Runs identically in the parent process and in pool workers: the
    global request-id counter is re-seeded so request/drop ids — and
    therefore the full report — depend only on the cell itself, not on
    what simulated before it in the same process.
    """
    reset_request_ids()
    workload = get_workload(spec.app, scale=spec.scale, seed=spec.seed)
    start = time.perf_counter()
    report = simulate(
        workload,
        scheduler=spec.scheme,
        config=spec.config,
        measure_error=spec.measure_error,
    )
    return report, time.perf_counter() - start


def _simulate_cell_worker(
    item: tuple[str, CellSpec]
) -> tuple[str, SimReport, float]:
    """Pool entry point: tags the result with its cache key."""
    key, spec = item
    report, elapsed = _simulate_cell(spec)
    return key, report, elapsed


@dataclass
class Runner:
    """Runs simulations with memoization, disk caching, and parallelism.

    ``jobs`` controls matrix fan-out (1 = serial in-process; N > 1 uses a
    process pool of N workers). ``cache=None`` disables the persistent
    disk layer; the default honours ``REPRO_NO_CACHE``/``REPRO_CACHE_DIR``.
    """

    scale: float = 1.0
    seed: int = 7
    config: Optional[GPUConfig] = None
    verbose: bool = True
    jobs: int = 1
    cache: Optional[ResultCache] = field(default_factory=ResultCache)
    #: Cells simulated (not served from memo/disk) over this runner's life.
    simulations_run: int = 0
    _memo: dict[str, SimReport] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _spec(
        self, app: str, scheme: SchedulerConfig, measure_error: bool
    ) -> CellSpec:
        return CellSpec(
            app=app,
            scale=self.scale,
            seed=self.seed,
            config=self.config,
            scheme=scheme,
            measure_error=measure_error,
        )

    def _log(self, app: str, label: str, detail: str) -> None:
        if self.verbose:
            print(f"  [{app} / {label}] {detail}", file=sys.stderr)

    def _finish(
        self, key: str, spec: CellSpec, label: str,
        report: SimReport, elapsed: float,
    ) -> SimReport:
        """Account, log, memoize, and persist one freshly simulated cell."""
        self.simulations_run += 1
        self._log(
            spec.app, label,
            f"{elapsed:.1f}s, acts={report.activations}, "
            f"ipc={report.ipc:.2f}",
        )
        self._memo[key] = report
        if self.cache is not None:
            self.cache.store(key, report)
        return report

    # ------------------------------------------------------------------
    def run(
        self,
        app: str,
        scheme: SchedulerConfig,
        *,
        label: Optional[str] = None,
        measure_error: bool = False,
    ) -> SimReport:
        """Simulate one (app, scheme) cell, using every cache layer."""
        label = label or scheme.name
        spec = self._spec(app, scheme, measure_error)
        key = spec.key
        report = self._memo.get(key)
        if report is not None:
            return report
        if self.cache is not None:
            report = self.cache.load(key)
            if report is not None:
                self._log(app, label, "disk cache hit")
                self._memo[key] = report
                return report
        report, elapsed = _simulate_cell(spec)
        return self._finish(key, spec, label, report, elapsed)

    # ------------------------------------------------------------------
    def run_traced(
        self,
        app: str,
        scheme: SchedulerConfig,
        *,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        log_commands: bool = True,
    ) -> tuple[SimReport, GPUSystem, MetricsHub]:
        """Simulate one cell with full observability attached.

        Returns ``(report, system, hub)``: the report carries the
        windowed ``timeline``, the system retains the per-channel DRAM
        command logs (for the Chrome trace exporter), and the hub holds
        the named counters/gauges. Traced runs always simulate from
        scratch — command logs live on the system, not in the report,
        so neither the memo nor the disk cache can serve them — but the
        report itself is still deterministic and field-identical (minus
        ``timeline``) to an untraced run of the same cell.
        """
        reset_request_ids()
        workload = get_workload(app, scale=self.scale, seed=self.seed)
        hub = MetricsHub(window_cycles=window_cycles)
        system = GPUSystem(
            config=self.config,
            scheduler=scheme,
            log_commands=log_commands,
            telemetry=hub,
        )
        start = time.perf_counter()
        report = system.run(
            workload.warp_streams(system.config),
            workload_name=workload.name,
        )
        self.simulations_run += 1
        self._log(
            app, scheme.name,
            f"traced in {time.perf_counter() - start:.1f}s, "
            f"{len(report.timeline or [])} windows",
        )
        return report, system, hub

    # ------------------------------------------------------------------
    def run_matrix(
        self,
        apps: Iterable[str],
        schemes: dict[str, SchedulerConfig],
        *,
        measure_error: bool = False,
        jobs: Optional[int] = None,
    ) -> dict[tuple[str, str], SimReport]:
        """Simulate every (app, scheme) pair.

        Cells sharing a content key (e.g. a baseline reused by several
        experiments) are deduplicated before dispatch and simulated once.
        With ``jobs > 1`` the deduplicated cells run concurrently in a
        process pool; results are identical to a serial run.
        """
        jobs = self.jobs if jobs is None else jobs
        cells: dict[tuple[str, str], str] = {}
        specs: dict[str, tuple[CellSpec, str]] = {}
        for app in apps:
            for label, scheme in schemes.items():
                error = measure_error and scheme.ams.mode.value != "off"
                spec = self._spec(app, scheme, error)
                key = spec.key
                cells[(app, label)] = key
                # First label wins for logging; the report is identical.
                specs.setdefault(key, (spec, label))
        todo: dict[str, tuple[CellSpec, str]] = {}
        for key, (spec, label) in specs.items():
            if key in self._memo:
                continue
            if self.cache is not None:
                cached = self.cache.load(key)
                if cached is not None:
                    self._log(spec.app, label, "disk cache hit")
                    self._memo[key] = cached
                    continue
            todo[key] = (spec, label)
        if todo:
            if jobs > 1 and len(todo) > 1:
                self._run_pool(todo, jobs)
            else:
                for key, (spec, label) in todo.items():
                    report, elapsed = _simulate_cell(spec)
                    self._finish(key, spec, label, report, elapsed)
        return {cell: self._memo[key] for cell, key in cells.items()}

    def _run_pool(
        self, todo: dict[str, tuple[CellSpec, str]], jobs: int
    ) -> None:
        """Fan deduplicated cells out over a process pool."""
        items = [(key, spec) for key, (spec, _) in todo.items()]
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            pending = {
                pool.submit(_simulate_cell_worker, item) for item in items
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    key, report, elapsed = future.result()
                    spec, label = todo[key]
                    self._finish(key, spec, label, report, elapsed)
