"""Experiment runner: simulate (workload x scheme) matrices with caching."""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.config.gpu import GPUConfig
from repro.config.scheduler import SchedulerConfig
from repro.sim.report import SimReport
from repro.sim.system import simulate
from repro.workloads.registry import get_workload


@dataclass
class Runner:
    """Runs simulations and memoises results within a harness session.

    The cache key is (app, scheme-label, scale, measure_error), so an
    experiment that reuses another experiment's baseline does not re-run
    it.
    """

    scale: float = 1.0
    seed: int = 7
    config: Optional[GPUConfig] = None
    verbose: bool = True
    _cache: dict[tuple, SimReport] = field(default_factory=dict)

    def run(
        self,
        app: str,
        scheme: SchedulerConfig,
        *,
        label: Optional[str] = None,
        measure_error: bool = False,
    ) -> SimReport:
        """Simulate one (app, scheme) cell."""
        key = (app, label or scheme.name, self.scale, measure_error)
        if key in self._cache:
            return self._cache[key]
        workload = get_workload(app, scale=self.scale, seed=self.seed)
        start = time.time()
        report = simulate(
            workload,
            scheduler=scheme,
            config=self.config,
            measure_error=measure_error,
        )
        if self.verbose:
            print(
                f"  [{app} / {label or scheme.name}] "
                f"{time.time() - start:.1f}s, "
                f"acts={report.activations}, ipc={report.ipc:.2f}",
                file=sys.stderr,
            )
        self._cache[key] = report
        return report

    def run_matrix(
        self,
        apps: Iterable[str],
        schemes: dict[str, SchedulerConfig],
        *,
        measure_error: bool = False,
    ) -> dict[tuple[str, str], SimReport]:
        """Simulate every (app, scheme) pair."""
        results: dict[tuple[str, str], SimReport] = {}
        for app in apps:
            for label, scheme in schemes.items():
                error = measure_error and scheme.ams.mode.value != "off"
                results[(app, label)] = self.run(
                    app, scheme, label=label, measure_error=error
                )
        return results
