"""Per-tenant slowdown/fairness attribution for multi-tenant runs.

A shared run's :class:`~repro.sim.report.TenantReport` entries carry the
intrinsic counters (finish time, served, drops, activations); what they
*mean* requires each tenant's **solo baseline** — the same workload at
the same effective scale and seed, simulated alone under the same scheme
and device. :func:`attach_slowdowns` runs (or cache-loads) those
baselines through a sub-:class:`~repro.harness.runner.Runner` that
shares the parent's disk cache, then fills in ``solo_mem_cycles``,
``slowdown = finish / solo``, and the mix-wide Jain fairness index.

Slowdown and fairness are **presentation data**: the runner persists the
shared report to the result cache *before* this module touches it, so
cached blobs never embed baseline-dependent numbers.
"""

from __future__ import annotations

import sys
from dataclasses import replace
from typing import Optional

from repro.config.scheduler import AMSMode, DMSMode, SchedulerConfig
from repro.config.tenants import TenantMixSpec, TenantSpec
from repro.harness.fairness import jain_index, slowdown
from repro.sim.report import SimReport, TenantSummary


def scheme_for_tenant(
    scheme: SchedulerConfig, tenant: TenantSpec
) -> SchedulerConfig:
    """The scheme as *this tenant's class* experiences it.

    Per-tenant policy scoping exempts ``latency`` tenants from the DMS
    activation gate and every non-``approx-batch`` tenant from AMS
    drops, so a fair solo baseline must apply the same exemptions — a
    latency tenant compared against a solo run that *does* pay the DMS
    delay would show slowdowns below 1.0, crediting the shared system
    with speedups the arbiter never produced.
    """
    dms = (
        scheme.dms if tenant.gated
        else replace(scheme.dms, mode=DMSMode.OFF)
    )
    ams = (
        scheme.ams if tenant.approximable
        else replace(scheme.ams, mode=AMSMode.OFF)
    )
    if dms is scheme.dms and ams is scheme.ams:
        return scheme
    return replace(scheme, dms=dms, ams=ams)


def solo_baseline(
    runner,
    tenant: TenantSpec,
    scheme: SchedulerConfig,
) -> SimReport:
    """Simulate (or cache-load) one tenant's solo run.

    The effective scale and seed reproduce exactly how
    :class:`~repro.workloads.tenant_mix.TenantMix` constructed the
    member inside the shared run (``runner.scale * tenant.scale``,
    tenant seed falling back to the runner's), and the scheme carries
    the tenant's class exemptions (:func:`scheme_for_tenant`), so the
    baseline replays the very same warp stream under the very same
    per-request policy — just without neighbours.
    """
    from repro.harness.runner import Runner

    sub = Runner(
        scale=runner.scale * tenant.scale,
        seed=tenant.seed if tenant.seed is not None else runner.seed,
        config=runner.config,
        device=runner.device,
        ecc=runner.ecc,
        fault_model=runner.fault_model,
        verbose=runner.verbose,
        cache=runner.cache,
        metrics=runner.metrics,
    )
    return sub.run(
        tenant.workload,
        scheme_for_tenant(scheme, tenant),
        label=f"solo:{tenant.name}",
    )


def attach_slowdowns(
    report: SimReport,
    runner,
    mix: TenantMixSpec,
    scheme: SchedulerConfig,
) -> SimReport:
    """Fill per-tenant slowdowns and Jain fairness on a shared report.

    Mutates ``report.tenants`` in place and returns the report. A
    report without a tenant section (single-tenant passthrough) is
    returned untouched — alone, there is no one to be slowed down by.
    """
    summary = report.tenants
    if summary is None:
        return report
    slowdowns: list[float] = []
    for tenant, entry in zip(mix.tenants, summary.tenants):
        solo = solo_baseline(runner, tenant, scheme)
        entry.solo_mem_cycles = solo.elapsed_mem_cycles
        entry.slowdown = slowdown(
            entry.finish_mem_cycles, solo.elapsed_mem_cycles
        )
        slowdowns.append(entry.slowdown)
    summary.jain_fairness = jain_index(slowdowns)
    return report


def fairness_table(summary: TenantSummary, *, out=None) -> str:
    """Render the per-tenant slowdown/fairness/energy table.

    One row per tenant: class, served/dropped column accesses, the
    tenant's share of row energy (activation-proportional), and — when
    :func:`attach_slowdowns` ran — its solo-relative slowdown. Returns
    the rendered string and, when ``out`` is given, prints it there.
    """
    header = (
        f"{'tenant':<16} {'class':<12} {'served':>8} {'drops':>7} "
        f"{'row-energy':>10} {'slowdown':>9}"
    )
    lines = [header, "-" * len(header)]
    energy_shares = summary.row_energy_shares()
    for tenant, share in zip(summary.tenants, energy_shares):
        slow = (
            f"{tenant.slowdown:9.2f}" if tenant.slowdown is not None
            else f"{'-':>9}"
        )
        lines.append(
            f"{tenant.name:<16} {tenant.tenant_class:<12} "
            f"{tenant.requests_served:>8} {tenant.requests_dropped:>7} "
            f"{share:>10.1%} {slow}"
        )
    lines.append("-" * len(header))
    jain = (
        f"{summary.jain_fairness:.3f}"
        if summary.jain_fairness is not None else "-"
    )
    lines.append(f"arbiter {summary.arbiter}   Jain fairness {jain}")
    text = "\n".join(lines)
    if out is not None:
        print(text, file=out)
    return text


def print_fairness_table(summary: Optional[TenantSummary]) -> None:
    """Convenience wrapper used by the CLI: stdout, tolerate absence."""
    if summary is None:
        print("(single-tenant run: no tenant section)")
        return
    fairness_table(summary, out=sys.stdout)
