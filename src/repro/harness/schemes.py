"""The evaluated scheduling schemes (paper Fig. 12 legend).

Dynamic schemes profile in windows of 4096 memory cycles in the paper,
whose applications run for hundreds of millions of cycles. Our traces
are minutes-of-Python long, so the harness scales the profiling window
(default 1024 cycles, 16 windows per phase) — the state machines are
identical, only the sampling period changes. Pass
``window_cycles=4096, windows_per_phase=32`` to reproduce the paper's
literal constants on long traces.
"""

from __future__ import annotations

from repro.config.scheduler import (
    AMSConfig,
    AMSMode,
    DMSConfig,
    DMSMode,
    SchedulerConfig,
)

#: Harness-scaled profiling constants (see module docstring).
WINDOW_CYCLES = 1024
WINDOWS_PER_PHASE = 16


def _dms(mode: DMSMode, window: int, phase: int) -> DMSConfig:
    return DMSConfig(
        mode=mode, window_cycles=window, windows_per_phase=phase
    )


def _ams(mode: AMSMode, window: int, coverage: float) -> AMSConfig:
    return AMSConfig(mode=mode, window_cycles=window,
                     coverage_limit=coverage)


def evaluation_schemes(
    *,
    window_cycles: int = WINDOW_CYCLES,
    windows_per_phase: int = WINDOWS_PER_PHASE,
    coverage: float = 0.10,
    include_ams: bool = True,
) -> dict[str, SchedulerConfig]:
    """The Fig. 12 scheme set, keyed by the paper's legend labels.

    With ``include_ams=False`` only the delay-only schemes are returned
    (the Fig. 15 set used for low-error-tolerance applications).
    """
    schemes: dict[str, SchedulerConfig] = {
        "Baseline": SchedulerConfig(),
        "Static-DMS": SchedulerConfig(
            dms=_dms(DMSMode.STATIC, window_cycles, windows_per_phase)
        ),
        "Dyn-DMS": SchedulerConfig(
            dms=_dms(DMSMode.DYNAMIC, window_cycles, windows_per_phase)
        ),
    }
    if include_ams:
        schemes.update(
            {
                "Static-AMS": SchedulerConfig(
                    ams=_ams(AMSMode.STATIC, window_cycles, coverage)
                ),
                "Dyn-AMS": SchedulerConfig(
                    ams=_ams(AMSMode.DYNAMIC, window_cycles, coverage)
                ),
                "Static-DMS+Static-AMS": SchedulerConfig(
                    dms=_dms(DMSMode.STATIC, window_cycles,
                             windows_per_phase),
                    ams=_ams(AMSMode.STATIC, window_cycles, coverage),
                ),
                "Dyn-DMS+Dyn-AMS": SchedulerConfig(
                    dms=_dms(DMSMode.DYNAMIC, window_cycles,
                             windows_per_phase),
                    ams=_ams(AMSMode.DYNAMIC, window_cycles, coverage),
                ),
            }
        )
    return schemes


def ams_only(th_rbl: int, *, coverage: float = 0.10) -> SchedulerConfig:
    """AMS(Th_RBL) with no delay (Figs. 7 and 11)."""
    return SchedulerConfig(
        ams=AMSConfig(
            mode=AMSMode.STATIC,
            static_th_rbl=th_rbl,
            coverage_limit=coverage,
        )
    )


def dms_only(delay: int) -> SchedulerConfig:
    """DMS(X) with no approximation (Figs. 4, 5, 7, 13)."""
    return SchedulerConfig(
        dms=DMSConfig(mode=DMSMode.STATIC, static_delay=delay)
    )


def dms_plus_ams(delay: int, th_rbl: int,
                 *, coverage: float = 0.10) -> SchedulerConfig:
    """Static DMS(X) + AMS(Th) (Fig. 7(b)'s combined case)."""
    return SchedulerConfig(
        dms=DMSConfig(mode=DMSMode.STATIC, static_delay=delay),
        ams=AMSConfig(
            mode=AMSMode.STATIC,
            static_th_rbl=th_rbl,
            coverage_limit=coverage,
        ),
    )
