"""The evaluated scheduling schemes, declared as policy compositions.

Every scheme the harness knows is a :class:`SchemeDef` — a declarative
composition over the policy registries of :mod:`repro.sched.policies`:
a candidate-selector name plus DMS/AMS modes. :data:`SCHEME_DEFS` is the
full catalogue (the paper's Fig. 12 legend plus the baseline-arbiter
ablations); :func:`evaluation_schemes` materialises the Fig. 12 subset
and :func:`scheme_by_id` any single entry.

Dynamic schemes profile in windows of 4096 memory cycles in the paper,
whose applications run for hundreds of millions of cycles. Our traces
are minutes-of-Python long, so the harness scales the profiling window
(default 1024 cycles, 16 windows per phase) — the state machines are
identical, only the sampling period changes. Pass
``window_cycles=4096, windows_per_phase=32`` to reproduce the paper's
literal constants on long traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.scheduler import (
    AMSConfig,
    AMSMode,
    DMSConfig,
    DMSMode,
    SchedulerConfig,
)
from repro.errors import ConfigError

#: Harness-scaled profiling constants (see module docstring).
WINDOW_CYCLES = 1024
WINDOWS_PER_PHASE = 16


@dataclass(frozen=True)
class SchemeDef:
    """One scheme as a declarative policy composition.

    ``selector`` names a candidate selector from the policy registry;
    ``dms``/``ams`` are the unit modes. :meth:`build` materialises the
    :class:`SchedulerConfig` with the harness profiling constants.
    """

    #: Stable registry-style id (CLI ``--schemes`` tokens).
    id: str
    #: Paper-legend label (Fig. 12) used in tables and result keys.
    label: str
    selector: str = "frfcfs"
    dms: DMSMode = DMSMode.OFF
    ams: AMSMode = AMSMode.OFF
    description: str = ""

    def build(
        self,
        *,
        window_cycles: int = WINDOW_CYCLES,
        windows_per_phase: int = WINDOWS_PER_PHASE,
        coverage: float = 0.10,
    ) -> SchedulerConfig:
        """The concrete :class:`SchedulerConfig` of this composition."""
        return SchedulerConfig(
            arbiter=self.selector,
            dms=DMSConfig(
                mode=self.dms,
                window_cycles=window_cycles,
                windows_per_phase=windows_per_phase,
            ),
            ams=AMSConfig(
                mode=self.ams,
                window_cycles=window_cycles,
                coverage_limit=coverage,
            ),
        )


#: The full scheme catalogue. Order matters: tables list schemes in this
#: order, and the Fig. 12 subset is the contiguous run of ``figure12``
#: entries.
SCHEME_DEFS: tuple[SchemeDef, ...] = (
    SchemeDef(
        id="frfcfs", label="Baseline",
        description="FR-FCFS, open rows (paper Table I baseline)",
    ),
    SchemeDef(
        id="fcfs", label="FCFS", selector="fcfs",
        description="strict per-bank age order (Section II-C ablation)",
    ),
    SchemeDef(
        id="frfcfs-cap", label="FR-FCFS-Cap", selector="frfcfs-cap",
        description="FR-FCFS with a row-hit streak cap (starvation bound)",
    ),
    SchemeDef(
        id="static-dms", label="Static-DMS", dms=DMSMode.STATIC,
        description="fixed 128-cycle activation delay (Section IV-B)",
    ),
    SchemeDef(
        id="dyn-dms", label="Dyn-DMS", dms=DMSMode.DYNAMIC,
        description="BWUTIL-profiled activation delay (Section IV-B)",
    ),
    SchemeDef(
        id="static-ams", label="Static-AMS", ams=AMSMode.STATIC,
        description="drop rows with RBL <= 8, 10% coverage (Section IV-C)",
    ),
    SchemeDef(
        id="dyn-ams", label="Dyn-AMS", ams=AMSMode.DYNAMIC,
        description="coverage-profiled RBL threshold (Section IV-C)",
    ),
    SchemeDef(
        id="static-dms+static-ams", label="Static-DMS+Static-AMS",
        dms=DMSMode.STATIC, ams=AMSMode.STATIC,
        description="both static units combined",
    ),
    SchemeDef(
        id="dyn-dms+dyn-ams", label="Dyn-DMS+Dyn-AMS",
        dms=DMSMode.DYNAMIC, ams=AMSMode.DYNAMIC,
        description="the paper's headline scheme (Fig. 12)",
    ),
)

_BY_ID = {d.id: d for d in SCHEME_DEFS}

#: The Fig. 12 legend, in figure order (delay-only prefix first).
_FIG12_DELAY_IDS = ("frfcfs", "static-dms", "dyn-dms")
_FIG12_AMS_IDS = (
    "static-ams", "dyn-ams", "static-dms+static-ams", "dyn-dms+dyn-ams"
)


def scheme_ids() -> list[str]:
    """Every catalogued scheme id, in table order."""
    return [d.id for d in SCHEME_DEFS]


def scheme_def(scheme_id: str) -> SchemeDef:
    """The catalogue entry for ``scheme_id``."""
    try:
        return _BY_ID[scheme_id]
    except KeyError:
        raise ConfigError(
            f"unknown scheme id {scheme_id!r}; "
            f"known: {', '.join(scheme_ids())}"
        ) from None


def scheme_by_id(
    scheme_id: str,
    *,
    window_cycles: int = WINDOW_CYCLES,
    windows_per_phase: int = WINDOWS_PER_PHASE,
    coverage: float = 0.10,
) -> SchedulerConfig:
    """Materialise one catalogued scheme by id."""
    return scheme_def(scheme_id).build(
        window_cycles=window_cycles,
        windows_per_phase=windows_per_phase,
        coverage=coverage,
    )


def evaluation_schemes(
    *,
    window_cycles: int = WINDOW_CYCLES,
    windows_per_phase: int = WINDOWS_PER_PHASE,
    coverage: float = 0.10,
    include_ams: bool = True,
) -> dict[str, SchedulerConfig]:
    """The Fig. 12 scheme set, keyed by the paper's legend labels.

    With ``include_ams=False`` only the delay-only schemes are returned
    (the Fig. 15 set used for low-error-tolerance applications).
    """
    ids = _FIG12_DELAY_IDS + (_FIG12_AMS_IDS if include_ams else ())
    return {
        _BY_ID[i].label: _BY_ID[i].build(
            window_cycles=window_cycles,
            windows_per_phase=windows_per_phase,
            coverage=coverage,
        )
        for i in ids
    }


def ams_only(th_rbl: int, *, coverage: float = 0.10) -> SchedulerConfig:
    """AMS(Th_RBL) with no delay (Figs. 7 and 11)."""
    return SchedulerConfig(
        ams=AMSConfig(
            mode=AMSMode.STATIC,
            static_th_rbl=th_rbl,
            coverage_limit=coverage,
        )
    )


def dms_only(delay: int) -> SchedulerConfig:
    """DMS(X) with no approximation (Figs. 4, 5, 7, 13)."""
    return SchedulerConfig(
        dms=DMSConfig(mode=DMSMode.STATIC, static_delay=delay)
    )


def dms_plus_ams(delay: int, th_rbl: int,
                 *, coverage: float = 0.10) -> SchedulerConfig:
    """Static DMS(X) + AMS(Th) (Fig. 7(b)'s combined case)."""
    return SchedulerConfig(
        dms=DMSConfig(mode=DMSMode.STATIC, static_delay=delay),
        ams=AMSConfig(
            mode=AMSMode.STATIC,
            static_th_rbl=th_rbl,
            coverage_limit=coverage,
        ),
    )
