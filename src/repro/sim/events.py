"""Event-scheduling backends for the simulation engine.

One scheduling interface, two implementations (see DESIGN.md §5):

* :class:`WheelScheduler` — the default. A bucketed timer wheel: a ring
  of ``horizon`` one-cycle buckets indexed by the quantized event time
  (``int(time) & mask``), each bucket a tiny binary heap ordered by the
  exact ``(time, seq)`` key, plus an overflow heap for events beyond the
  horizon. Popping scans forward from the cursor bucket, which
  *batch-advances* the wheel across empty cycles instead of sifting a
  global heap per event; almost every DRAM timing event lands within a
  few dozen cycles of ``now``, so the scan is short and each bucket heap
  holds a handful of entries.
* :class:`HeapScheduler` — the seed implementation's single global
  ``heapq`` ordered by ``(time, seq)``. Kept as the reference backend:
  the Hypothesis suite in ``tests/test_event_scheduling.py`` asserts
  both backends execute any schedule in the identical order.

Both share the same cancellation design: an O(1) *slot tombstone*.
``cancel`` looks the handle up in the live-entry table, blanks the
entry's callback in place, and drops it from the table — no heap
surgery, no set scan when events surface, and the live count stays
exact (cancelling an already-executed handle is a no-op). Tombstoned
slots are discarded unexecuted when they reach the head.

Entries are mutable 3-lists ``[time, seq, fn]`` so the tombstone can be
written in place; list comparison never reaches the callback slot
because ``seq`` is unique.

The pop protocol is split into :meth:`head` (prune tombstones, return
the next live entry without removing it) and :meth:`pop_head` (remove
the entry :meth:`head` just returned), so idle/peek queries can check
the head time before committing to the pop — exactly the seed
semantics. The engine's run loop itself goes through :meth:`drain`,
which each backend implements with its own structures inlined: the
dispatch overhead of head/pop calls per event is measurable at the
simulator's event rates, and ``drain`` is the only place allowed to
know the backend's internals.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Optional

from repro.errors import SimulationError

Event = Callable[[], None]

#: Entry = [time, seq, fn]; ``fn is None`` marks a tombstone.
Entry = list

#: Default wheel horizon (buckets / cycles). Power of two. Must cover
#: the common DRAM timing windows (tRC=40, data bursts, interconnect
#: hops); longer-range events (tREFI, profiling windows) overflow to a
#: heap and are folded back in as the cursor advances.
WHEEL_HORIZON = 512


class HeapScheduler:
    """Single global binary heap ordered by ``(time, seq)``."""

    __slots__ = ("_heap", "_entries", "live")

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        #: handle (seq) -> live entry, for O(1) tombstone cancellation.
        self._entries: dict[int, Entry] = {}
        #: Live (scheduled, uncancelled, unexecuted) entry count.
        self.live = 0

    def push(self, time: float, seq: int, fn: Event) -> None:
        entry = [time, seq, fn]
        self._entries[seq] = entry
        heappush(self._heap, entry)
        self.live += 1

    def cancel(self, seq: int) -> bool:
        entry = self._entries.pop(seq, None)
        if entry is None:
            return False
        entry[2] = None
        self.live -= 1
        return True

    def head(self) -> Optional[Entry]:
        heap = self._heap
        while heap:
            if heap[0][2] is None:
                heappop(heap)
            else:
                return heap[0]
        return None

    def pop_head(self) -> None:
        entry = heappop(self._heap)
        del self._entries[entry[1]]
        self.live -= 1

    def drain(
        self,
        engine,
        until: Optional[float],
        max_events: Optional[int],
    ) -> tuple[int, bool]:
        """Run the event loop; returns ``(processed, hit_max_events)``.

        Semantically identical to repeated head/pop_head calls — same
        ``(time, seq)`` order, same ``until`` cutoff *before* the pop —
        with the backend internals inlined into the loop.
        """
        heap = self._heap
        entries = self._entries
        processed = 0
        while heap:
            entry = heap[0]
            fn = entry[2]
            if fn is None:
                heappop(heap)
                continue
            time = entry[0]
            if until is not None and time > until:
                break
            heappop(heap)
            del entries[entry[1]]
            self.live -= 1
            engine.now = time
            fn()
            processed += 1
            if max_events is not None and processed >= max_events:
                return processed, True
        return processed, False


class WheelScheduler:
    """Bucketed timer wheel keyed by quantized cycle (see module doc)."""

    __slots__ = (
        "_buckets", "_mask", "_horizon", "_base", "_overflow",
        "_entries", "_in_wheel", "live",
    )

    def __init__(self, horizon: int = WHEEL_HORIZON) -> None:
        if horizon <= 0 or horizon & (horizon - 1):
            raise SimulationError(
                f"wheel horizon must be a power of two, got {horizon}"
            )
        self._buckets: list[list[Entry]] = [[] for _ in range(horizon)]
        self._mask = horizon - 1
        self._horizon = horizon
        #: Quantized cycle of the cursor bucket; buckets cover
        #: ``[base, base + horizon)``.
        self._base = 0
        self._overflow: list[Entry] = []
        self._entries: dict[int, Entry] = {}
        #: Entries (live + tombstoned) currently in wheel buckets.
        self._in_wheel = 0
        self.live = 0

    def push(self, time: float, seq: int, fn: Event) -> None:
        entry = [time, seq, fn]
        self._entries[seq] = entry
        self.live += 1
        base = self._base
        if time - base < self._horizon:
            q = int(time)
            if q < base:  # clamped-to-now events land on the cursor
                q = base
            heappush(self._buckets[q & self._mask], entry)
            self._in_wheel += 1
        else:
            if time != time or time == float("inf"):
                raise SimulationError(f"non-finite event time: {time!r}")
            heappush(self._overflow, entry)

    def cancel(self, seq: int) -> bool:
        entry = self._entries.pop(seq, None)
        if entry is None:
            return False
        entry[2] = None
        self.live -= 1
        return True

    def head(self) -> Optional[Entry]:
        if self.live == 0:
            return None
        buckets = self._buckets
        mask = self._mask
        horizon = self._horizon
        overflow = self._overflow
        base = self._base
        while True:
            # Fold overflow entries that the advancing cursor has
            # brought inside the horizon back into the wheel.
            while overflow and overflow[0][0] - base < horizon:
                entry = heappop(overflow)
                if entry[2] is None:
                    continue
                q = int(entry[0])
                if q < base:
                    q = base
                heappush(buckets[q & mask], entry)
                self._in_wheel += 1
            bucket = buckets[base & mask]
            while bucket:
                if bucket[0][2] is None:
                    heappop(bucket)
                    self._in_wheel -= 1
                else:
                    self._base = base
                    return bucket[0]
            if not bucket:
                if self._in_wheel == 0:
                    if not overflow:
                        self._base = base
                        return None  # only tombstones remained
                    # Batch-advance: jump the cursor straight to the
                    # earliest overflow entry instead of stepping.
                    q = int(overflow[0][0])
                    if q > base:
                        base = q
                        continue
                base += 1

    def pop_head(self) -> None:
        bucket = self._buckets[self._base & self._mask]
        entry = heappop(bucket)
        self._in_wheel -= 1
        del self._entries[entry[1]]
        self.live -= 1

    def drain(
        self,
        engine,
        until: Optional[float],
        max_events: Optional[int],
    ) -> tuple[int, bool]:
        """Run the event loop; returns ``(processed, hit_max_events)``.

        The head/pop protocol inlined: fold eligible overflow entries,
        advance the cursor over empty/tombstoned buckets, execute the
        cursor bucket's heap in exact ``(time, seq)`` order. ``_base``
        is written back before every callback — the callback may push,
        and a push quantizes against the *current* cursor.
        """
        buckets = self._buckets
        mask = self._mask
        horizon = self._horizon
        overflow = self._overflow
        entries = self._entries
        processed = 0
        while self.live:
            base = self._base
            while overflow and overflow[0][0] - base < horizon:
                entry = heappop(overflow)
                if entry[2] is None:
                    continue
                q = int(entry[0])
                if q < base:
                    q = base
                heappush(buckets[q & mask], entry)
                self._in_wheel += 1
            bucket = buckets[base & mask]
            if not bucket:
                if self._in_wheel == 0:
                    if not overflow:
                        break
                    # Batch-advance: jump the cursor straight to the
                    # earliest overflow entry instead of stepping.
                    q = int(overflow[0][0])
                    if q > base:
                        self._base = q
                        continue
                self._base = base + 1
                continue
            # Execute this bucket's events in (time, seq) order; the
            # cursor cannot move while its bucket has live entries (a
            # push during a callback lands at or after the cursor).
            while bucket:
                entry = bucket[0]
                fn = entry[2]
                if fn is None:
                    heappop(bucket)
                    self._in_wheel -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    return processed, False
                heappop(bucket)
                self._in_wheel -= 1
                del entries[entry[1]]
                self.live -= 1
                engine.now = time
                fn()
                processed += 1
                if max_events is not None and processed >= max_events:
                    return processed, True
        return processed, False


#: Registry of engine scheduling backends (the wheel/heap choice).
SCHEDULER_BACKENDS = {
    "wheel": WheelScheduler,
    "heap": HeapScheduler,
}


def make_scheduler(name: str):
    """Instantiate the scheduling backend ``name`` (``wheel``/``heap``)."""
    try:
        cls = SCHEDULER_BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown engine backend {name!r}; "
            f"known: {', '.join(sorted(SCHEDULER_BACKENDS))}"
        ) from None
    return cls()
