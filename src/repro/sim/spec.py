"""Serialisable simulation specification.

A :class:`SimSpec` is the single value that says *how* to simulate:
which scheduler scheme, which DRAM device, any GPU-configuration
overrides, and the observability/error flags. It replaces the scattered
``simulate(...)`` keyword arguments and flows unchanged through the
:class:`~repro.harness.runner.Runner`, the persistent result cache key,
and the CLI's ``--device``/``--scheme`` options — one object, one JSON
form, one fingerprint.

Device semantics: ``device=None`` means "use the timings/energy/clock
embedded in ``config``" (the legacy path — bit-identical to the
pre-SimSpec simulator, and what tests passing custom configs rely on).
A named device resolves through :mod:`repro.dram.devices` and overrides
those three fields of the resolved config; the ``"gddr5"`` preset is
numerically identical to the defaults, so naming it changes nothing but
the fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config.codec import decode, decode_optional, encode
from repro.config.faults import FaultConfig
from repro.config.gpu import GPUConfig
from repro.config.scheduler import SchedulerConfig
from repro.config.tenants import TenantMixSpec
from repro.errors import ConfigError


@dataclass(frozen=True)
class SimSpec:
    """Everything but the workload: scheme + device + overrides + flags."""

    #: The full scheduler composition (selector + DMS + AMS + VP).
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Registered DRAM device name, or None for config-embedded timings.
    device: Optional[str] = None
    #: GPU overrides; None means the Table I default :class:`GPUConfig`.
    config: Optional[GPUConfig] = None
    #: Replay the AMS drop log through the workload kernel afterwards.
    measure_error: bool = False
    #: Keep per-channel activation logs on the report (RBL histograms).
    record_activations: bool = True
    #: Attach a windowed-telemetry hub (``report.timeline``).
    telemetry: bool = False
    #: Registered ECC code protecting DRAM reads (``"none"`` = raw).
    ecc: str = "none"
    #: Timing-dependent bit-flip fault model (disabled by default).
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Multi-tenant mix; ``None`` is the plain single-workload path.
    tenants: Optional[TenantMixSpec] = None

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the spec is resolvable; raise :class:`ConfigError`."""
        self.scheduler.validate()
        if self.device is not None:
            from repro.dram.devices import get_device

            get_device(self.device)  # raises ConfigError when unknown
        if self.config is not None:
            self.config.validate()
        from repro.dram.ecc import get_ecc

        get_ecc(self.ecc)  # raises ConfigError when unknown
        self.faults.validate()
        if self.tenants is not None:
            self.tenants.validate()

    def resolve_config(self) -> GPUConfig:
        """The concrete :class:`GPUConfig` this spec simulates on."""
        base = self.config if self.config is not None else GPUConfig()
        if self.device is None:
            return base
        from repro.dram.devices import get_device

        return get_device(self.device).apply(base)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready form (round-trips via :meth:`from_dict`).

        The ``tenants`` key is emitted only when a mix is present:
        single-tenant payloads (and therefore their v4 cache keys and
        the :meth:`content_seed` that anchors fault-injection sites)
        stay byte-identical to the pre-tenant format.
        """
        payload = {
            "scheduler": encode(self.scheduler),
            "device": self.device,
            "config": encode(self.config) if self.config is not None else None,
            "measure_error": self.measure_error,
            "record_activations": self.record_activations,
            "telemetry": self.telemetry,
            "ecc": self.ecc,
            "faults": encode(self.faults),
        }
        if self.tenants is not None:
            payload["tenants"] = encode(self.tenants)
        return payload

    def content_seed(self) -> int:
        """Deterministic 64-bit seed derived from the spec content.

        Seeds the fault injector so flip sites are a pure function of
        the spec — identical across serial, ``--jobs N``, and
        ``--threads`` execution, and stable across sessions (no Python
        hash randomisation involved).
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(canonical.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"SimSpec payload must be a dict, got {type(data).__name__}"
            )
        known = {
            "scheduler", "device", "config", "measure_error",
            "record_activations", "telemetry", "ecc", "faults", "tenants",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                "unknown SimSpec field(s) in payload: "
                + ", ".join(sorted(unknown))
            )
        scheduler = decode_optional(
            SchedulerConfig, data.get("scheduler"), path="scheduler"
        )
        return cls(
            scheduler=scheduler if scheduler is not None else SchedulerConfig(),
            device=data.get("device"),
            config=decode_optional(
                GPUConfig, data.get("config"), path="config"
            ),
            measure_error=bool(data.get("measure_error", False)),
            record_activations=bool(data.get("record_activations", True)),
            telemetry=bool(data.get("telemetry", False)),
            ecc=str(data.get("ecc", "none")),
            faults=(
                decode(FaultConfig, data["faults"], path="faults")
                if data.get("faults") is not None
                else FaultConfig()
            ),
            tenants=decode_optional(
                TenantMixSpec, data.get("tenants"), path="tenants"
            ),
        )
