"""Discrete-event simulation engine.

A single global event heap ordered by (time, insertion sequence); all
times are in *memory clock cycles* (see DESIGN.md §5). Insertion order
breaks ties, making runs fully deterministic.

Events may be cancelled: :meth:`Engine.at` returns an opaque handle that
:meth:`Engine.cancel` invalidates. A cancelled entry stays on the heap
(heaps do not support removal) but is discarded unexecuted — and
uncounted — when it surfaces, so superseded wake-ups cost one pop instead
of a full callback.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import SimulationError

Event = Callable[[], None]


class Engine:
    """Deterministic event-driven simulation core."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._cancelled: set[int] = set()
        self.now: float = 0.0
        self.events_processed = 0
        self.events_cancelled = 0
        #: Optional callable returning extra context (e.g. per-bank
        #: pending-request counts) appended to the ``max_events``
        #: overflow error, so a deadlock is debuggable from the failure
        #: manifest alone. The engine itself knows nothing about DRAM;
        #: :class:`~repro.sim.system.GPUSystem` installs its snapshot.
        self.diagnostics: Optional[Callable[[], str]] = None

    def at(self, time: float, fn: Event) -> int:
        """Schedule ``fn`` to run at absolute ``time`` (clamped to now).

        Returns a handle accepted by :meth:`cancel`.
        """
        if time < self.now:
            time = self.now
        seq = self._seq
        heapq.heappush(self._heap, (time, seq, fn))
        self._seq = seq + 1
        return seq

    def after(self, delay: float, fn: Event) -> int:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn)

    def cancel(self, handle: int) -> None:
        """Invalidate a scheduled event; it is dropped when it surfaces."""
        self._cancelled.add(handle)
        self.events_cancelled += 1

    @property
    def idle(self) -> bool:
        """True when no live events remain."""
        self._drop_cancelled_head()
        return not self._heap

    @property
    def live_event_count(self) -> int:
        """Number of scheduled-but-unexecuted events, cancellations
        excluded. Telemetry's window recorder uses this to decide
        whether re-arming itself would keep an otherwise-drained heap
        alive."""
        return len(self._heap) - len(self._cancelled)

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (monotonic, includes cancelled).

        ``events_processed`` is folded in from a hot-loop local only
        when :meth:`run` returns, so this is the counter to sample for
        *live* activity telemetry — reading it costs nothing on the
        event loop.
        """
        return self._seq

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when idle."""
        self._drop_cancelled_head()
        return self._heap[0][0] if self._heap else None

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        cancelled = self._cancelled
        while heap and heap[0][1] in cancelled:
            cancelled.discard(heap[0][1])
            heapq.heappop(heap)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the heap drains, ``until`` is passed, or
        ``max_events`` have run (a deadlock/runaway guard)."""
        processed = 0
        heap = self._heap
        cancelled = self._cancelled
        pop = heapq.heappop
        while heap:
            time, seq, fn = heap[0]
            if cancelled:
                if seq in cancelled:
                    cancelled.discard(seq)
                    pop(heap)
                    continue
            if until is not None and time > until:
                break
            pop(heap)
            self.now = time
            fn()
            processed += 1
            if max_events is not None and processed >= max_events:
                self.events_processed += processed
                raise SimulationError(self._overflow_message(max_events))
        self.events_processed += processed
        if until is not None and self.now < until:
            self.now = until

    def _overflow_message(self, max_events: int) -> str:
        """Diagnostic snapshot for the ``max_events`` livelock guard."""
        live = len(self._heap) - len(self._cancelled)
        detail = (
            f"exceeded max_events={max_events}; possible simulation "
            f"livelock (cycle={self.now:.0f}, "
            f"queued_events={len(self._heap)}, live_events={live}, "
            f"total_processed={self.events_processed})"
        )
        if self.diagnostics is not None:
            # A broken diagnostics probe must never mask the real error.
            try:
                detail += "; " + self.diagnostics()
            except Exception as exc:
                detail += f"; (diagnostics probe failed: {exc!r})"
        return detail
