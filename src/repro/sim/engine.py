"""Discrete-event simulation engine.

A single global event heap ordered by (time, insertion sequence); all
times are in *memory clock cycles* (see DESIGN.md §5). Insertion order
breaks ties, making runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import SimulationError

Event = Callable[[], None]


class Engine:
    """Deterministic event-driven simulation core."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.now: float = 0.0
        self.events_processed = 0

    def at(self, time: float, fn: Event) -> None:
        """Schedule ``fn`` to run at absolute ``time`` (clamped to now)."""
        if time < self.now:
            time = self.now
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def after(self, delay: float, fn: Event) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.at(self.now + delay, fn)

    @property
    def idle(self) -> bool:
        """True when no events remain."""
        return not self._heap

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the heap drains, ``until`` is passed, or
        ``max_events`` have run (a deadlock/runaway guard)."""
        processed = 0
        while self._heap:
            time, _, fn = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            fn()
            processed += 1
            self.events_processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "possible simulation livelock"
                )
        if until is not None and self.now < until:
            self.now = until
