"""Discrete-event simulation engine.

Events execute in strict ``(time, insertion sequence)`` order; all times
are in *memory clock cycles* (see DESIGN.md §5). Insertion order breaks
ties, making runs fully deterministic.

The ordering structure is pluggable (``backend=``): the default is the
bucketed timer wheel of :mod:`repro.sim.events`, with the seed's global
binary heap kept as the reference implementation. Both share tombstone
cancellation: :meth:`Engine.at` returns an opaque handle that
:meth:`Engine.cancel` invalidates in O(1) by blanking the entry's slot;
a tombstoned entry is discarded unexecuted — and uncounted — when it
surfaces, so superseded wake-ups cost one pop instead of a full
callback, and :attr:`live_event_count` stays exact.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import make_scheduler

Event = Callable[[], None]

#: Environment override for the default scheduling backend (the
#: wheel/heap differential runs set this instead of threading a
#: parameter through every system constructor).
_BACKEND_ENV = "REPRO_ENGINE_BACKEND"


class Engine:
    """Deterministic event-driven simulation core."""

    def __init__(self, backend: Optional[str] = None) -> None:
        if backend is None:
            backend = os.environ.get(_BACKEND_ENV, "wheel")
        self.backend = backend
        self._sched = make_scheduler(backend)
        self._push = self._sched.push  # hoisted: one call per event
        self._seq = 0
        self.now: float = 0.0
        self.events_processed = 0
        self.events_cancelled = 0
        #: Optional callable returning extra context (e.g. per-bank
        #: pending-request counts) appended to the ``max_events``
        #: overflow error, so a deadlock is debuggable from the failure
        #: manifest alone. The engine itself knows nothing about DRAM;
        #: :class:`~repro.sim.system.GPUSystem` installs its snapshot.
        self.diagnostics: Optional[Callable[[], str]] = None

    def at(self, time: float, fn: Event) -> int:
        """Schedule ``fn`` to run at absolute ``time`` (clamped to now).

        Returns a handle accepted by :meth:`cancel`.
        """
        if time < self.now:
            time = self.now
        seq = self._seq
        self._seq = seq + 1
        self._push(time, seq, fn)
        return seq

    def after(self, delay: float, fn: Event) -> int:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn)

    def cancel(self, handle: int) -> None:
        """Invalidate a scheduled event; it is dropped when it surfaces.

        Cancelling a handle that already executed (or was never issued)
        is harmless and leaves the live-event count untouched.
        """
        self._sched.cancel(handle)
        self.events_cancelled += 1

    @property
    def idle(self) -> bool:
        """True when no live events remain."""
        return self._sched.head() is None

    @property
    def live_event_count(self) -> int:
        """Number of scheduled-but-unexecuted events, cancellations
        excluded. Telemetry's window recorder uses this to decide
        whether re-arming itself would keep an otherwise-drained
        schedule alive."""
        return self._sched.live

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (monotonic, includes cancelled).

        ``events_processed`` is folded in from a hot-loop local only
        when :meth:`run` returns, so this is the counter to sample for
        *live* activity telemetry — reading it costs nothing on the
        event loop.
        """
        return self._seq

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when idle."""
        entry = self._sched.head()
        return entry[0] if entry is not None else None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the schedule drains, ``until`` is passed,
        or ``max_events`` have run (a deadlock/runaway guard).

        The loop itself lives in the backend's ``drain`` (each backend
        inlines its own structures); this wrapper folds the processed
        count in and raises the livelock guard.
        """
        processed, overflowed = self._sched.drain(self, until, max_events)
        self.events_processed += processed
        if overflowed:
            raise SimulationError(self._overflow_message(max_events))
        if until is not None and self.now < until:
            self.now = until

    def _overflow_message(self, max_events: int) -> str:
        """Diagnostic snapshot for the ``max_events`` livelock guard."""
        detail = (
            f"exceeded max_events={max_events}; possible simulation "
            f"livelock (cycle={self.now:.0f}, "
            f"live_events={self._sched.live}, "
            f"total_processed={self.events_processed})"
        )
        if self.diagnostics is not None:
            # A broken diagnostics probe must never mask the real error.
            try:
                detail += "; " + self.diagnostics()
            except Exception as exc:
                detail += f"; (diagnostics probe failed: {exc!r})"
        return detail
