"""Simulation driver: event engine, system assembly, specs, reports."""

from repro.sim.engine import Engine
from repro.sim.report import L2Summary, SimReport
from repro.sim.spec import SimSpec

__all__ = [
    "Engine",
    "GPUSystem",
    "L2Summary",
    "SimReport",
    "SimSpec",
    "simulate",
    "simulate_spec",
]


def __getattr__(name: str):
    # GPUSystem/simulate import the gpu frontend, which itself imports
    # repro.sim.engine; loading them lazily breaks the package-init cycle.
    if name in ("GPUSystem", "simulate", "simulate_spec"):
        from repro.sim import system

        return getattr(system, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
